//! The ranking score: relevance blended with advertiser bid.
//!
//! `rank(a, u) = relevance(a, u)^λ · bid(a)^(1−λ)` with `λ ∈ (0, 1]`.
//!
//! * `λ = 1` — pure content relevance (the configuration the effectiveness
//!   experiments use, matching the paper's relevance-driven matching),
//! * `λ < 1` — revenue-aware serving: higher bids win ties and can
//!   outrank slightly more relevant ads.
//!
//! Within one user at one instant, every candidate's relevance carries the
//! same forward-decay normalizer and the same context norm, so ranking by
//! `fwd_dot^λ · bid^(1−λ)` is equivalent to ranking by the true blended
//! score — which is what lets the incremental engine store raw
//! forward-scale dots and never rescale them on arrivals.

/// Relevance/bid blending policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoringPolicy {
    /// Relevance exponent λ.
    pub lambda: f32,
}

impl ScoringPolicy {
    /// Pure relevance ranking (`λ = 1`): bids break no ties, spend no
    /// exponentiation.
    pub fn pure_relevance() -> Self {
        ScoringPolicy { lambda: 1.0 }
    }

    /// Blend with the given relevance exponent.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is outside `(0, 1]`.
    pub fn blended(lambda: f32) -> Self {
        let policy = ScoringPolicy { lambda };
        policy.validate().expect("invalid lambda");
        policy
    }

    /// Validate the policy.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.lambda.is_finite() && self.lambda > 0.0 && self.lambda <= 1.0) {
            return Err(format!("lambda must be in (0,1], got {}", self.lambda));
        }
        Ok(())
    }

    /// The ranking score from a (forward-scale or true-scale) relevance
    /// value and a bid. Monotone in `relevance` for fixed `bid`.
    #[inline]
    pub fn rank(&self, relevance: f32, bid: f32) -> f32 {
        debug_assert!(relevance >= 0.0, "relevance must be non-negative");
        if self.lambda >= 1.0 {
            relevance
        } else {
            relevance.powf(self.lambda) * bid.powf(1.0 - self.lambda)
        }
    }

    /// Is the policy bid-sensitive?
    pub fn uses_bids(&self) -> bool {
        self.lambda < 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_relevance_ignores_bid() {
        let p = ScoringPolicy::pure_relevance();
        assert_eq!(p.rank(0.5, 1.0), 0.5);
        assert_eq!(p.rank(0.5, 100.0), 0.5);
        assert!(!p.uses_bids());
    }

    #[test]
    fn blended_rewards_bids() {
        let p = ScoringPolicy::blended(0.5);
        assert!(p.uses_bids());
        let low_bid = p.rank(0.5, 1.0);
        let high_bid = p.rank(0.5, 4.0);
        assert!(high_bid > low_bid);
        assert!((high_bid - 0.5f32.powf(0.5) * 2.0).abs() < 1e-6);
    }

    #[test]
    fn monotone_in_relevance() {
        for lambda in [0.3, 0.7, 1.0] {
            let p = ScoringPolicy { lambda };
            let mut prev = -1.0f32;
            for r in [0.0, 0.1, 0.5, 0.9, 2.0] {
                let s = p.rank(r, 2.0);
                assert!(s >= prev, "rank not monotone at λ={lambda}, r={r}");
                prev = s;
            }
        }
    }

    #[test]
    fn zero_relevance_is_zero_rank() {
        assert_eq!(ScoringPolicy::blended(0.5).rank(0.0, 10.0), 0.0);
    }

    #[test]
    fn validation() {
        assert!(ScoringPolicy { lambda: 0.0 }.validate().is_err());
        assert!(ScoringPolicy { lambda: 1.5 }.validate().is_err());
        assert!(ScoringPolicy { lambda: f32::NAN }.validate().is_err());
        assert!(ScoringPolicy { lambda: 0.5 }.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid lambda")]
    fn blended_panics_on_bad_lambda() {
        let _ = ScoringPolicy::blended(2.0);
    }
}
