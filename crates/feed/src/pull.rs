//! Fan-out-on-read delivery.
//!
//! Posts cost O(1): they are appended to the author's **outbox** (a
//! bounded recent-posts list). Reads assemble the feed on demand by
//! merging the outboxes of every followee and keeping the most recent
//! `window` messages — O(Σ followee outbox sizes) per read.

use std::collections::VecDeque;

use adcast_graph::{SocialGraph, UserId};
use adcast_stream::event::SharedMessage;

use crate::stats::DeliveryStats;
use crate::window::{FeedDelta, WindowConfig};
use crate::FeedDelivery;

/// Pull (fan-out-on-read) delivery.
#[derive(Debug)]
pub struct PullDelivery {
    outboxes: Vec<VecDeque<SharedMessage>>,
    window: WindowConfig,
    /// Outbox retention: keep this many recent posts per author. Must be
    /// ≥ window capacity for exact feeds; defaults to exactly that.
    outbox_cap: usize,
    stats: DeliveryStats,
    include_self: bool,
}

impl PullDelivery {
    /// Create with per-author outboxes sized to the window capacity.
    pub fn new(num_users: u32, window: WindowConfig) -> Self {
        PullDelivery {
            outboxes: (0..num_users).map(|_| VecDeque::new()).collect(),
            outbox_cap: window.capacity,
            window,
            stats: DeliveryStats::default(),
            include_self: true,
        }
    }

    /// Exclude the reader's own posts from assembled feeds.
    pub fn without_self_delivery(mut self) -> Self {
        self.include_self = false;
        self
    }

    /// The author's outbox contents (oldest first).
    pub fn outbox(&self, author: UserId) -> impl Iterator<Item = &SharedMessage> + '_ {
        self.outboxes[author.index()].iter()
    }

    /// Approximate resident bytes of the outbox structures.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .outboxes
                .iter()
                .map(|o| o.capacity() * std::mem::size_of::<SharedMessage>())
                .sum::<usize>()
    }
}

impl FeedDelivery for PullDelivery {
    fn post(&mut self, _graph: &SocialGraph, msg: SharedMessage) -> Vec<(UserId, FeedDelta)> {
        self.stats.posts += 1;
        self.stats.outbox_appends += 1;
        let outbox = &mut self.outboxes[msg.author.index()];
        outbox.push_back(msg);
        while outbox.len() > self.outbox_cap {
            outbox.pop_front();
        }
        Vec::new()
    }

    fn read(&mut self, graph: &SocialGraph, user: UserId) -> Vec<SharedMessage> {
        self.stats.reads += 1;
        let mut merged: Vec<SharedMessage> = Vec::new();
        let pull_from =
            |author: UserId, stats: &mut DeliveryStats, merged: &mut Vec<SharedMessage>| {
                for m in &self.outboxes[author.index()] {
                    stats.merge_examined += 1;
                    merged.push(m.clone());
                }
            };
        for &followee in graph.followees(user) {
            pull_from(followee, &mut self.stats, &mut merged);
        }
        if self.include_self {
            pull_from(user, &mut self.stats, &mut merged);
        }
        // Sort by (ts, id) for a deterministic total order, keep the most
        // recent `capacity`, return oldest-first.
        merged.sort_by_key(|m| (m.ts, m.id));
        let keep = self.window.capacity.min(merged.len());
        merged.split_off(merged.len() - keep)
    }

    fn stats(&self) -> &DeliveryStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "pull"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcast_graph::GraphBuilder;
    use adcast_stream::clock::Timestamp;
    use adcast_stream::event::{LocationId, Message, MessageId};
    use adcast_text::SparseVector;
    use std::sync::Arc;

    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(4);
        b.follow(UserId(0), UserId(1));
        b.follow(UserId(0), UserId(2));
        b.build()
    }

    fn msg(id: u64, author: u32, secs: u64) -> SharedMessage {
        Arc::new(Message {
            id: MessageId(id),
            author: UserId(author),
            ts: Timestamp::from_secs(secs),
            location: LocationId(0),
            vector: SparseVector::new(),
        })
    }

    #[test]
    fn post_is_cheap_read_merges() {
        let g = graph();
        let mut d = PullDelivery::new(4, WindowConfig::count(10)).without_self_delivery();
        assert!(
            d.post(&g, msg(0, 1, 1)).is_empty(),
            "pull posts return no deltas"
        );
        d.post(&g, msg(1, 2, 2));
        d.post(&g, msg(2, 1, 3));
        let feed = d.read(&g, UserId(0));
        let ids: Vec<_> = feed.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, [0, 1, 2], "merged feed in time order");
        assert_eq!(d.stats().merge_examined, 3);
        assert_eq!(d.stats().outbox_appends, 3);
    }

    #[test]
    fn window_capacity_limits_feed() {
        let g = graph();
        let mut d = PullDelivery::new(4, WindowConfig::count(2)).without_self_delivery();
        for i in 0..5 {
            d.post(&g, msg(i, 1, i));
        }
        let feed = d.read(&g, UserId(0));
        let ids: Vec<_> = feed.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, [3, 4], "only the most recent W survive");
    }

    #[test]
    fn outbox_bounded() {
        let g = graph();
        let mut d = PullDelivery::new(4, WindowConfig::count(3));
        for i in 0..10 {
            d.post(&g, msg(i, 1, i));
        }
        assert_eq!(d.outbox(UserId(1)).count(), 3);
    }

    #[test]
    fn self_posts_included_by_default() {
        let g = graph();
        let mut d = PullDelivery::new(4, WindowConfig::count(10));
        d.post(&g, msg(0, 0, 1));
        let feed = d.read(&g, UserId(0));
        assert_eq!(feed.len(), 1);
    }

    #[test]
    fn non_followee_posts_invisible() {
        let g = graph();
        let mut d = PullDelivery::new(4, WindowConfig::count(10)).without_self_delivery();
        d.post(&g, msg(0, 3, 1));
        assert!(d.read(&g, UserId(0)).is_empty());
    }

    #[test]
    fn ties_broken_by_message_id() {
        let g = graph();
        let mut d = PullDelivery::new(4, WindowConfig::count(10)).without_self_delivery();
        d.post(&g, msg(5, 1, 7));
        d.post(&g, msg(3, 2, 7));
        let feed = d.read(&g, UserId(0));
        let ids: Vec<_> = feed.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, [3, 5]);
    }
}
