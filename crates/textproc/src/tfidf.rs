//! Term-frequency / inverse-document-frequency weighting schemes.
//!
//! The paper-class systems weigh message and ad terms with TF-IDF variants;
//! we provide the standard menu so the benchmark harness can ablate the
//! choice:
//!
//! * TF: raw counts, log-scaled (`1 + ln tf`), boolean, and BM25-style
//!   saturation (`tf·(k1+1) / (tf + k1)` with no length normalization —
//!   microblog documents are near-constant length),
//! * IDF: none, plain (`ln(N/df)`), and smoothed (`ln(1 + (N − df + 0.5) /
//!   (df + 0.5))`, the BM25 form, always positive).

use crate::dictionary::{Dictionary, TermId};
use crate::sparse::SparseVector;

/// Term-frequency scaling scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TfScheme {
    /// Raw occurrence count.
    Raw,
    /// `1 + ln(tf)` — the default; damps spammy repetition.
    #[default]
    Log,
    /// 1.0 for any occurrence.
    Boolean,
    /// BM25 saturation with `k1 = 1.2`.
    Bm25,
}

impl TfScheme {
    /// Apply the scheme to a raw count (`count >= 1`).
    pub fn apply(self, count: u32) -> f32 {
        let tf = count as f32;
        match self {
            TfScheme::Raw => tf,
            TfScheme::Log => 1.0 + tf.ln(),
            TfScheme::Boolean => 1.0,
            TfScheme::Bm25 => {
                const K1: f32 = 1.2;
                tf * (K1 + 1.0) / (tf + K1)
            }
        }
    }
}

/// Inverse-document-frequency scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IdfScheme {
    /// No IDF (weight 1.0 for every term).
    None,
    /// `ln(N / df)`, clamped at 0 for `df > N` pathologies.
    Plain,
    /// The BM25 smoothed form, strictly positive.
    #[default]
    Smooth,
}

impl IdfScheme {
    /// IDF value for a term with document frequency `df` out of `n` docs.
    ///
    /// Unseen terms (`df == 0`) get the maximum weight for the corpus,
    /// which is what a recommender wants: novel terms are discriminative.
    pub fn apply(self, df: u32, n: u64) -> f32 {
        match self {
            IdfScheme::None => 1.0,
            IdfScheme::Plain => {
                if n == 0 {
                    return 1.0;
                }
                let df = df.max(1) as f64;
                ((n as f64 / df).ln().max(0.0)) as f32
            }
            IdfScheme::Smooth => {
                if n == 0 {
                    return 1.0;
                }
                let df = df as f64;
                let n = n as f64;
                ((1.0 + (n - df + 0.5) / (df + 0.5)).ln()) as f32
            }
        }
    }
}

/// Combined weighting configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightingConfig {
    /// Term-frequency scheme.
    pub tf: TfScheme,
    /// Inverse-document-frequency scheme.
    pub idf: IdfScheme,
    /// L2-normalize the resulting vector (recommended: makes dot products
    /// directly comparable across documents of different lengths).
    pub l2_normalize: bool,
}

impl WeightingConfig {
    /// The configuration used throughout the evaluation: log TF, smooth
    /// IDF, L2-normalized.
    pub fn standard() -> Self {
        WeightingConfig {
            tf: TfScheme::Log,
            idf: IdfScheme::Smooth,
            l2_normalize: true,
        }
    }

    /// Weigh a bag of `(term, count)` pairs against corpus statistics.
    pub fn weigh(
        &self,
        counts: impl IntoIterator<Item = (TermId, u32)>,
        dictionary: &Dictionary,
    ) -> SparseVector {
        let n = dictionary.num_docs();
        let v = SparseVector::from_pairs(counts.into_iter().map(|(t, c)| {
            let w = self.tf.apply(c) * self.idf.apply(dictionary.doc_freq(t), n);
            (t, w)
        }));
        if self.l2_normalize {
            v.normalized()
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tf_raw_and_boolean() {
        assert_eq!(TfScheme::Raw.apply(3), 3.0);
        assert_eq!(TfScheme::Boolean.apply(3), 1.0);
        assert_eq!(TfScheme::Boolean.apply(1), 1.0);
    }

    #[test]
    fn tf_log_damps() {
        assert_eq!(TfScheme::Log.apply(1), 1.0);
        let w10 = TfScheme::Log.apply(10);
        assert!(w10 > 1.0 && w10 < 10.0);
    }

    #[test]
    fn tf_bm25_saturates() {
        let w1 = TfScheme::Bm25.apply(1);
        let w100 = TfScheme::Bm25.apply(100);
        assert!(w1 < w100);
        assert!(w100 < 2.2, "BM25 tf is bounded by k1+1");
    }

    #[test]
    fn idf_none_is_unity() {
        assert_eq!(IdfScheme::None.apply(5, 100), 1.0);
    }

    #[test]
    fn idf_plain_monotone_decreasing_in_df() {
        let rare = IdfScheme::Plain.apply(1, 1000);
        let common = IdfScheme::Plain.apply(900, 1000);
        assert!(rare > common);
        assert!(common >= 0.0);
        // Degenerate corpora fall back to 1.0.
        assert_eq!(IdfScheme::Plain.apply(0, 0), 1.0);
    }

    #[test]
    fn idf_smooth_positive_and_monotone() {
        let n = 1000;
        let mut prev = f32::INFINITY;
        for df in [0, 1, 10, 100, 999] {
            let w = IdfScheme::Smooth.apply(df, n);
            assert!(w > 0.0, "smooth idf must stay positive (df={df})");
            assert!(w < prev, "smooth idf must decrease with df");
            prev = w;
        }
    }

    #[test]
    fn weigh_produces_normalized_vector() {
        let mut d = Dictionary::new();
        let a = d.intern("run");
        let b = d.intern("shoe");
        d.record_document([a, b]);
        d.record_document([a]);
        let v = WeightingConfig::standard().weigh([(a, 2), (b, 1)], &d);
        assert_eq!(v.len(), 2);
        assert!((v.norm() - 1.0).abs() < 1e-6);
        // "shoe" is rarer than "run", so even with lower tf it gets a
        // relatively higher idf boost.
        let idf_a = IdfScheme::Smooth.apply(d.doc_freq(a), d.num_docs());
        let idf_b = IdfScheme::Smooth.apply(d.doc_freq(b), d.num_docs());
        assert!(idf_b > idf_a);
    }

    #[test]
    fn weigh_unnormalized() {
        let mut d = Dictionary::new();
        let a = d.intern("x");
        let cfg = WeightingConfig {
            tf: TfScheme::Raw,
            idf: IdfScheme::None,
            l2_normalize: false,
        };
        let v = cfg.weigh([(a, 3)], &d);
        assert_eq!(v.get(a), 3.0);
    }

    #[test]
    fn weigh_empty_bag() {
        let d = Dictionary::new();
        let v = WeightingConfig::standard().weigh([], &d);
        assert!(v.is_empty());
    }
}
