//! Cross-file analysis context.
//!
//! Single-file rules are pure functions of one [`FileAnalysis`]; rules
//! like `rpc-exhaustive` instead relate a declaration in one file (the
//! protocol enums) to uses in several others (codec, server dispatch,
//! router merge tables). The engine therefore runs in two passes: pass 1
//! analyzes every file independently and distills each into a small
//! [`FileFacts`] record; pass 2 hands the assembled [`Workspace`] to the
//! cross-file rules. Facts are deliberately shallow — names, lines, and
//! `Enum::Variant` path pairs — so the context stays cheap to build and
//! easy to fake in fixtures (a fixture workspace is just a list of
//! `(path, source)` pairs).

use std::collections::BTreeSet;

use crate::analysis::FileAnalysis;
use crate::tree::Symbol;

/// An enum declaration, as seen from other files.
#[derive(Debug, Clone)]
pub struct EnumFacts {
    pub name: String,
    pub variants: Vec<String>,
    pub line: u32,
}

/// One function's cross-file-relevant content: the `Enum::Variant` (more
/// generally `Ident::Ident`) path pairs its non-test body mentions.
#[derive(Debug, Clone)]
pub struct FnFacts {
    pub name: String,
    pub line: u32,
    pub paths: BTreeSet<(String, String)>,
}

/// Everything the cross-file rules may know about one file.
#[derive(Debug)]
pub struct FileFacts {
    pub path: String,
    pub enums: Vec<EnumFacts>,
    pub fns: Vec<FnFacts>,
    pub symbols: Vec<Symbol>,
}

/// The assembled cross-file context: one [`FileFacts`] per linted file.
#[derive(Debug, Default)]
pub struct Workspace {
    pub files: Vec<FileFacts>,
}

impl Workspace {
    pub fn file(&self, path: &str) -> Option<&FileFacts> {
        self.files.iter().find(|f| f.path == path)
    }

    /// The enum `name` declared in `path`, if both exist in the context.
    pub fn enum_decl(&self, path: &str, name: &str) -> Option<&EnumFacts> {
        self.file(path)?.enums.iter().find(|e| e.name == name)
    }

    /// Union of `Enum::Variant` second components over every fn named
    /// `func` in `path` whose path pairs start with `enum_name`. Merging
    /// same-named fns (free fns vs methods in different impls) keeps the
    /// lookup stable without full name resolution.
    pub fn variants_used(&self, path: &str, func: &str, enum_name: &str) -> BTreeSet<&str> {
        let mut used = BTreeSet::new();
        if let Some(file) = self.file(path) {
            for f in file.fns.iter().filter(|f| f.name == func) {
                for (e, v) in &f.paths {
                    if e == enum_name {
                        used.insert(v.as_str());
                    }
                }
            }
        }
        used
    }
}

/// Distill one analyzed file into its cross-file facts.
pub fn extract(fa: &FileAnalysis) -> FileFacts {
    let enums = fa
        .tree
        .enums
        .iter()
        .map(|e| EnumFacts {
            name: e.name.clone(),
            variants: e.variants.clone(),
            line: e.line,
        })
        .collect();
    let mut fns = Vec::new();
    for f in &fa.fns {
        let (Some(open), Some(close)) = (f.body_open, f.body_close) else {
            continue;
        };
        let mut paths = BTreeSet::new();
        for i in open + 1..close {
            if fa.in_test[i] {
                continue;
            }
            let t = &fa.tokens[i];
            if t.kind != crate::lexer::TokKind::Ident {
                continue;
            }
            let is_path = fa.tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && fa.tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
                && fa
                    .tokens
                    .get(i + 3)
                    .is_some_and(|c| c.kind == crate::lexer::TokKind::Ident);
            if is_path {
                paths.insert((t.text.clone(), fa.tokens[i + 3].text.clone()));
            }
        }
        fns.push(FnFacts {
            name: f.name.clone(),
            line: f.line,
            paths,
        });
    }
    FileFacts {
        path: fa.rel_path.clone(),
        enums,
        fns,
        symbols: fa.tree.symbols.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_enum_and_fn_paths() {
        let proto = FileAnalysis::new(
            "crates/net/src/protocol.rs",
            "pub enum Request { A, B(u32), }",
        );
        let site = FileAnalysis::new(
            "crates/net/src/codec.rs",
            "fn put_request(r: &Request) { match r { Request::A => {}, Request::B(x) => {} } }",
        );
        let ws = Workspace {
            files: vec![extract(&proto), extract(&site)],
        };
        let decl = ws
            .enum_decl("crates/net/src/protocol.rs", "Request")
            .unwrap();
        assert_eq!(decl.variants, ["A", "B"]);
        let used = ws.variants_used("crates/net/src/codec.rs", "put_request", "Request");
        assert!(used.contains("A") && used.contains("B"));
    }
}
