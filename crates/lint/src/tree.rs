//! The item/block tree: a structural layer over the raw token stream.
//!
//! The v1 engine saw files as flat token runs, which is enough for "this
//! ident may not appear here" rules but not for scope questions ("is a
//! lock guard live at this call site?") or declaration questions ("which
//! variants does `enum Request` declare?"). This module answers both with
//! three cheap passes over the lexed tokens — still no `syn`:
//!
//! * **blocks** — every brace-matched `{ ... }` with a parent link, so a
//!   rule can ask for the smallest block enclosing a token;
//! * **items** — `enum` declarations with their variant lists, `impl`
//!   blocks with their target type, and `match` expressions with their arm
//!   block (functions already come from [`crate::analysis`]);
//! * **symbols** — a per-file list of declared names (fns, enums, structs,
//!   traits, mods, impl targets) that the cross-file context exposes to
//!   rules relating declarations in one file to uses in another.
//!
//! Like the rest of the analyzer this is heuristic: exact for the
//! rustfmt-formatted, macro-free item styles this workspace uses, and
//! soft-failing (a construct we cannot parse contributes no facts rather
//! than a false diagnostic).

use crate::analysis::matching_close;
use crate::lexer::{Tok, TokKind};

/// One brace-matched block. `open`/`close` are token indices of `{`/`}`.
#[derive(Debug, Clone)]
pub struct BlockNode {
    pub open: usize,
    pub close: usize,
    /// Index into the block list of the nearest enclosing block.
    pub parent: Option<usize>,
}

/// An `enum` declaration with its variant names in declaration order.
#[derive(Debug, Clone)]
pub struct EnumDecl {
    pub name: String,
    pub variants: Vec<String>,
    pub line: u32,
}

/// An `impl` block: `impl Type` or `impl Trait for Type`.
#[derive(Debug, Clone)]
pub struct ImplDecl {
    /// The implementing type's head ident (`Foo` in `impl Foo<T>`).
    pub type_name: String,
    pub line: u32,
}

/// A `match` expression and the block holding its arms.
#[derive(Debug, Clone)]
pub struct MatchExpr {
    /// Token index of the `match` keyword.
    pub kw: usize,
    /// Token indices of the arm block's `{`/`}`.
    pub open: usize,
    pub close: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SymbolKind {
    Fn,
    Enum,
    Struct,
    Trait,
    Mod,
    Impl,
}

/// One declared name, for the per-file symbol list.
#[derive(Debug, Clone)]
pub struct Symbol {
    pub kind: SymbolKind,
    pub name: String,
    pub line: u32,
}

/// The per-file structural index rules query.
#[derive(Debug, Default)]
pub struct ItemTree {
    pub blocks: Vec<BlockNode>,
    pub enums: Vec<EnumDecl>,
    pub impls: Vec<ImplDecl>,
    pub matches: Vec<MatchExpr>,
    pub symbols: Vec<Symbol>,
}

impl ItemTree {
    pub fn build(tokens: &[Tok]) -> ItemTree {
        let blocks = build_blocks(tokens);
        let enums = find_enums(tokens);
        let impls = find_impls(tokens);
        let matches = find_matches(tokens);
        let mut symbols = Vec::new();
        for (kw, kind) in [
            ("fn", SymbolKind::Fn),
            ("enum", SymbolKind::Enum),
            ("struct", SymbolKind::Struct),
            ("trait", SymbolKind::Trait),
            ("mod", SymbolKind::Mod),
        ] {
            for (i, t) in tokens.iter().enumerate() {
                if t.is_ident(kw) {
                    if let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        symbols.push(Symbol {
                            kind,
                            name: name.text.clone(),
                            line: t.line,
                        });
                    }
                }
            }
        }
        for im in &impls {
            symbols.push(Symbol {
                kind: SymbolKind::Impl,
                name: im.type_name.clone(),
                line: im.line,
            });
        }
        symbols.sort_by_key(|s| s.line);
        ItemTree {
            blocks,
            enums,
            impls,
            matches,
            symbols,
        }
    }

    /// The smallest block strictly containing token `idx`, if any.
    pub fn enclosing_block(&self, idx: usize) -> Option<&BlockNode> {
        self.blocks
            .iter()
            .filter(|b| b.open < idx && idx < b.close)
            .min_by_key(|b| b.close - b.open)
    }

    /// The enum named `name`, if declared in this file.
    pub fn enum_named(&self, name: &str) -> Option<&EnumDecl> {
        self.enums.iter().find(|e| e.name == name)
    }
}

/// Pair every `{` with its `}` and link each block to its parent.
fn build_blocks(tokens: &[Tok]) -> Vec<BlockNode> {
    let mut blocks: Vec<BlockNode> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.is_punct('{') {
            blocks.push(BlockNode {
                open: i,
                close: usize::MAX,
                parent: stack.last().copied(),
            });
            stack.push(blocks.len() - 1);
        } else if t.is_punct('}') {
            if let Some(b) = stack.pop() {
                blocks[b].close = i;
            }
        }
    }
    // An unbalanced file (mid-edit) still yields a usable tree: close the
    // stragglers at EOF rather than dropping them.
    let eof = tokens.len().saturating_sub(1);
    for b in &mut blocks {
        if b.close == usize::MAX {
            b.close = eof;
        }
    }
    blocks
}

/// `enum Name { Variant, Variant(T), Variant { .. }, }` — collect the
/// top-level variant names, skipping attribute groups and every nested
/// payload (parens, brackets, braces, and generic angle brackets, so a
/// `Vec<(A, B)>` payload's commas do not split a variant).
fn find_enums(tokens: &[Tok]) -> Vec<EnumDecl> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("enum") {
            continue;
        }
        let Some(name) = tokens.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        // Find the body `{`, skipping generics / where clauses.
        let mut j = i + 2;
        let open = loop {
            match tokens.get(j) {
                None => break None,
                Some(t) if t.is_punct('{') => break Some(j),
                Some(t) if t.is_punct(';') => break None,
                _ => j += 1,
            }
        };
        let Some(open) = open else { continue };
        let Some(close) = matching_close(tokens, open) else {
            continue;
        };
        let mut variants = Vec::new();
        let mut k = open + 1;
        while k < close {
            let tk = &tokens[k];
            // Variant attributes (`#[cfg(...)]` etc.) sit before the name.
            if tk.is_punct('#') && tokens.get(k + 1).is_some_and(|n| n.is_punct('[')) {
                match matching_close(tokens, k + 1) {
                    Some(c) => {
                        k = c + 1;
                        continue;
                    }
                    None => break,
                }
            }
            if tk.kind == TokKind::Ident {
                variants.push(tk.text.clone());
                k = skip_to_variant_comma(tokens, k + 1, close);
                continue;
            }
            k += 1;
        }
        out.push(EnumDecl {
            name: name.text.clone(),
            variants,
            line: t.line,
        });
    }
    out
}

/// From `start`, advance past one variant's payload to the token after the
/// separating top-level comma (or to `close`). Tracks paren/bracket/brace
/// depth and generic angle depth — variant payloads are type positions, so
/// `<`/`>` only ever nest generics there.
fn skip_to_variant_comma(tokens: &[Tok], start: usize, close: usize) -> usize {
    let mut depth = 0i64;
    let mut angle = 0i64;
    let mut k = start;
    while k < close {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct(',') && depth == 0 && angle <= 0 {
            return k + 1;
        }
        k += 1;
    }
    close
}

/// `impl Type` / `impl<T> Trait for Type` — record the implementing type.
fn find_impls(tokens: &[Tok]) -> Vec<ImplDecl> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("impl") {
            continue;
        }
        // Scan the header up to the body `{`; the implementing type is the
        // ident after `for` when present, else the first ident (generic
        // parameter lists are skipped).
        let mut j = i + 1;
        let mut angle = 0i64;
        let mut first_ident: Option<&Tok> = None;
        let mut after_for: Option<&Tok> = None;
        let mut saw_for = false;
        while let Some(tk) = tokens.get(j) {
            if tk.is_punct('<') {
                angle += 1;
            } else if tk.is_punct('>') {
                angle -= 1;
            } else if tk.is_punct('{') && angle <= 0 {
                break;
            } else if tk.is_ident("for") && angle <= 0 {
                saw_for = true;
            } else if tk.kind == TokKind::Ident && angle <= 0 && !tk.is_ident("where") {
                if saw_for && after_for.is_none() {
                    after_for = Some(tk);
                }
                if first_ident.is_none() {
                    first_ident = Some(tk);
                }
            }
            j += 1;
        }
        if let Some(name) = after_for.or(first_ident) {
            out.push(ImplDecl {
                type_name: name.text.clone(),
                line: t.line,
            });
        }
    }
    out
}

/// `match <scrutinee> { arms }` — the arm block is the first `{` outside
/// any paren/bracket group after the keyword (the workspace style never
/// puts a bare struct literal in a scrutinee).
fn find_matches(tokens: &[Tok]) -> Vec<MatchExpr> {
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("match") {
            continue;
        }
        let mut depth = 0i64;
        let mut j = i + 1;
        while let Some(tk) = tokens.get(j) {
            if tk.is_punct('(') || tk.is_punct('[') {
                depth += 1;
            } else if tk.is_punct(')') || tk.is_punct(']') {
                depth -= 1;
            } else if tk.is_punct('{') && depth == 0 {
                if let Some(close) = matching_close(tokens, j) {
                    out.push(MatchExpr {
                        kw: i,
                        open: j,
                        close,
                    });
                }
                break;
            } else if tk.is_punct(';') && depth == 0 {
                break;
            }
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> (Vec<Tok>, ItemTree) {
        let lexed = lex(src);
        let tree = ItemTree::build(&lexed.tokens);
        (lexed.tokens, tree)
    }

    #[test]
    fn blocks_nest_with_parents() {
        let (tokens, tree) = tree_of("fn f() { if x { y(); } }");
        assert_eq!(tree.blocks.len(), 2);
        let outer = &tree.blocks[0];
        let inner = &tree.blocks[1];
        assert_eq!(inner.parent, Some(0));
        assert!(outer.open < inner.open && inner.close < outer.close);
        let y = tokens.iter().position(|t| t.is_ident("y")).unwrap();
        let b = tree.enclosing_block(y).unwrap();
        assert_eq!(b.open, inner.open);
    }

    #[test]
    fn enum_variants_with_payloads() {
        let (_, tree) = tree_of(
            "pub enum Request { Ingest { batch: Vec<(UserId, FeedDelta)> }, \
             Recommend(Query), Routed { partition: u16, inner: Box<Request> }, Shutdown, }",
        );
        let e = tree.enum_named("Request").unwrap();
        assert_eq!(e.variants, ["Ingest", "Recommend", "Routed", "Shutdown"]);
    }

    #[test]
    fn impls_and_matches_and_symbols() {
        let src = "struct S; impl Clone for S { fn clone(&self) -> S { match self { _ => S } } }";
        let (_, tree) = tree_of(src);
        assert_eq!(tree.impls.len(), 1);
        assert_eq!(tree.impls[0].type_name, "S");
        assert_eq!(tree.matches.len(), 1);
        assert!(tree
            .symbols
            .iter()
            .any(|s| s.kind == SymbolKind::Struct && s.name == "S"));
        assert!(tree
            .symbols
            .iter()
            .any(|s| s.kind == SymbolKind::Fn && s.name == "clone"));
    }
}
