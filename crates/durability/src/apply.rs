//! The single mutation-application path.
//!
//! Both the live server (after logging + committing a record) and
//! recovery replay drive every mutation through [`apply_record`]. That
//! sharing is what makes the bit-identical recovery guarantee hold: a
//! replayed record takes *exactly* the code path the original RPC took,
//! so the recovered store and engines cannot diverge from the
//! uninterrupted twin.

use adcast_ads::{AdId, AdStore, CampaignState, PacingController};
use adcast_core::ShardedDriver;
use adcast_graph::UserId;
use adcast_stream::clock::now_ns;

use crate::record::WalRecord;

/// What applying one record did (mirrors what the server acks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ApplyEffect {
    /// A feed batch went through the sharded driver.
    Ingested {
        /// Deltas applied.
        accepted: u32,
    },
    /// A campaign was submitted under this id.
    Submitted {
        /// The assigned (sequential) id.
        ad: AdId,
    },
    /// A pause was applied (`changed` is false for no-op pauses).
    Paused {
        /// Did the state actually change?
        changed: bool,
    },
    /// A resume was applied.
    Resumed {
        /// Did the state actually change?
        changed: bool,
    },
    /// A removal was applied.
    Removed {
        /// Did the campaign exist?
        changed: bool,
    },
    /// A pacing controller was attached.
    PacingSet {
        /// Did the campaign exist?
        known: bool,
    },
    /// An impression was recorded.
    Impression {
        /// The campaign's state after the charge (`None` for an unknown
        /// campaign).
        state: Option<CampaignState>,
    },
    /// A lifecycle maintenance pass ran.
    Maintained {
        /// Users examined across shards.
        scanned: u64,
        /// Idle users reset to fresh state.
        decayed: u64,
        /// Finished-flight campaigns evicted from the index.
        pruned: u64,
    },
}

/// Apply one decoded WAL record to the store + driver pair.
///
/// # Errors
///
/// A description of why the record could not be applied (out-of-range
/// user, invalid submission, dead driver). During recovery an error here
/// aborts replay — a record that failed to apply live would never have
/// been logged, so failure indicates corruption that slipped past the
/// CRC, or a snapshot/WAL mismatch.
pub fn apply_record(
    store: &mut AdStore,
    driver: &mut ShardedDriver,
    record: WalRecord,
) -> Result<ApplyEffect, String> {
    match record {
        WalRecord::IngestBatch(deltas) => {
            let num_users = driver.num_users();
            for (user, _) in &deltas {
                if user.index() >= num_users as usize {
                    return Err(format!(
                        "user {} out of range (driver holds {num_users})",
                        user.0
                    ));
                }
            }
            let accepted = deltas.len() as u32;
            driver
                .process_batch(store, deltas)
                .map_err(|e| e.to_string())?;
            Ok(ApplyEffect::Ingested { accepted })
        }
        WalRecord::Submit(sub) => {
            let ad = store.submit(sub)?;
            Ok(ApplyEffect::Submitted { ad })
        }
        WalRecord::Pause(ad) => {
            let changed = store.pause(ad);
            if changed {
                driver.on_campaign_removed(ad);
            }
            Ok(ApplyEffect::Paused { changed })
        }
        WalRecord::Resume(ad) => Ok(ApplyEffect::Resumed {
            changed: store.resume(ad),
        }),
        WalRecord::Remove(ad) => {
            let changed = store.remove(ad);
            if changed {
                driver.on_campaign_removed(ad);
            }
            Ok(ApplyEffect::Removed { changed })
        }
        WalRecord::SetPacing {
            ad,
            start,
            end,
            budget,
        } => {
            // Decode already validated end > start and budget finite > 0,
            // so the constructor's asserts cannot fire.
            let pacing = PacingController::new(start, end, budget);
            Ok(ApplyEffect::PacingSet {
                known: store.set_pacing(ad, pacing),
            })
        }
        WalRecord::Impression {
            ad,
            cost,
            clicked,
            now,
        } => {
            let state = store.record_engagement(ad, cost, clicked, now);
            if state == Some(CampaignState::Exhausted) {
                driver.on_campaign_removed(ad);
            }
            Ok(ApplyEffect::Impression { state })
        }
        WalRecord::Maintenance { now, idle_for } => {
            let pass_started = now_ns();
            let expired = store.expire_finished(now);
            // Batched: flight expiry can retire thousands of campaigns in
            // one pass, and the per-ad purge sweeps every user state.
            driver.on_campaigns_removed(&expired);
            let (scanned, decayed) = driver.maintain(now, idle_for);
            let pruned = expired.len() as u64;
            // Telemetry lives here — on the shared apply path — so the
            // server and the simulation harness emit the same counters,
            // span, and flight-recorder event. Maintenance is rare and
            // cold, so per-pass registry resolution is fine.
            let reg = adcast_obs::registry();
            reg.counter(
                "adcast_maint_scanned_total",
                "Users examined by lifecycle maintenance passes.",
            )
            .add(scanned);
            reg.counter(
                "adcast_maint_decayed_total",
                "Idle users reset by lifecycle maintenance passes.",
            )
            .add(decayed);
            reg.counter(
                "adcast_maint_pruned_total",
                "Finished-flight campaigns evicted by maintenance passes.",
            )
            .add(pruned);
            reg.hist(
                "adcast_maint_pass_ns",
                "Wall time of one full lifecycle maintenance pass.",
            )
            .record(now_ns().saturating_sub(pass_started));
            adcast_obs::flightrec().record(
                adcast_obs::EventKind::Maintenance,
                scanned,
                decayed,
                pruned,
            );
            Ok(ApplyEffect::Maintained {
                scanned,
                decayed,
                pruned,
            })
        }
    }
}

/// Validate that every user in a batch is routable (shared by the server
/// before logging and by [`apply_record`]).
pub fn batch_in_range(deltas: &[(UserId, adcast_feed::FeedDelta)], num_users: u32) -> bool {
    deltas.iter().all(|(u, _)| u.index() < num_users as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcast_ads::{AdSubmission, Budget, Targeting};
    use adcast_core::EngineConfig;
    use adcast_feed::FeedDelta;
    use adcast_stream::clock::Timestamp;
    use adcast_stream::event::{LocationId, Message, MessageId};
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;
    use std::sync::Arc;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    fn submission(term: u32, budget: f64) -> AdSubmission {
        AdSubmission {
            vector: v(&[(term, 1.0)]),
            bid: 1.0,
            targeting: Targeting::everywhere(),
            budget: Budget::new(budget),
            topic_hint: None,
        }
    }

    fn pair() -> (AdStore, ShardedDriver) {
        let config = EngineConfig {
            half_life: None,
            ..Default::default()
        };
        (AdStore::new(), ShardedDriver::new(4, 1, config))
    }

    fn delta(term: u32, secs: u64) -> FeedDelta {
        FeedDelta {
            entered: Some(Arc::new(Message {
                id: MessageId(secs),
                author: UserId(0),
                ts: Timestamp::from_secs(secs),
                location: LocationId(0),
                vector: v(&[(term, 1.0)]),
            })),
            evicted: vec![],
        }
    }

    #[test]
    fn lifecycle_round() {
        let (mut store, mut driver) = pair();
        let ad = match apply_record(
            &mut store,
            &mut driver,
            WalRecord::Submit(submission(1, 10.0)),
        )
        .unwrap()
        {
            ApplyEffect::Submitted { ad } => ad,
            other => panic!("{other:?}"),
        };
        assert_eq!(ad, AdId(0));
        let effect = apply_record(
            &mut store,
            &mut driver,
            WalRecord::IngestBatch(vec![(UserId(0), delta(1, 1))]),
        )
        .unwrap();
        assert_eq!(effect, ApplyEffect::Ingested { accepted: 1 });
        assert_eq!(driver.stats().deltas, 1);

        let effect = apply_record(&mut store, &mut driver, WalRecord::Pause(ad)).unwrap();
        assert_eq!(effect, ApplyEffect::Paused { changed: true });
        let effect = apply_record(&mut store, &mut driver, WalRecord::Pause(ad)).unwrap();
        assert_eq!(effect, ApplyEffect::Paused { changed: false });
        let effect = apply_record(&mut store, &mut driver, WalRecord::Resume(ad)).unwrap();
        assert_eq!(effect, ApplyEffect::Resumed { changed: true });

        let effect = apply_record(
            &mut store,
            &mut driver,
            WalRecord::SetPacing {
                ad,
                start: Timestamp::from_secs(0),
                end: Timestamp::from_secs(100),
                budget: 5.0,
            },
        )
        .unwrap();
        assert_eq!(effect, ApplyEffect::PacingSet { known: true });

        let effect = apply_record(
            &mut store,
            &mut driver,
            WalRecord::Impression {
                ad,
                cost: 0.5,
                clicked: true,
                now: Timestamp::from_secs(10),
            },
        )
        .unwrap();
        assert_eq!(
            effect,
            ApplyEffect::Impression {
                state: Some(CampaignState::Active)
            }
        );

        let effect = apply_record(&mut store, &mut driver, WalRecord::Remove(ad)).unwrap();
        assert_eq!(effect, ApplyEffect::Removed { changed: true });
    }

    #[test]
    fn exhausting_impression_reaches_driver() {
        let (mut store, mut driver) = pair();
        apply_record(
            &mut store,
            &mut driver,
            WalRecord::Submit(submission(1, 1.0)),
        )
        .unwrap();
        let effect = apply_record(
            &mut store,
            &mut driver,
            WalRecord::Impression {
                ad: AdId(0),
                cost: 1.0,
                clicked: false,
                now: Timestamp::from_secs(1),
            },
        )
        .unwrap();
        assert_eq!(
            effect,
            ApplyEffect::Impression {
                state: Some(CampaignState::Exhausted)
            }
        );
        assert_eq!(store.num_active(), 0);
    }

    #[test]
    fn out_of_range_user_is_a_typed_error() {
        let (mut store, mut driver) = pair();
        let err = apply_record(
            &mut store,
            &mut driver,
            WalRecord::IngestBatch(vec![(UserId(100), delta(1, 1))]),
        )
        .unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        // The driver must survive: the batch was rejected before dispatch.
        assert!(!driver.is_dead());
        assert!(!batch_in_range(&[(UserId(100), delta(1, 1))], 4));
        assert!(batch_in_range(&[(UserId(3), delta(1, 1))], 4));
    }

    #[test]
    fn maintenance_decays_idle_users_and_prunes_finished_flights() {
        use adcast_stream::clock::Duration;
        let (mut store, mut driver) = pair();
        apply_record(
            &mut store,
            &mut driver,
            WalRecord::Submit(submission(1, 10.0)),
        )
        .unwrap();
        apply_record(
            &mut store,
            &mut driver,
            WalRecord::SetPacing {
                ad: AdId(0),
                start: Timestamp::from_secs(0),
                end: Timestamp::from_secs(100),
                budget: 5.0,
            },
        )
        .unwrap();
        apply_record(
            &mut store,
            &mut driver,
            WalRecord::IngestBatch(vec![(UserId(0), delta(1, 1))]),
        )
        .unwrap();
        apply_record(
            &mut store,
            &mut driver,
            WalRecord::IngestBatch(vec![(UserId(1), delta(1, 400))]),
        )
        .unwrap();
        // At t=500s: user 0 (idle 499s) decays, user 1 (idle 100s) stays;
        // the campaign's flight ended at t=100s, so it is pruned.
        let effect = apply_record(
            &mut store,
            &mut driver,
            WalRecord::Maintenance {
                now: Timestamp::from_secs(500),
                idle_for: Duration::from_secs(300),
            },
        )
        .unwrap();
        assert_eq!(
            effect,
            ApplyEffect::Maintained {
                scanned: 4,
                decayed: 1,
                pruned: 1,
            }
        );
        assert_eq!(store.num_active(), 0);
        // Replaying the identical record on a fresh pass is a no-op pass.
        let effect = apply_record(
            &mut store,
            &mut driver,
            WalRecord::Maintenance {
                now: Timestamp::from_secs(500),
                idle_for: Duration::from_secs(300),
            },
        )
        .unwrap();
        assert_eq!(
            effect,
            ApplyEffect::Maintained {
                scanned: 4,
                decayed: 0,
                pruned: 0,
            }
        );
    }

    #[test]
    fn unknown_campaign_effects() {
        let (mut store, mut driver) = pair();
        assert_eq!(
            apply_record(&mut store, &mut driver, WalRecord::Pause(AdId(9))).unwrap(),
            ApplyEffect::Paused { changed: false }
        );
        assert_eq!(
            apply_record(
                &mut store,
                &mut driver,
                WalRecord::Impression {
                    ad: AdId(9),
                    cost: 0.1,
                    clicked: false,
                    now: Timestamp::from_secs(1),
                },
            )
            .unwrap(),
            ApplyEffect::Impression { state: None }
        );
    }
}
