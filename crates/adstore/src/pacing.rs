//! Budget pacing.
//!
//! Without pacing, a relevant campaign drains its whole budget in the
//! first minutes of a flight ("greedy delivery") and goes dark. The
//! pacing controller throttles serving probabilistically so spend tracks
//! a linear schedule over the flight window — the standard
//! budget-pacing formulation (adaptive throttle rate, multiplicative
//! feedback).

use adcast_stream::clock::Timestamp;
use rand::Rng;

/// Multiplicative-feedback pacing controller for one campaign flight.
#[derive(Debug, Clone)]
pub struct PacingController {
    flight_start: Timestamp,
    flight_end: Timestamp,
    total_budget: f64,
    /// Current pass-through probability in `[min_throttle, 1]`.
    throttle: f64,
    /// Feedback step per adjustment.
    step: f64,
    /// Never throttle below this (keeps exploration alive).
    min_throttle: f64,
    /// Spend recorded so far.
    spent: f64,
}

impl PacingController {
    /// A controller for a flight `[start, end]` with `total_budget`.
    ///
    /// # Panics
    ///
    /// Panics when the flight is empty or the budget is not positive.
    pub fn new(start: Timestamp, end: Timestamp, total_budget: f64) -> Self {
        assert!(end > start, "flight must have positive length");
        assert!(
            total_budget > 0.0 && total_budget.is_finite(),
            "invalid budget"
        );
        PacingController {
            flight_start: start,
            flight_end: end,
            total_budget,
            throttle: 1.0,
            step: 0.1,
            min_throttle: 0.01,
            spent: 0.0,
        }
    }

    /// All controller state as `(start, end, total_budget, throttle,
    /// step, min_throttle, spent)`, exposed for snapshot/restore.
    pub fn to_parts(&self) -> (Timestamp, Timestamp, f64, f64, f64, f64, f64) {
        (
            self.flight_start,
            self.flight_end,
            self.total_budget,
            self.throttle,
            self.step,
            self.min_throttle,
            self.spent,
        )
    }

    /// Rebuild a controller from [`PacingController::to_parts`] output.
    ///
    /// # Errors
    ///
    /// Rejects (instead of panicking like [`PacingController::new`])
    /// values no healthy controller can reach, so a corrupt snapshot
    /// surfaces as a typed error.
    pub fn from_parts(
        start: Timestamp,
        end: Timestamp,
        total_budget: f64,
        throttle: f64,
        step: f64,
        min_throttle: f64,
        spent: f64,
    ) -> Result<Self, &'static str> {
        if end <= start {
            return Err("pacing flight must have positive length");
        }
        if !(total_budget.is_finite() && total_budget > 0.0) {
            return Err("pacing budget must be positive and finite");
        }
        if !((0.0..=1.0).contains(&throttle) && (0.0..=1.0).contains(&min_throttle)) {
            return Err("pacing throttle out of range");
        }
        if !(step.is_finite() && step >= 0.0) {
            return Err("pacing step out of range");
        }
        if !(spent.is_finite() && spent >= 0.0) {
            return Err("pacing spend out of range");
        }
        Ok(PacingController {
            flight_start: start,
            flight_end: end,
            total_budget,
            throttle,
            step,
            min_throttle,
            spent,
        })
    }

    /// The linear spend target at `now`.
    pub fn target_spend(&self, now: Timestamp) -> f64 {
        if now <= self.flight_start {
            return 0.0;
        }
        if now >= self.flight_end {
            return self.total_budget;
        }
        let elapsed = now.as_secs_f64() - self.flight_start.as_secs_f64();
        let flight = self.flight_end.as_secs_f64() - self.flight_start.as_secs_f64();
        self.total_budget * elapsed / flight
    }

    /// Recorded spend.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Current pass-through probability.
    pub fn throttle(&self) -> f64 {
        self.throttle
    }

    /// Record an actual charge.
    pub fn record_spend(&mut self, amount: f64) {
        assert!(amount >= 0.0 && amount.is_finite(), "invalid spend");
        self.spent += amount;
    }

    /// Adjust the throttle toward the schedule (call periodically, e.g.
    /// once per serving wave): multiplicative-increase when behind the
    /// schedule, multiplicative-decrease when ahead.
    pub fn adjust(&mut self, now: Timestamp) {
        let target = self.target_spend(now);
        if self.spent > target {
            self.throttle = (self.throttle * (1.0 - self.step)).max(self.min_throttle);
        } else {
            self.throttle = (self.throttle * (1.0 + self.step)).min(1.0);
        }
    }

    /// Should this serving opportunity pass through the throttle?
    pub fn should_serve<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.gen_bool(self.throttle.clamp(0.0, 1.0))
    }

    /// Is the flight over (by time or by budget)?
    pub fn is_done(&self, now: Timestamp) -> bool {
        now >= self.flight_end || self.spent >= self.total_budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn controller() -> PacingController {
        PacingController::new(Timestamp::from_secs(0), Timestamp::from_secs(100), 100.0)
    }

    #[test]
    fn target_is_linear() {
        let p = controller();
        assert_eq!(p.target_spend(Timestamp::from_secs(0)), 0.0);
        assert!((p.target_spend(Timestamp::from_secs(25)) - 25.0).abs() < 1e-9);
        assert!((p.target_spend(Timestamp::from_secs(100)) - 100.0).abs() < 1e-9);
        assert!((p.target_spend(Timestamp::from_secs(500)) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn throttle_reacts_to_overspend() {
        let mut p = controller();
        p.record_spend(50.0); // way ahead at t=10 (target 10)
        for _ in 0..10 {
            p.adjust(Timestamp::from_secs(10));
        }
        assert!(
            p.throttle() < 0.5,
            "must throttle down when ahead: {}",
            p.throttle()
        );
        // Later the schedule catches up; throttle recovers.
        for _ in 0..30 {
            p.adjust(Timestamp::from_secs(90));
        }
        assert!(
            (p.throttle() - 1.0).abs() < 1e-6,
            "recovers when behind schedule"
        );
    }

    #[test]
    fn throttle_never_hits_zero() {
        let mut p = controller();
        p.record_spend(1000.0);
        for _ in 0..200 {
            p.adjust(Timestamp::from_secs(1));
        }
        assert!(p.throttle() >= 0.01);
    }

    #[test]
    fn should_serve_tracks_throttle() {
        let mut p = controller();
        p.record_spend(90.0);
        for _ in 0..20 {
            p.adjust(Timestamp::from_secs(10));
        }
        let mut rng = SmallRng::seed_from_u64(3);
        const N: usize = 10_000;
        let served = (0..N).filter(|_| p.should_serve(&mut rng)).count();
        let frac = served as f64 / N as f64;
        assert!(
            (frac - p.throttle()).abs() < 0.02,
            "{frac} vs {}",
            p.throttle()
        );
    }

    #[test]
    fn done_by_time_or_budget() {
        let mut p = controller();
        assert!(!p.is_done(Timestamp::from_secs(50)));
        assert!(p.is_done(Timestamp::from_secs(100)));
        p.record_spend(100.0);
        assert!(p.is_done(Timestamp::from_secs(1)));
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_flight_panics() {
        let _ = PacingController::new(Timestamp::from_secs(5), Timestamp::from_secs(5), 1.0);
    }

    #[test]
    fn closed_loop_simulation_spreads_spend() {
        // Greedy vs paced over a flight with heavy serving pressure:
        // the paced controller should spend roughly half its budget by
        // half-time, the greedy strategy drains early.
        let mut rng = SmallRng::seed_from_u64(9);
        let mut paced = controller();
        let mut greedy_spent = 0.0f64;
        let mut paced_half = None;
        let mut greedy_half = None;
        for tick in 0..1000u64 {
            let now = Timestamp(tick * 100_000); // 0.1s ticks
                                                 // 5 opportunities per tick, each costing 0.5.
            for _ in 0..5 {
                if greedy_spent < 100.0 {
                    greedy_spent += 0.5;
                }
                if paced.spent() < 100.0 && paced.should_serve(&mut rng) {
                    paced.record_spend(0.5);
                }
            }
            paced.adjust(now);
            if greedy_half.is_none() && greedy_spent >= 50.0 {
                greedy_half = Some(now);
            }
            if paced_half.is_none() && paced.spent() >= 50.0 {
                paced_half = Some(now);
            }
        }
        let g = greedy_half.expect("greedy reaches half").as_secs_f64();
        let p = paced_half.expect("paced reaches half").as_secs_f64();
        assert!(
            p > 3.0 * g,
            "pacing must defer spend: paced {p}s vs greedy {g}s"
        );
        assert!(
            (40.0..=60.0).contains(&p),
            "paced half-spend near half-flight, got {p}s"
        );
    }
}
