//! Message-trace record and replay.
//!
//! Experiments are replayable two ways: regenerate from the seed, or write
//! the materialized stream to a compact binary trace and replay it later
//! (useful for cross-engine comparisons on *identical* inputs without
//! re-running the generator, and for persisting interesting workloads).
//!
//! The codec is hand-rolled on the `bytes` crate (no serde format crates
//! are available offline). Layout, all little-endian:
//!
//! ```text
//! header:  magic "ADCT" | version u16 | reserved u16
//! record:  id u64 | author u32 | ts u64 | location u16
//!        | nterms u16 | nterms × (term u32, weight f32)
//! ```

use std::sync::Arc;

use adcast_graph::UserId;
use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::clock::Timestamp;
use crate::event::{LocationId, Message, MessageId, SharedMessage};

const MAGIC: &[u8; 4] = b"ADCT";
const VERSION: u16 = 1;

/// Write a `magic | version u16 | reserved u16` stream header.
///
/// Shared by the trace codec (stream-level header) and the `adcast-net`
/// wire codec (per-frame header): both formats lead with the same 8-byte
/// shape so one pair of helpers guards both against malformed inputs.
pub fn put_stream_header(buf: &mut BytesMut, magic: &[u8; 4], version: u16) {
    buf.put_slice(magic);
    buf.put_u16_le(version);
    buf.put_u16_le(0);
}

/// Validate and consume a header written by [`put_stream_header`].
///
/// # Errors
///
/// [`TraceError::BadMagic`] when the buffer is shorter than a header or
/// does not start with `magic`; [`TraceError::BadVersion`] on a version
/// mismatch. Never panics, whatever the peer sent.
pub fn check_stream_header(
    data: &mut Bytes,
    magic: &[u8; 4],
    version: u16,
) -> Result<(), TraceError> {
    if data.remaining() < 8 {
        return Err(TraceError::BadMagic);
    }
    let mut found = [0u8; 4];
    data.copy_to_slice(&mut found);
    if &found != magic {
        return Err(TraceError::BadMagic);
    }
    let found_version = data.get_u16_le();
    if found_version != version {
        return Err(TraceError::BadVersion(found_version));
    }
    let _reserved = data.get_u16_le();
    Ok(())
}

/// Encode one message record (the layout in the module docs).
///
/// # Panics
///
/// Panics when the vector holds more than `u16::MAX` terms.
pub fn put_message(buf: &mut BytesMut, m: &Message) {
    let n = u16::try_from(m.vector.len()).expect("vector larger than u16::MAX terms");
    buf.put_u64_le(m.id.0);
    buf.put_u32_le(m.author.0);
    buf.put_u64_le(m.ts.micros());
    buf.put_u16_le(m.location.0);
    buf.put_u16_le(n);
    for (t, w) in m.vector.iter() {
        buf.put_u32_le(t.0);
        buf.put_f32_le(w);
    }
}

/// Decode one message record written by [`put_message`].
///
/// # Errors
///
/// [`TraceError::Truncated`] when the buffer ends mid-record,
/// [`TraceError::Corrupt`] on invalid payloads (zero/non-finite weights,
/// unsorted terms). Never panics, whatever the peer sent.
pub fn get_message(data: &mut Bytes) -> Result<SharedMessage, TraceError> {
    const FIXED: usize = 8 + 4 + 8 + 2 + 2;
    if data.remaining() < FIXED {
        return Err(TraceError::Truncated);
    }
    let id = MessageId(data.get_u64_le());
    let author = UserId(data.get_u32_le());
    let ts = Timestamp(data.get_u64_le());
    let location = LocationId(data.get_u16_le());
    let n = data.get_u16_le() as usize;
    if data.remaining() < n * 8 {
        return Err(TraceError::Truncated);
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let t = TermId(data.get_u32_le());
        let w = data.get_f32_le();
        if !w.is_finite() || w == 0.0 {
            return Err(TraceError::Corrupt("zero or non-finite weight"));
        }
        entries.push((t, w));
    }
    if entries.windows(2).any(|p| p[0].0 >= p[1].0) {
        return Err(TraceError::Corrupt("terms not strictly sorted"));
    }
    let vector = SparseVector::from_sorted(entries);
    Ok(Arc::new(Message {
        id,
        author,
        ts,
        location,
        vector,
    }))
}

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace does not start with the `ADCT` magic.
    BadMagic,
    /// The trace was written by an incompatible version.
    BadVersion(u16),
    /// The trace ends mid-record.
    Truncated,
    /// A record contains an invalid payload (e.g. non-finite weight).
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not an adcast trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace truncated mid-record"),
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Serializes messages into an in-memory trace buffer.
#[derive(Debug)]
pub struct TraceWriter {
    buf: BytesMut,
    count: u64,
}

impl Default for TraceWriter {
    fn default() -> Self {
        TraceWriter::new()
    }
}

impl TraceWriter {
    /// Start a new trace (writes the header).
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(4096);
        put_stream_header(&mut buf, MAGIC, VERSION);
        TraceWriter { buf, count: 0 }
    }

    /// Append one message.
    pub fn write(&mut self, m: &Message) {
        put_message(&mut self.buf, m);
        self.count += 1;
    }

    /// Messages written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bytes written so far (header included).
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Finish, returning the immutable trace bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Streaming decoder over trace bytes.
#[derive(Debug)]
pub struct TraceReader {
    data: Bytes,
}

impl TraceReader {
    /// Validate the header and position after it.
    pub fn new(mut data: Bytes) -> Result<Self, TraceError> {
        check_stream_header(&mut data, MAGIC, VERSION)?;
        Ok(TraceReader { data })
    }

    /// Decode the next message, `Ok(None)` at a clean end of trace.
    pub fn next_message(&mut self) -> Result<Option<SharedMessage>, TraceError> {
        if !self.data.has_remaining() {
            return Ok(None);
        }
        get_message(&mut self.data).map(Some)
    }

    /// Decode the whole remaining trace.
    pub fn read_all(&mut self) -> Result<Vec<SharedMessage>, TraceError> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGenerator};

    fn sample_messages(n: usize) -> Vec<SharedMessage> {
        let mut g = WorkloadGenerator::with_poisson(WorkloadConfig::tiny(), 50.0);
        (0..n).map(|_| g.next_message()).collect()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let msgs = sample_messages(25);
        let mut w = TraceWriter::new();
        for m in &msgs {
            w.write(m);
        }
        assert_eq!(w.count(), 25);
        let bytes = w.finish();
        let mut r = TraceReader::new(bytes).unwrap();
        let decoded = r.read_all().unwrap();
        assert_eq!(decoded.len(), msgs.len());
        for (a, b) in msgs.iter().zip(&decoded) {
            assert_eq!(**a, **b);
        }
    }

    #[test]
    fn empty_trace_roundtrip() {
        let bytes = TraceWriter::new().finish();
        let mut r = TraceReader::new(bytes).unwrap();
        assert_eq!(r.read_all().unwrap().len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceReader::new(Bytes::from_static(b"NOPE0000")).unwrap_err();
        assert_eq!(err, TraceError::BadMagic);
        let err = TraceReader::new(Bytes::from_static(b"AD")).unwrap_err();
        assert_eq!(err, TraceError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(99);
        buf.put_u16_le(0);
        let err = TraceReader::new(buf.freeze()).unwrap_err();
        assert_eq!(err, TraceError::BadVersion(99));
    }

    #[test]
    fn truncated_record_detected() {
        let msgs = sample_messages(2);
        let mut w = TraceWriter::new();
        for m in &msgs {
            w.write(m);
        }
        let bytes = w.finish();
        let cut = bytes.slice(0..bytes.len() - 3);
        let mut r = TraceReader::new(cut).unwrap();
        let res = r.read_all();
        assert_eq!(res.unwrap_err(), TraceError::Truncated);
    }

    #[test]
    fn corrupt_weight_detected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf.put_u64_le(0); // id
        buf.put_u32_le(0); // author
        buf.put_u64_le(0); // ts
        buf.put_u16_le(0); // location
        buf.put_u16_le(1); // one term
        buf.put_u32_le(7);
        buf.put_f32_le(f32::NAN);
        let mut r = TraceReader::new(buf.freeze()).unwrap();
        assert!(matches!(r.next_message(), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn unsorted_terms_detected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        buf.put_u16_le(0);
        buf.put_u16_le(2);
        buf.put_u32_le(9);
        buf.put_f32_le(1.0);
        buf.put_u32_le(3);
        buf.put_f32_le(1.0);
        let mut r = TraceReader::new(buf.freeze()).unwrap();
        assert!(matches!(r.next_message(), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn shared_header_helpers_roundtrip_and_reject() {
        let mut buf = BytesMut::new();
        put_stream_header(&mut buf, b"WXYZ", 3);
        let mut ok = buf.clone().freeze();
        assert_eq!(check_stream_header(&mut ok, b"WXYZ", 3), Ok(()));
        assert_eq!(ok.remaining(), 0, "header fully consumed");
        let mut wrong_magic = buf.clone().freeze();
        assert_eq!(
            check_stream_header(&mut wrong_magic, b"ABCD", 3),
            Err(TraceError::BadMagic)
        );
        let mut wrong_version = buf.freeze();
        assert_eq!(
            check_stream_header(&mut wrong_version, b"WXYZ", 4),
            Err(TraceError::BadVersion(3))
        );
        // Shorter than a header (the empty buffer included): BadMagic,
        // never a panic.
        for cut in 0..8usize {
            let mut short = Bytes::from_static(b"WXYZ\x03\x00\x00\x00").slice(0..cut);
            assert_eq!(
                check_stream_header(&mut short, b"WXYZ", 3),
                Err(TraceError::BadMagic),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn shared_message_record_truncations_never_panic() {
        let msg = &sample_messages(1)[0];
        let mut buf = BytesMut::new();
        put_message(&mut buf, msg);
        let bytes = buf.freeze();
        let mut whole = bytes.clone();
        assert_eq!(&*get_message(&mut whole).unwrap(), &**msg);
        // Every proper prefix must decode to Truncated, not panic.
        for cut in 0..bytes.len() {
            let mut prefix = bytes.slice(0..cut);
            assert_eq!(
                get_message(&mut prefix),
                Err(TraceError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn error_display() {
        assert!(TraceError::BadMagic.to_string().contains("magic"));
        assert!(TraceError::BadVersion(9).to_string().contains('9'));
        assert!(TraceError::Truncated.to_string().contains("truncated"));
    }
}
