// Fixture: applying a record to the in-memory store before the WAL commit
// must trip `wal-ordering`. Linted under the server.rs rel path; never
// compiled.

fn log_apply(d: &mut Durability, store: &mut AdStore, record: WalRecord) -> Result<(), WireError> {
    apply_record(store, &record).map_err(|_| WireError::Unavailable)?;
    d.log(&record).map_err(|_| WireError::Unavailable)?;
    d.commit().map_err(|_| WireError::Unavailable)
}
