//! # adcast-ads — advertisement substrate for `adcast`
//!
//! Everything on the advertiser side of the system:
//!
//! * [`ad`] — the ad unit: keyword vector + bid,
//! * [`targeting`] — location / time-slot predicates,
//! * [`budget`] — campaign budgets with spend tracking,
//! * [`campaign`] — ad + budget + lifecycle state,
//! * [`index`] — the impact-ordered blocked inverted index over ad terms:
//!   SoA posting lanes sorted by descending weight with per-block maxima
//!   (the upper-bound metadata that block-max WAND pruning and the
//!   incremental engine's promotion screening both rely on),
//! * [`store`] — the campaign table keeping index and lifecycle consistent
//!   under churn (insert / pause / resume / budget exhaustion),
//! * [`auction`] — generalized second-price auctions with quality scores,
//! * [`ctr`] — position-bias click simulation and smoothed CTR tracking,
//! * [`pacing`] — multiplicative-feedback budget pacing,
//! * [`snapshot`] — plain-data capture of the full store state (private
//!   fields included) for the durability layer's snapshot files.

pub mod ad;
pub mod auction;
pub mod budget;
pub mod campaign;
pub mod ctr;
pub mod index;
pub mod pacing;
pub mod snapshot;
pub mod store;
pub mod targeting;

pub use ad::{Ad, AdId};
pub use auction::{run_gsp, AuctionBid, AuctionConfig, SlotAward};
pub use budget::Budget;
pub use campaign::{Campaign, CampaignState};
pub use ctr::{ClickModel, CtrTracker};
pub use index::{AdIndex, Posting, PostingsView, BLOCK_SIZE};
pub use pacing::PacingController;
pub use snapshot::{CampaignSnapshot, PacingSnapshot, StoreSnapshot};
pub use store::{AdStore, AdSubmission};
pub use targeting::Targeting;
