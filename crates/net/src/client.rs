//! Blocking client for the adcast wire protocol.
//!
//! One [`Client`] wraps one TCP connection and runs a closed loop: each
//! call writes a frame, then blocks for the matching reply (ids are
//! checked, so a desynchronized stream surfaces as
//! [`NetError::IdMismatch`] instead of silently mis-pairing replies).
//! Connect retries with exponential backoff so a load generator can race
//! server startup; the same retry loop backs [`Client::reconnect`], so a
//! caller can ride through a server restart. A peer that vanishes
//! mid-RPC (broken pipe, connection reset, EOF inside a reply) surfaces
//! as the typed [`NetError::Disconnected`] — the caller knows the
//! request's fate is unknown and can reconnect + retry where that is
//! safe. Per-call timeouts come from the socket read timeout.

use std::io;
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use adcast_ads::AdId;
use adcast_core::Recommendation;
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::LocationId;
use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::codec::{decode_response, encode_request, read_frame, write_frame, NetError};
use crate::protocol::{CampaignSpec, NodeStatus, Request, Response, ServerStats, TraceContext};

/// Connection and retry knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connect attempts before giving up (also per [`Client::reconnect`]
    /// call).
    pub connect_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub initial_backoff: Duration,
    /// Per-RPC reply timeout (`None` = wait forever).
    pub rpc_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_attempts: 8,
            initial_backoff: Duration::from_millis(20),
            rpc_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A blocking connection to an adcast server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    addr: String,
    config: ClientConfig,
}

/// Process-wide sequence feeding the reconnect jitter, so two clients in
/// the same process (a loadgen worker fleet, a router's per-node pools)
/// get different jitter streams even when dialing the same address.
static JITTER_SEQ: AtomicU64 = AtomicU64::new(0);

/// A jitter RNG seeded from the dialed address and the process-wide
/// sequence — deterministic (no wallclock, no OS entropy), but distinct
/// per connect attempt and per dialing thread.
fn jitter_rng(addr: &str) -> SmallRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
    for byte in addr.bytes() {
        seed = (seed ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    seed ^= JITTER_SEQ
        .fetch_add(1, Ordering::Relaxed)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    SmallRng::seed_from_u64(seed)
}

/// The shared connect-with-backoff loop (initial connect and reconnect).
/// Each sleep is the exponential backoff plus up to 50% jitter: after a
/// failover, every pool and worker notices the dead primary in the same
/// instant, and unjittered backoff would have them all re-dial the
/// promoted node in synchronized waves.
fn connect_with_backoff(addr: &str, config: &ClientConfig) -> Result<TcpStream, NetError> {
    let mut rng = jitter_rng(addr);
    let mut backoff = config.initial_backoff;
    let mut last: Option<io::Error> = None;
    for attempt in 0..config.connect_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff.mul_f64(1.0 + rng.gen_range(0.0..0.5)));
            backoff = backoff.saturating_mul(2);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(config.rpc_timeout)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(NetError::Io(last.unwrap_or_else(|| {
        io::Error::other("no connect attempts made")
    })))
}

/// Does this error mean the peer went away (as opposed to a protocol or
/// local failure)?
fn is_disconnect(err: &NetError) -> bool {
    match err {
        NetError::UnexpectedEof => true,
        NetError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::BrokenPipe
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::NotConnected
        ),
        _ => false,
    }
}

impl Client {
    /// Connect with retry + exponential backoff.
    ///
    /// # Errors
    ///
    /// The last connect error once `connect_attempts` is exhausted.
    pub fn connect(addr: impl Into<String>, config: &ClientConfig) -> Result<Client, NetError> {
        let addr = addr.into();
        let stream = connect_with_backoff(&addr, config)?;
        Ok(Client {
            stream,
            next_id: 1,
            addr,
            config: config.clone(),
        })
    }

    /// Drop the (possibly dead) connection and dial the same address
    /// again with the same retry/backoff policy. Any RPC that was in
    /// flight when the old connection died is of unknown fate — re-issue
    /// it only where at-least-once semantics are acceptable.
    ///
    /// # Errors
    ///
    /// The last connect error once `connect_attempts` is exhausted; the
    /// client keeps its old (dead) stream in that case so a later retry
    /// is still possible.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        self.stream = connect_with_backoff(&self.addr, &self.config)?;
        self.next_id = 1;
        Ok(())
    }

    /// The address this client dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Issue one RPC and wait for its reply.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the server goes away mid-RPC
    /// (write or read side), [`NetError::IdMismatch`] on a
    /// desynchronized stream, and transport/codec failures otherwise. A
    /// server-side [`Response::Error`] is returned as `Ok` — use the
    /// typed wrappers below to turn those into [`NetError::Remote`].
    pub fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let outcome = (|| {
            write_frame(&mut self.stream, &encode_request(id, req))?;
            read_frame(&mut self.stream)?.ok_or(NetError::UnexpectedEof)
        })();
        let body = match outcome {
            Ok(body) => body,
            Err(e) if is_disconnect(&e) => return Err(NetError::Disconnected),
            Err(e) => return Err(e),
        };
        let (got, resp) = decode_response(body)?;
        if got != id {
            return Err(NetError::IdMismatch { expected: id, got });
        }
        Ok(resp)
    }

    /// Apply a batch of feed deltas; returns the accepted count.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] carries server-side refusals — match
    /// [`crate::WireError::Overloaded`] to implement retry-with-backoff.
    pub fn ingest(&mut self, deltas: Vec<(UserId, FeedDelta)>) -> Result<u32, NetError> {
        match self.call(&Request::Ingest { deltas })? {
            Response::Ingested { accepted } => Ok(accepted),
            other => Err(unexpected(other)),
        }
    }

    /// Serve the top-`k` ads for `user`.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn recommend(
        &mut self,
        user: UserId,
        now: Timestamp,
        location: LocationId,
        k: u16,
    ) -> Result<Vec<Recommendation>, NetError> {
        match self.call(&Request::Recommend {
            user,
            now,
            location,
            k,
        })? {
            Response::Recommendations(recs) => Ok(recs),
            other => Err(unexpected(other)),
        }
    }

    /// Submit a campaign; returns its assigned id.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn submit_campaign(&mut self, spec: CampaignSpec) -> Result<AdId, NetError> {
        match self.call(&Request::SubmitCampaign(spec))? {
            Response::CampaignAccepted { ad } => Ok(ad),
            other => Err(unexpected(other)),
        }
    }

    /// Pause a campaign everywhere.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn pause_campaign(&mut self, ad: AdId) -> Result<(), NetError> {
        match self.call(&Request::PauseCampaign { ad })? {
            Response::CampaignPaused { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Charge an impression; returns whether it exhausted the budget.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn impression(
        &mut self,
        ad: AdId,
        cost: f64,
        clicked: bool,
        now: Timestamp,
    ) -> Result<bool, NetError> {
        match self.call(&Request::Impression {
            ad,
            cost,
            clicked,
            now,
        })? {
            Response::ImpressionRecorded { exhausted, .. } => Ok(exhausted),
            other => Err(unexpected(other)),
        }
    }

    /// Run a lifecycle maintenance pass (evict finished-flight campaigns,
    /// reset users idle for at least `idle_for`); returns `(scanned,
    /// decayed, pruned)` counts.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn maintain(
        &mut self,
        now: Timestamp,
        idle_for: adcast_stream::clock::Duration,
    ) -> Result<(u64, u64, u64), NetError> {
        match self.call(&Request::Maintain { now, idle_for })? {
            Response::Maintained {
                scanned,
                decayed,
                pruned,
            } => Ok((scanned, decayed, pruned)),
            other => Err(unexpected(other)),
        }
    }

    /// Force a durable snapshot; returns the WAL position it covers.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`]; a server without a data directory refuses
    /// with [`crate::WireError::BadRequest`].
    pub fn checkpoint(&mut self) -> Result<u64, NetError> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpointed { lsn } => Ok(lsn),
            other => Err(unexpected(other)),
        }
    }

    /// Dump the server's flight recorder to disk; returns the number of
    /// events written.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`]; a server without a data directory refuses
    /// with [`crate::WireError::BadRequest`].
    pub fn obs_dump(&mut self) -> Result<u64, NetError> {
        match self.call(&Request::ObsDump)? {
            Response::ObsDumped { events } => Ok(events),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot the server's counters and latency percentiles.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn stats(&mut self) -> Result<ServerStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to drain and stop.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ship committed WAL records to a follower; returns the follower's
    /// `next_lsn` after making them durable **and** applying them.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] carries the typed refusals the replication
    /// protocol turns on: [`crate::WireError::StaleEpoch`] (this sender
    /// is deposed), [`crate::WireError::LsnGap`] (fall back to
    /// [`Client::install_snapshot`]).
    pub fn repl_append(
        &mut self,
        partition: u16,
        epoch: u64,
        trace: TraceContext,
        entries: Vec<(u64, Bytes)>,
    ) -> Result<u64, NetError> {
        match self.call(&Request::ReplAppend {
            partition,
            epoch,
            trace,
            entries,
        })? {
            Response::ReplAck { durable_lsn } => Ok(durable_lsn),
            other => Err(unexpected(other)),
        }
    }

    /// Ship a full engine-set snapshot to a follower for catch-up;
    /// returns the follower's `next_lsn` after the install.
    ///
    /// # Errors
    ///
    /// See [`Client::repl_append`].
    pub fn install_snapshot(
        &mut self,
        partition: u16,
        epoch: u64,
        snapshot: Bytes,
    ) -> Result<u64, NetError> {
        match self.call(&Request::InstallSnapshot {
            partition,
            epoch,
            snapshot,
        })? {
            Response::SnapshotInstalled { next_lsn } => Ok(next_lsn),
            other => Err(unexpected(other)),
        }
    }

    /// Promote a follower to primary of `partition` under `epoch`;
    /// returns `(epoch, next_lsn)` it now serves at.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] with [`crate::WireError::StaleEpoch`] when
    /// the node already holds an equal-or-higher epoch.
    pub fn promote(&mut self, partition: u16, epoch: u64) -> Result<(u64, u64), NetError> {
        match self.call(&Request::Promote { partition, epoch })? {
            Response::Promoted { epoch, next_lsn } => Ok((epoch, next_lsn)),
            other => Err(unexpected(other)),
        }
    }

    /// A node's cluster identity and replication position (served by
    /// every role, including fenced nodes — it's how the router and the
    /// smoke scripts observe failover).
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn cluster_status(&mut self) -> Result<NodeStatus, NetError> {
        match self.call(&Request::ClusterStatus)? {
            Response::ClusterStatusReply {
                role,
                partition,
                epoch,
                durable_lsn,
                fenced,
                degraded,
            } => Ok(NodeStatus {
                role,
                partition,
                epoch,
                durable_lsn,
                fenced,
                degraded,
            }),
            other => Err(unexpected(other)),
        }
    }
}

/// Fold a non-matching reply into a typed error.
fn unexpected(resp: Response) -> NetError {
    match resp {
        Response::Error(e) => NetError::Remote(e),
        other => NetError::Decode(adcast_stream::trace::TraceError::Corrupt(match other {
            Response::Ingested { .. } => "unexpected Ingested reply",
            Response::Recommendations(_) => "unexpected Recommendations reply",
            Response::CampaignAccepted { .. } => "unexpected CampaignAccepted reply",
            Response::CampaignPaused { .. } => "unexpected CampaignPaused reply",
            Response::ImpressionRecorded { .. } => "unexpected ImpressionRecorded reply",
            Response::Maintained { .. } => "unexpected Maintained reply",
            Response::Checkpointed { .. } => "unexpected Checkpointed reply",
            Response::ObsDumped { .. } => "unexpected ObsDumped reply",
            Response::Stats(_) => "unexpected Stats reply",
            Response::ShutdownAck => "unexpected ShutdownAck reply",
            Response::ReplAck { .. } => "unexpected ReplAck reply",
            Response::SnapshotInstalled { .. } => "unexpected SnapshotInstalled reply",
            Response::Promoted { .. } => "unexpected Promoted reply",
            Response::ClusterStatusReply { .. } => "unexpected ClusterStatusReply reply",
            Response::Error(_) => unreachable!(),
        })),
    }
}
