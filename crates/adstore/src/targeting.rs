//! Ad targeting predicates.
//!
//! An ad may restrict where (location cells) and when (time-of-day slots)
//! it is eligible. Empty restriction = match everything. Targeting is a
//! *hard filter* applied before scoring — the context-aware ranking then
//! orders the eligible ads.

use adcast_stream::clock::Timestamp;
use adcast_stream::event::{LocationId, TimeSlot};
use adcast_stream::geo::GeoGrid;

/// Location and time-slot restrictions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Targeting {
    /// Eligible cells (sorted); empty = everywhere.
    locations: Vec<LocationId>,
    /// Eligible slots; empty = always.
    slots: Vec<TimeSlot>,
}

impl Targeting {
    /// No restrictions.
    pub fn everywhere() -> Self {
        Targeting::default()
    }

    /// Restrict to the given cells.
    pub fn in_locations(mut self, locations: impl IntoIterator<Item = LocationId>) -> Self {
        self.locations = locations.into_iter().collect();
        self.locations.sort_unstable();
        self.locations.dedup();
        self
    }

    /// Restrict to every cell within `radius` of `center` on `grid`
    /// (geo-radius campaigns; see [`adcast_stream::geo`]).
    pub fn within_radius(self, grid: &GeoGrid, center: LocationId, radius: f64) -> Self {
        let cells = grid.cells_within(center, radius);
        self.in_locations(cells)
    }

    /// Restrict to the given time slots.
    pub fn in_slots(mut self, slots: impl IntoIterator<Item = TimeSlot>) -> Self {
        self.slots = slots.into_iter().collect();
        self.slots.dedup();
        self
    }

    /// The location restriction (empty = everywhere).
    pub fn locations(&self) -> &[LocationId] {
        &self.locations
    }

    /// The slot restriction (empty = always).
    pub fn slots(&self) -> &[TimeSlot] {
        &self.slots
    }

    /// Does the predicate accept a user at `location` at time `ts`?
    pub fn matches(&self, location: LocationId, ts: Timestamp) -> bool {
        self.matches_location(location) && self.matches_time(ts)
    }

    /// Location half of the predicate.
    pub fn matches_location(&self, location: LocationId) -> bool {
        self.locations.is_empty() || self.locations.binary_search(&location).is_ok()
    }

    /// Time half of the predicate.
    pub fn matches_time(&self, ts: Timestamp) -> bool {
        self.slots.is_empty() || self.slots.contains(&TimeSlot::of(ts))
    }

    /// Is this predicate unrestricted?
    pub fn is_everywhere(&self) -> bool {
        self.locations.is_empty() && self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at_hour(h: u64) -> Timestamp {
        Timestamp(h * 3600 * 1_000_000)
    }

    #[test]
    fn everywhere_matches_all() {
        let t = Targeting::everywhere();
        assert!(t.is_everywhere());
        assert!(t.matches(LocationId(0), at_hour(3)));
        assert!(t.matches(LocationId(999), at_hour(15)));
    }

    #[test]
    fn location_restriction() {
        let t = Targeting::everywhere().in_locations([LocationId(3), LocationId(1)]);
        assert!(t.matches_location(LocationId(1)));
        assert!(t.matches_location(LocationId(3)));
        assert!(!t.matches_location(LocationId(2)));
        assert_eq!(t.locations(), &[LocationId(1), LocationId(3)], "sorted");
    }

    #[test]
    fn slot_restriction() {
        let t = Targeting::everywhere().in_slots([TimeSlot::Morning]);
        assert!(t.matches_time(at_hour(9)));
        assert!(!t.matches_time(at_hour(15)));
        assert!(!t.matches_time(at_hour(23)));
    }

    #[test]
    fn combined_restriction_is_conjunction() {
        let t = Targeting::everywhere()
            .in_locations([LocationId(5)])
            .in_slots([TimeSlot::Afternoon]);
        assert!(t.matches(LocationId(5), at_hour(15)));
        assert!(
            !t.matches(LocationId(5), at_hour(9)),
            "right place, wrong time"
        );
        assert!(
            !t.matches(LocationId(4), at_hour(15)),
            "right time, wrong place"
        );
        assert!(!t.is_everywhere());
    }

    #[test]
    fn radius_targeting_matches_nearby_cells() {
        let grid = GeoGrid::new(10, 10);
        let center = grid.cell(5, 5);
        let t = Targeting::everywhere().within_radius(&grid, center, 2.0);
        assert!(t.matches_location(center));
        assert!(
            t.matches_location(grid.cell(5, 7)),
            "distance 2 is inclusive"
        );
        assert!(!t.matches_location(grid.cell(5, 8)), "distance 3 excluded");
        assert!(!t.matches_location(grid.cell(8, 8)));
        assert_eq!(t.locations().len(), 13);
    }

    #[test]
    fn duplicate_restrictions_dedup() {
        let t = Targeting::everywhere().in_locations([LocationId(1), LocationId(1)]);
        assert_eq!(t.locations().len(), 1);
    }
}
