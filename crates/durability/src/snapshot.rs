//! Versioned, checksummed full-state snapshots.
//!
//! A snapshot captures the complete serving state at one WAL position:
//! the [`AdStore`] (campaigns, budgets, pacing, CTR) and every shard
//! engine's per-user state. Recovery loads the newest valid snapshot and
//! replays only the WAL records with `lsn >= next_lsn`.
//!
//! On-disk layout of `snap-{next_lsn:016x}.snap`:
//!
//! ```text
//! header:  magic "ADSS" | version u16 | reserved u16
//!          next_lsn u64 | payload_len u32 | crc32 u32
//! payload: num_users u32 | num_shards u32 | store | num_shards × engine
//! ```
//!
//! The CRC covers the payload; decoding consumes it entirely, so a
//! truncated or bit-flipped file yields a typed [`TraceError`] and the
//! loader falls back to the next-older snapshot. Files are written
//! atomically — serialized to `*.tmp`, fsynced, renamed into place, then
//! the directory is fsynced — so a crash mid-write can never leave a
//! half-snapshot under the real name.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use adcast_ads::{Ad, AdId, AdStore, CampaignState};
use adcast_ads::{CampaignSnapshot, PacingSnapshot, StoreSnapshot};
use adcast_core::snapshot::{EngineSnapshot, UserStateSnapshot};
use adcast_core::{EngineStats, ShardedDriver};
use adcast_stream::clock::Timestamp;
use adcast_stream::event::LocationId;
use adcast_stream::trace::{check_stream_header, put_stream_header, TraceError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::backend::{fs_backend, StorageBackend};
use crate::codec::{
    get_context_vector, get_slot, get_vector, need, put_context_vector, put_slot, put_vector,
};
use crate::crc::crc32;
use crate::wal;

/// Snapshot file magic (traces use `ADCT`, wire frames `ADCN`, WAL
/// segments `ADWL`).
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"ADSS";
/// Snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Upper bound on one snapshot payload (1 GiB) — declared lengths above
/// this are rejected before allocation.
pub const MAX_SNAPSHOT: usize = 1 << 30;

/// Snapshot subsystem failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum SnapshotError {
    /// Filesystem failure.
    Io(io::Error),
    /// WAL-side failure while pruning segments a snapshot made redundant.
    Wal(wal::WalError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io: {e}"),
            SnapshotError::Wal(e) => write!(f, "snapshot prune: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<wal::WalError> for SnapshotError {
    fn from(e: wal::WalError) -> Self {
        SnapshotError::Wal(e)
    }
}

/// The complete serving state at one WAL cut.
#[derive(Debug, Clone)]
pub struct EngineSetSnapshot {
    /// First WAL LSN *not* covered by this snapshot (replay starts here).
    pub next_lsn: u64,
    /// Total users across all shards.
    pub num_users: u32,
    /// Shard count the engine states were captured under.
    pub num_shards: u32,
    /// The ad store (campaigns, budgets, pacing, CTR, index epoch).
    pub store: StoreSnapshot,
    /// Per-shard engine state, shard order.
    pub engines: Vec<EngineSnapshot>,
}

impl EngineSetSnapshot {
    /// Capture a consistent cut of `store` + `driver`. The caller must
    /// hold the engine thread between batches so no worker is mid-flight.
    pub fn capture(next_lsn: u64, store: &AdStore, driver: &ShardedDriver) -> Self {
        EngineSetSnapshot {
            next_lsn,
            num_users: driver.num_users(),
            num_shards: driver.num_shards() as u32,
            store: store.export_snapshot(),
            engines: driver.export_snapshots(),
        }
    }

    /// Serialize to the full file byte image (header + CRC + payload).
    /// `next_lsn` lives inside the CRC-covered payload, so a bit flip in
    /// the replay position is caught like any other corruption.
    pub fn encode(&self) -> Bytes {
        let mut payload = BytesMut::with_capacity(4096);
        payload.put_u64_le(self.next_lsn);
        payload.put_u32_le(self.num_users);
        payload.put_u32_le(self.num_shards);
        put_store(&mut payload, &self.store);
        for engine in &self.engines {
            put_engine(&mut payload, engine);
        }
        let payload = payload.freeze();
        let mut file = BytesMut::with_capacity(16 + payload.len());
        put_stream_header(&mut file, SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        file.put_u32_le(u32::try_from(payload.len()).expect("snapshot too large"));
        file.put_u32_le(crc32(&payload));
        file.put_slice(&payload);
        file.freeze()
    }

    /// Decode a full file byte image.
    ///
    /// # Errors
    ///
    /// Typed [`TraceError`] on any malformation (bad header, CRC
    /// mismatch, truncation, trailing bytes); never panics.
    pub fn decode(mut data: Bytes) -> Result<EngineSetSnapshot, TraceError> {
        check_stream_header(&mut data, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        need(&data, 4 + 4)?;
        let len = data.get_u32_le() as usize;
        if len > MAX_SNAPSHOT {
            return Err(TraceError::Corrupt("impossible snapshot length"));
        }
        let crc = data.get_u32_le();
        need(&data, len)?;
        if data.remaining() > len {
            return Err(TraceError::Corrupt("trailing bytes after snapshot"));
        }
        let mut payload = data;
        if crc32(&payload) != crc {
            return Err(TraceError::Corrupt("snapshot crc mismatch"));
        }
        need(&payload, 16)?;
        let next_lsn = payload.get_u64_le();
        let num_users = payload.get_u32_le();
        let num_shards = payload.get_u32_le();
        if num_shards == 0 || num_shards > 4096 {
            return Err(TraceError::Corrupt("impossible shard count"));
        }
        let store = get_store(&mut payload)?;
        let mut engines = Vec::with_capacity(num_shards as usize);
        for _ in 0..num_shards {
            engines.push(get_engine(&mut payload)?);
        }
        if payload.has_remaining() {
            return Err(TraceError::Corrupt("trailing bytes in snapshot payload"));
        }
        Ok(EngineSetSnapshot {
            next_lsn,
            num_users,
            num_shards,
            store,
            engines,
        })
    }
}

fn put_ad(buf: &mut BytesMut, ad: &Ad) {
    buf.put_u32_le(ad.id.0);
    put_vector(buf, &ad.vector);
    buf.put_f32_le(ad.bid);
    let locations = ad.targeting.locations();
    buf.put_u16_le(u16::try_from(locations.len()).expect("too many locations"));
    for loc in locations {
        buf.put_u16_le(loc.0);
    }
    let slots = ad.targeting.slots();
    buf.put_u8(u8::try_from(slots.len()).expect("too many slots"));
    for slot in slots {
        put_slot(buf, *slot);
    }
    match ad.topic_hint {
        Some(t) => {
            buf.put_u8(1);
            buf.put_u64_le(t as u64);
        }
        None => buf.put_u8(0),
    }
}

fn get_ad(data: &mut Bytes) -> Result<Ad, TraceError> {
    need(data, 4)?;
    let id = AdId(data.get_u32_le());
    let vector = get_vector(data)?;
    need(data, 4 + 2)?;
    let bid = data.get_f32_le();
    let nloc = data.get_u16_le() as usize;
    need(data, nloc * 2)?;
    let locations: Vec<LocationId> = (0..nloc).map(|_| LocationId(data.get_u16_le())).collect();
    need(data, 1)?;
    let nslots = data.get_u8() as usize;
    let mut slots = Vec::with_capacity(nslots);
    for _ in 0..nslots {
        slots.push(get_slot(data)?);
    }
    need(data, 1)?;
    let topic_hint = match data.get_u8() {
        0 => None,
        1 => {
            need(data, 8)?;
            Some(data.get_u64_le() as usize)
        }
        _ => return Err(TraceError::Corrupt("bad topic flag")),
    };
    Ok(Ad {
        id,
        vector,
        bid,
        targeting: adcast_ads::Targeting::everywhere()
            .in_locations(locations)
            .in_slots(slots),
        topic_hint,
    })
}

fn put_store(buf: &mut BytesMut, store: &StoreSnapshot) {
    buf.put_u64_le(store.index_epoch);
    buf.put_u32_le(u32::try_from(store.campaigns.len()).expect("too many campaigns"));
    for c in &store.campaigns {
        put_ad(buf, &c.ad);
        buf.put_u64_le(c.budget_total_micros);
        buf.put_u64_le(c.budget_spent_micros);
        buf.put_u8(match c.state {
            CampaignState::Active => 0,
            CampaignState::Paused => 1,
            CampaignState::Exhausted => 2,
            CampaignState::Removed => 3,
        });
        buf.put_u64_le(c.impressions);
        buf.put_u64_le(c.ctr_impressions);
        buf.put_u64_le(c.ctr_clicks);
        match &c.pacing {
            Some(p) => {
                buf.put_u8(1);
                buf.put_u64_le(p.flight_start.micros());
                buf.put_u64_le(p.flight_end.micros());
                buf.put_f64_le(p.total_budget);
                buf.put_f64_le(p.throttle);
                buf.put_f64_le(p.step);
                buf.put_f64_le(p.min_throttle);
                buf.put_f64_le(p.spent);
            }
            None => buf.put_u8(0),
        }
    }
}

fn get_store(data: &mut Bytes) -> Result<StoreSnapshot, TraceError> {
    need(data, 8 + 4)?;
    let index_epoch = data.get_u64_le();
    let n = data.get_u32_le() as usize;
    let mut campaigns = Vec::with_capacity(n.min(65_536));
    for _ in 0..n {
        let ad = get_ad(data)?;
        need(data, 8 + 8 + 1 + 8 + 8 + 8 + 1)?;
        let budget_total_micros = data.get_u64_le();
        let budget_spent_micros = data.get_u64_le();
        let state = match data.get_u8() {
            0 => CampaignState::Active,
            1 => CampaignState::Paused,
            2 => CampaignState::Exhausted,
            3 => CampaignState::Removed,
            _ => return Err(TraceError::Corrupt("bad campaign state")),
        };
        let impressions = data.get_u64_le();
        let ctr_impressions = data.get_u64_le();
        let ctr_clicks = data.get_u64_le();
        let pacing = match data.get_u8() {
            0 => None,
            1 => {
                need(data, 8 + 8 + 5 * 8)?;
                Some(PacingSnapshot {
                    flight_start: Timestamp(data.get_u64_le()),
                    flight_end: Timestamp(data.get_u64_le()),
                    total_budget: data.get_f64_le(),
                    throttle: data.get_f64_le(),
                    step: data.get_f64_le(),
                    min_throttle: data.get_f64_le(),
                    spent: data.get_f64_le(),
                })
            }
            _ => return Err(TraceError::Corrupt("bad pacing flag")),
        };
        campaigns.push(CampaignSnapshot {
            ad,
            budget_total_micros,
            budget_spent_micros,
            state,
            impressions,
            ctr_impressions,
            ctr_clicks,
            pacing,
        });
    }
    Ok(StoreSnapshot {
        campaigns,
        index_epoch,
    })
}

fn put_stats(buf: &mut BytesMut, stats: &EngineStats) {
    for v in [
        stats.deltas,
        stats.postings_scanned,
        stats.ads_scored,
        stats.screened_out,
        stats.promotions,
        stats.refreshes,
        stats.fallbacks,
        stats.recommends,
        stats.rebases,
        stats.hot_path_allocs,
    ] {
        buf.put_u64_le(v);
    }
}

fn get_stats(data: &mut Bytes) -> Result<EngineStats, TraceError> {
    need(data, 10 * 8)?;
    Ok(EngineStats {
        deltas: data.get_u64_le(),
        postings_scanned: data.get_u64_le(),
        ads_scored: data.get_u64_le(),
        screened_out: data.get_u64_le(),
        promotions: data.get_u64_le(),
        refreshes: data.get_u64_le(),
        fallbacks: data.get_u64_le(),
        recommends: data.get_u64_le(),
        rebases: data.get_u64_le(),
        hot_path_allocs: data.get_u64_le(),
    })
}

fn put_scored_list(buf: &mut BytesMut, entries: &[(AdId, f32)]) {
    buf.put_u32_le(u32::try_from(entries.len()).expect("too many entries"));
    for &(ad, v) in entries {
        buf.put_u32_le(ad.0);
        buf.put_f32_le(v);
    }
}

fn get_scored_list(data: &mut Bytes) -> Result<Vec<(AdId, f32)>, TraceError> {
    need(data, 4)?;
    let n = data.get_u32_le() as usize;
    need(data, n.saturating_mul(8))?;
    Ok((0..n)
        .map(|_| (AdId(data.get_u32_le()), data.get_f32_le()))
        .collect())
}

fn put_engine(buf: &mut BytesMut, engine: &EngineSnapshot) {
    put_stats(buf, &engine.stats);
    buf.put_u32_le(u32::try_from(engine.users.len()).expect("too many users"));
    for user in &engine.users {
        buf.put_u64_le(user.landmark.micros());
        buf.put_u64_le(user.last_ts.micros());
        put_context_vector(buf, &user.context);
        put_scored_list(buf, &user.buffer);
        put_scored_list(buf, &user.cache);
        buf.put_f32_le(user.ceiling);
        buf.put_f32_le(user.outside_bound);
        buf.put_u64_le(user.index_epoch);
    }
}

fn get_engine(data: &mut Bytes) -> Result<EngineSnapshot, TraceError> {
    let stats = get_stats(data)?;
    need(data, 4)?;
    let n = data.get_u32_le() as usize;
    let mut users = Vec::with_capacity(n.min(1_048_576));
    for _ in 0..n {
        need(data, 16)?;
        let landmark = Timestamp(data.get_u64_le());
        let last_ts = Timestamp(data.get_u64_le());
        let context = get_context_vector(data)?;
        let buffer = get_scored_list(data)?;
        let cache = get_scored_list(data)?;
        need(data, 4 + 4 + 8)?;
        let ceiling = data.get_f32_le();
        let outside_bound = data.get_f32_le();
        let index_epoch = data.get_u64_le();
        users.push(UserStateSnapshot {
            landmark,
            last_ts,
            context,
            buffer,
            cache,
            ceiling,
            outside_bound,
            index_epoch,
        });
    }
    Ok(EngineSnapshot { stats, users })
}

/// The file name of the snapshot covering WAL positions below `next_lsn`.
pub fn snapshot_file_name(next_lsn: u64) -> String {
    format!("snap-{next_lsn:016x}.snap")
}

/// Parse a snapshot file name back to its `next_lsn`.
pub fn parse_snapshot_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("snap-")?.strip_suffix(".snap")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// One snapshot file on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    /// The WAL position the snapshot covers up to (exclusive).
    pub next_lsn: u64,
    /// Full path.
    pub path: PathBuf,
}

/// Enumerate snapshot files in `dir`, sorted oldest-first by `next_lsn`.
///
/// # Errors
///
/// [`SnapshotError::Io`] on directory-read failures; a missing directory
/// is an empty list.
pub fn list_snapshots(dir: &Path) -> Result<Vec<SnapshotInfo>, SnapshotError> {
    Ok(list_snapshot_lsns_on(&*fs_backend(dir))?
        .into_iter()
        .map(|next_lsn| SnapshotInfo {
            next_lsn,
            path: dir.join(snapshot_file_name(next_lsn)),
        })
        .collect())
}

/// Enumerate snapshot `next_lsn`s on `backend`, sorted ascending.
///
/// # Errors
///
/// [`SnapshotError::Io`] on listing failures.
pub fn list_snapshot_lsns_on(backend: &dyn StorageBackend) -> Result<Vec<u64>, SnapshotError> {
    let mut lsns: Vec<u64> = backend
        .list()?
        .iter()
        .filter_map(|name| parse_snapshot_name(name))
        .collect();
    lsns.sort_unstable();
    Ok(lsns)
}

/// Write `bytes` as the snapshot at `next_lsn`, atomically: the image
/// goes to a `.tmp` file, is fsynced, renamed into place, and the
/// directory is fsynced. A crash at any point leaves either the old
/// snapshot set or the complete new file — never a torn snapshot under
/// the real name.
///
/// # Errors
///
/// [`SnapshotError::Io`] on filesystem failures.
pub fn write_snapshot_atomic(
    dir: &Path,
    next_lsn: u64,
    bytes: &[u8],
) -> Result<PathBuf, SnapshotError> {
    fs::create_dir_all(dir)?;
    write_snapshot_atomic_on(&*fs_backend(dir), next_lsn, bytes)?;
    Ok(dir.join(snapshot_file_name(next_lsn)))
}

/// [`write_snapshot_atomic`] against a [`StorageBackend`]; returns the
/// final file name.
///
/// # Errors
///
/// [`SnapshotError::Io`] on backend failures.
pub fn write_snapshot_atomic_on(
    backend: &dyn StorageBackend,
    next_lsn: u64,
    bytes: &[u8],
) -> Result<String, SnapshotError> {
    let final_name = snapshot_file_name(next_lsn);
    let tmp_name = format!("{final_name}.tmp");
    let mut tmp = backend.create(&tmp_name)?;
    tmp.write_all(bytes)?;
    tmp.flush()?;
    tmp.sync_all()?;
    drop(tmp);
    backend.rename(&tmp_name, &final_name)?;
    backend.sync_dir()?;
    Ok(final_name)
}

/// A successfully loaded snapshot.
#[derive(Debug)]
pub struct LoadedSnapshot {
    /// The decoded snapshot.
    pub snapshot: EngineSetSnapshot,
    /// The file it came from.
    pub path: PathBuf,
    /// Newer snapshot files that failed to decode and were skipped.
    pub skipped_corrupt: u32,
}

/// Load the newest valid snapshot, falling back to older files when the
/// newest is unreadable or corrupt. `Ok(None)` means no usable snapshot
/// exists (cold start: replay the whole WAL).
///
/// # Errors
///
/// [`SnapshotError::Io`] on directory-read failures only; per-file damage
/// is a fallback, not an error.
pub fn load_latest(dir: &Path) -> Result<Option<LoadedSnapshot>, SnapshotError> {
    Ok(
        load_latest_on(&*fs_backend(dir))?.map(|(snapshot, skipped_corrupt)| {
            let path = dir.join(snapshot_file_name(snapshot.next_lsn));
            LoadedSnapshot {
                snapshot,
                path,
                skipped_corrupt,
            }
        }),
    )
}

/// [`load_latest`] against a [`StorageBackend`]; returns the decoded
/// snapshot and how many newer corrupt files were skipped.
///
/// # Errors
///
/// [`SnapshotError::Io`] on listing failures only.
pub fn load_latest_on(
    backend: &dyn StorageBackend,
) -> Result<Option<(EngineSetSnapshot, u32)>, SnapshotError> {
    let mut skipped = 0u32;
    for next_lsn in list_snapshot_lsns_on(backend)?.into_iter().rev() {
        if let Ok(raw) = backend.read(&snapshot_file_name(next_lsn)) {
            match EngineSetSnapshot::decode(Bytes::from(raw)) {
                // The file name is the lookup key; a content/name mismatch
                // means the file was tampered with or misplaced.
                Ok(snapshot) if snapshot.next_lsn == next_lsn => {
                    return Ok(Some((snapshot, skipped)))
                }
                _ => skipped += 1,
            }
        } else {
            skipped += 1;
        }
    }
    Ok(None)
}

/// Delete everything the retained snapshot set makes redundant: snapshot
/// files older than the newest `keep_snapshots`, and WAL segments whose
/// *entire* record range lies below the **oldest retained** snapshot's
/// `next_lsn` (a segment is prunable only when the next segment's base
/// shows every record in it is below the cut; the newest segment is never
/// pruned). Bounding by the oldest retained snapshot — not the newest —
/// keeps fallback recovery sound: if the newest snapshot turns out
/// corrupt, the older one still has every segment its replay needs.
/// Returns `(snapshots_removed, segments_removed)`.
///
/// # Errors
///
/// [`SnapshotError::Io`] on filesystem failures, [`SnapshotError::Wal`]
/// when segment enumeration fails.
pub fn prune(
    dir: &Path,
    next_lsn: u64,
    keep_snapshots: usize,
) -> Result<(u64, u64), SnapshotError> {
    prune_on(&*fs_backend(dir), next_lsn, keep_snapshots)
}

/// [`prune`] against a [`StorageBackend`].
///
/// # Errors
///
/// As [`prune`].
pub fn prune_on(
    backend: &dyn StorageBackend,
    next_lsn: u64,
    keep_snapshots: usize,
) -> Result<(u64, u64), SnapshotError> {
    let snapshots = list_snapshot_lsns_on(backend)?;
    let mut snapshots_removed = 0u64;
    if snapshots.len() > keep_snapshots {
        for lsn in &snapshots[..snapshots.len() - keep_snapshots] {
            backend.remove(&snapshot_file_name(*lsn))?;
            snapshots_removed += 1;
        }
    }
    // Replay for the oldest snapshot we keep starts at its own next_lsn;
    // every segment at or above that cut must survive. With no snapshots
    // at all, every segment is still live (cold start replays the full
    // log), whatever `next_lsn` the caller believed it covered.
    let retained_start = snapshots.len().saturating_sub(keep_snapshots);
    let segment_bound = snapshots
        .get(retained_start)
        .copied()
        .unwrap_or(0)
        .min(next_lsn);
    let segments = wal::list_segment_lsns_on(backend)?;
    let mut segments_removed = 0u64;
    for pair in segments.windows(2) {
        if pair[1] <= segment_bound {
            backend.remove(&wal::segment_file_name(pair[0]))?;
            segments_removed += 1;
        }
    }
    if snapshots_removed + segments_removed > 0 {
        backend.sync_dir()?;
    }
    Ok((snapshots_removed, segments_removed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcast_ads::{AdSubmission, Budget, PacingController, Targeting};
    use adcast_core::EngineConfig;
    use adcast_feed::FeedDelta;
    use adcast_graph::UserId;
    use adcast_stream::event::{Message, MessageId};
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "adcast-snap-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    /// A store + driver with non-trivial state: campaigns with budgets,
    /// pacing, CTR history, and users with warm buffers.
    fn populated() -> (AdStore, ShardedDriver) {
        let mut store = AdStore::new();
        for t in 0..6u32 {
            store
                .submit(AdSubmission {
                    vector: v(&[(t, 1.0), (t + 6, 0.5)]),
                    bid: 1.0 + t as f32 * 0.25,
                    targeting: Targeting::everywhere(),
                    budget: if t % 2 == 0 {
                        Budget::new(10.0)
                    } else {
                        Budget::unlimited()
                    },
                    topic_hint: (t % 3 == 0).then_some(t as usize),
                })
                .unwrap();
        }
        store.pause(AdId(5));
        store.set_pacing(
            AdId(0),
            PacingController::new(Timestamp::from_secs(0), Timestamp::from_secs(3600), 5.0),
        );
        store.record_engagement(AdId(0), 0.25, true, Timestamp::from_secs(10));
        store.record_engagement(AdId(2), 0.5, false, Timestamp::from_secs(11));

        let config = EngineConfig::default();
        let mut driver = ShardedDriver::new(8, 2, config);
        let deltas: Vec<(UserId, FeedDelta)> = (0..32u64)
            .map(|i| {
                (
                    UserId((i % 8) as u32),
                    FeedDelta {
                        entered: Some(Arc::new(Message {
                            id: MessageId(i),
                            author: UserId(0),
                            ts: Timestamp::from_secs(i + 1),
                            location: LocationId(0),
                            vector: v(&[((i % 6) as u32, 0.8)]),
                        })),
                        evicted: vec![],
                    },
                )
            })
            .collect();
        driver.process_batch(&store, deltas).unwrap();
        (store, driver)
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        let (store, driver) = populated();
        let snap = EngineSetSnapshot::capture(42, &store, &driver);
        let bytes = snap.encode();
        let back = EngineSetSnapshot::decode(bytes.clone()).unwrap();
        assert_eq!(back.next_lsn, 42);
        assert_eq!(back.num_users, 8);
        assert_eq!(back.num_shards, 2);
        assert_eq!(back.store, snap.store);
        assert_eq!(back.engines, snap.engines);
        // Determinism: capturing and encoding again yields identical bytes.
        assert_eq!(
            EngineSetSnapshot::capture(42, &store, &driver).encode(),
            bytes
        );
    }

    #[test]
    fn restore_rebuilds_equivalent_state() {
        let (store, mut driver) = populated();
        let snap = EngineSetSnapshot::capture(0, &store, &driver);
        let decoded = EngineSetSnapshot::decode(snap.encode()).unwrap();

        let restored_store = AdStore::from_snapshot(decoded.store).unwrap();
        let mut restored = ShardedDriver::new(8, 2, EngineConfig::default());
        restored.restore_snapshots(&decoded.engines).unwrap();

        assert_eq!(restored_store.export_snapshot(), store.export_snapshot());
        assert_eq!(restored_store.index_epoch(), store.index_epoch());
        assert_eq!(restored.stats(), driver.stats());
        let now = Timestamp::from_secs(100);
        for u in 0..8u32 {
            let a = driver.recommend(&store, UserId(u), now, LocationId(0), 3);
            let b = restored.recommend(&restored_store, UserId(u), now, LocationId(0), 3);
            assert_eq!(a, b, "user {u}");
        }
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let (store, driver) = populated();
        let clean = EngineSetSnapshot::capture(7, &store, &driver).encode();
        for offset in 0..clean.len() {
            if offset == 6 || offset == 7 {
                continue; // reserved header bytes, legitimately ignored
            }
            let mut bad = clean.to_vec();
            bad[offset] ^= 0x10;
            assert!(
                EngineSetSnapshot::decode(Bytes::from(bad)).is_err(),
                "flip at {offset} undetected"
            );
        }
        // Truncation at every length is detected too.
        for cut in 0..clean.len() {
            assert!(
                EngineSetSnapshot::decode(clean.slice(0..cut)).is_err(),
                "cut at {cut} undetected"
            );
        }
    }

    #[test]
    fn load_latest_falls_back_over_corruption() {
        let dir = temp_dir("fallback");
        let (store, driver) = populated();
        for lsn in [10u64, 20, 30] {
            let bytes = EngineSetSnapshot::capture(lsn, &store, &driver).encode();
            write_snapshot_atomic(&dir, lsn, &bytes).unwrap();
        }
        // Corrupt the newest file's payload.
        let newest = dir.join(snapshot_file_name(30));
        let mut raw = fs::read(&newest).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0xFF;
        fs::write(&newest, &raw).unwrap();

        let loaded = load_latest(&dir).unwrap().expect("older snapshot valid");
        assert_eq!(loaded.snapshot.next_lsn, 20);
        assert_eq!(loaded.skipped_corrupt, 1);

        // No snapshots at all → None.
        let empty = temp_dir("empty");
        assert!(load_latest(&empty).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
        fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn tmp_files_are_invisible_to_the_loader() {
        let dir = temp_dir("tmp");
        fs::write(dir.join("snap-0000000000000005.snap.tmp"), b"garbage").unwrap();
        assert!(list_snapshots(&dir).unwrap().is_empty());
        assert!(load_latest(&dir).unwrap().is_none());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_newest_and_covered_segments() {
        let dir = temp_dir("prune");
        let (store, driver) = populated();
        for lsn in [5u64, 10, 15] {
            let bytes = EngineSetSnapshot::capture(lsn, &store, &driver).encode();
            write_snapshot_atomic(&dir, lsn, &bytes).unwrap();
        }
        // Three WAL segments based at 0, 8, 16: with next_lsn = 15, the
        // first (records 0..8) is fully covered, the second (8..16) holds
        // record 15 and must survive, and the last always survives.
        let options = crate::wal::WalOptions {
            fsync: crate::wal::FsyncPolicy::Off,
            segment_bytes: u64::MAX,
        };
        for base in [0u64, 8, 16] {
            drop(crate::wal::WalWriter::create(&dir, options, base).unwrap());
        }
        let (snaps, segs) = prune(&dir, 15, 2).unwrap();
        assert_eq!(snaps, 1);
        assert_eq!(segs, 1);
        let remaining = list_snapshots(&dir).unwrap();
        assert_eq!(
            remaining.iter().map(|s| s.next_lsn).collect::<Vec<_>>(),
            vec![10, 15]
        );
        let segments = wal::list_segments(&dir).unwrap();
        assert_eq!(
            segments.iter().map(|s| s.base_lsn).collect::<Vec<_>>(),
            vec![8, 16]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_preserves_segments_the_fallback_snapshot_needs() {
        let dir = temp_dir("prune-fallback");
        let (store, driver) = populated();
        // Two snapshots, both retained under keep=2. The older one (5)
        // replays from lsn 5, which lives in the segment based at 0 —
        // pruning by the *newest* snapshot's cut (15) would delete it and
        // strand fallback recovery.
        for lsn in [5u64, 15] {
            let bytes = EngineSetSnapshot::capture(lsn, &store, &driver).encode();
            write_snapshot_atomic(&dir, lsn, &bytes).unwrap();
        }
        let options = crate::wal::WalOptions {
            fsync: crate::wal::FsyncPolicy::Off,
            segment_bytes: u64::MAX,
        };
        for base in [0u64, 8, 16] {
            drop(crate::wal::WalWriter::create(&dir, options, base).unwrap());
        }
        let (snaps, segs) = prune(&dir, 15, 2).unwrap();
        assert_eq!(snaps, 0);
        assert_eq!(segs, 0, "segment 0 is still needed by snapshot 5");
        let segments = wal::list_segments(&dir).unwrap();
        assert_eq!(
            segments.iter().map(|s| s.base_lsn).collect::<Vec<_>>(),
            vec![0, 8, 16]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_names_roundtrip() {
        assert_eq!(snapshot_file_name(0x2a), "snap-000000000000002a.snap");
        assert_eq!(
            parse_snapshot_name("snap-000000000000002a.snap"),
            Some(0x2a)
        );
        assert_eq!(parse_snapshot_name("snap-2a.snap"), None);
        assert_eq!(parse_snapshot_name("wal-000000000000002a.log"), None);
    }
}
