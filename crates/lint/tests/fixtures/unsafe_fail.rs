// Fixture: an unsafe block with no SAFETY comment must trip
// `unsafe-needs-safety`. Never compiled — lexed by the lint engine only.

pub fn read_raw(p: *const u8) -> u8 {
    unsafe { *p }
}
