//! Deterministic synthetic workload shared by the load generator and the
//! loopback tests.
//!
//! Reuses the simulation stack (social graph → workload generator → push
//! delivery) to pre-materialize a batched delta stream plus matching
//! campaign specs, so every consumer — in-process engine, socket server,
//! load-generator connection — replays the *same* workload and results
//! stay comparable bit-for-bit.

use adcast_core::EngineConfig;
use adcast_feed::FeedDelta;
use adcast_feed::{FeedDelivery, PushDelivery};
use adcast_graph::{generators, UserId};
use adcast_stream::clock::Timestamp;
use adcast_stream::event::LocationId;
use adcast_stream::generator::{WorkloadConfig, WorkloadGenerator};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::protocol::CampaignSpec;

/// Workload shape.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Users in the graph.
    pub num_users: u32,
    /// Campaigns to submit before ingest starts.
    pub num_ads: usize,
    /// Messages posted (each fans out into per-follower deltas).
    pub messages: u64,
    /// Deltas per ingest batch.
    pub batch_size: usize,
    /// Poisson posting rate, messages per virtual second. Sets how much
    /// virtual time `messages` spans: the sim harness stretches a small
    /// message count across a simulated day by lowering this.
    pub msgs_per_sec: f64,
    /// RNG seed (same seed ⇒ identical workload).
    pub seed: u64,
}

impl SynthConfig {
    /// A seconds-scale workload for smoke tests.
    #[must_use]
    pub fn smoke() -> Self {
        SynthConfig {
            num_users: 400,
            num_ads: 300,
            messages: 1_500,
            batch_size: 200,
            msgs_per_sec: 200.0,
            seed: 0xADCA57,
        }
    }
}

/// A pre-materialized workload.
pub struct SynthWorkload {
    /// Ingest batches in replay order.
    pub batches: Vec<Vec<(UserId, FeedDelta)>>,
    /// Campaigns to submit up front.
    pub campaigns: Vec<CampaignSpec>,
    /// Users in the graph (servers must size their driver to this).
    pub num_users: u32,
    /// Per-user home location for recommend calls.
    pub homes: Vec<LocationId>,
    /// Generator clock after the last message; recommend-time "now".
    pub end_time: Timestamp,
}

impl SynthWorkload {
    /// Total deltas across all batches.
    #[must_use]
    pub fn total_deltas(&self) -> usize {
        self.batches.iter().map(Vec::len).sum()
    }
}

/// Materialize the workload for `config` (deterministic in the seed).
#[must_use]
pub fn build(config: &SynthConfig) -> SynthWorkload {
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let graph = generators::preferential_attachment(config.num_users, 12, &mut rng);
    let mut generator = WorkloadGenerator::with_poisson(
        WorkloadConfig {
            num_users: config.num_users,
            ..WorkloadConfig::default()
        },
        config.msgs_per_sec,
    );

    let campaigns = (0..config.num_ads)
        .map(|_| {
            let seed = generator.next_ad();
            CampaignSpec {
                vector: seed.vector,
                bid: 1.0,
                locations: Vec::new(),
                slots: Vec::new(),
                budget: None,
                topic_hint: Some(seed.topic as u32),
            }
        })
        .collect();

    let mut delivery = PushDelivery::new(config.num_users, EngineConfig::default().window);
    let mut batches: Vec<Vec<(UserId, FeedDelta)>> = Vec::new();
    let mut current = Vec::new();
    for _ in 0..config.messages {
        let msg = generator.next_message();
        current.extend(delivery.post(&graph, msg));
        if current.len() >= config.batch_size {
            batches.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }

    let homes = (0..config.num_users)
        .map(|u| generator.home_location(UserId(u)))
        .collect();
    SynthWorkload {
        batches,
        campaigns,
        num_users: config.num_users,
        homes,
        end_time: generator.now(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_and_in_range() {
        let cfg = SynthConfig {
            num_users: 64,
            num_ads: 16,
            messages: 200,
            batch_size: 50,
            msgs_per_sec: 200.0,
            seed: 7,
        };
        let a = build(&cfg);
        let b = build(&cfg);
        assert!(a.total_deltas() > 0);
        assert_eq!(a.total_deltas(), b.total_deltas());
        assert_eq!(a.batches.len(), b.batches.len());
        assert_eq!(a.campaigns.len(), 16);
        assert_eq!(a.homes.len(), 64);
        for batch in &a.batches {
            for (user, _) in batch {
                assert!(user.index() < 64);
            }
        }
        // Same seed ⇒ identical delta stream (spot-check identities).
        for (ba, bb) in a.batches.iter().zip(&b.batches) {
            for ((ua, da), (ub, db)) in ba.iter().zip(bb) {
                assert_eq!(ua, ub);
                assert_eq!(
                    da.entered.as_ref().map(|m| m.id),
                    db.entered.as_ref().map(|m| m.id)
                );
            }
        }
    }
}
