//! Process readiness: the bitmask behind `GET /readyz`.
//!
//! `/healthz` answers "is the process alive"; `/readyz` answers "should
//! this node take traffic *right now*". Replication flips the bits: a
//! partition in degraded mode (follower unreachable, acks not durable on
//! two nodes) or a follower mid-snapshot-catch-up is alive but not ready.
//! The mask is a single relaxed atomic so the serving path can flip it
//! for free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Replication is running degraded (follower unreachable; acks are
/// single-node durable only).
pub const UNREADY_DEGRADED: u64 = 1 << 0;
/// A follower is replaying a snapshot to catch up; its state lags the
/// primary until the install completes.
pub const UNREADY_CATCHING_UP: u64 = 1 << 1;

const REASONS: &[(u64, &str)] = &[
    (UNREADY_DEGRADED, "degraded"),
    (UNREADY_CATCHING_UP, "catching_up"),
];

/// The readiness bitmask. Zero ⇔ ready. Most code uses the process-wide
/// [`readiness`]; standalone instances exist for tests.
#[derive(Default)]
pub struct Readiness {
    mask: AtomicU64,
}

impl Readiness {
    /// A ready (all-clear) instance.
    #[must_use]
    pub fn new() -> Readiness {
        Readiness::default()
    }

    /// Set or clear one unready bit.
    pub fn set(&self, bit: u64, unready: bool) {
        if unready {
            self.mask.fetch_or(bit, Ordering::Relaxed);
        } else {
            self.mask.fetch_and(!bit, Ordering::Relaxed);
        }
    }

    /// The raw mask (zero ⇔ ready).
    #[must_use]
    pub fn mask(&self) -> u64 {
        self.mask.load(Ordering::Relaxed)
    }

    /// Whether the process should take traffic.
    #[must_use]
    pub fn ready(&self) -> bool {
        self.mask() == 0
    }

    /// The `/readyz` body: `ready\n`, or `unready: <reasons>\n`.
    #[must_use]
    pub fn report(&self) -> String {
        let mask = self.mask();
        if mask == 0 {
            return "ready\n".to_string();
        }
        let mut out = String::from("unready:");
        for &(bit, name) in REASONS {
            if mask & bit != 0 {
                out.push(' ');
                out.push_str(name);
            }
        }
        if out == "unready:" {
            out.push_str(" unknown");
        }
        out.push('\n');
        out
    }
}

/// The process-wide readiness mask `/readyz` reports.
pub fn readiness() -> &'static Readiness {
    static GLOBAL: OnceLock<Readiness> = OnceLock::new();
    GLOBAL.get_or_init(Readiness::new)
}

/// Serializes tests that flip the process-wide mask (they run in one
/// process and would otherwise race each other's assertions).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_flip_independently_and_report_reasons() {
        let r = Readiness::new();
        assert!(r.ready());
        assert_eq!(r.report(), "ready\n");
        r.set(UNREADY_DEGRADED, true);
        r.set(UNREADY_CATCHING_UP, true);
        assert!(!r.ready());
        assert_eq!(r.report(), "unready: degraded catching_up\n");
        r.set(UNREADY_DEGRADED, false);
        assert_eq!(r.report(), "unready: catching_up\n");
        r.set(UNREADY_CATCHING_UP, false);
        assert!(r.ready());
    }
}
