//! Fixture protocol: a miniature `Request`/`Response` pair. Linted under
//! the pretend path `crates/net/src/protocol.rs`, this file becomes the
//! source of truth that `rpc-exhaustive` diffs every site against.

pub enum Request {
    Ping,
    Ingest { items: u32 },
    Query(String),
}

pub enum Response {
    Pong,
    Ingested(u32),
    Results { hits: u32 },
}
