//! Delivery cost accounting.

/// Cost counters for a feed-delivery strategy. All counters are cumulative
/// over the lifetime of the strategy instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Posts ingested.
    pub posts: u64,
    /// Per-follower window insertions performed at post time (push work).
    pub push_deliveries: u64,
    /// Feed reads served.
    pub reads: u64,
    /// Messages examined during read-time merges (pull work).
    pub merge_examined: u64,
    /// Posts routed to an outbox instead of being pushed (pull/hybrid).
    pub outbox_appends: u64,
}

impl DeliveryStats {
    /// Average push fan-out per post.
    pub fn avg_fanout(&self) -> f64 {
        if self.posts == 0 {
            0.0
        } else {
            self.push_deliveries as f64 / self.posts as f64
        }
    }

    /// Average merge work per read.
    pub fn avg_read_work(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.merge_examined as f64 / self.reads as f64
        }
    }

    /// Total write-side work (push insertions + outbox appends).
    pub fn write_work(&self) -> u64 {
        self.push_deliveries + self.outbox_appends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_zero_denominators() {
        let s = DeliveryStats::default();
        assert_eq!(s.avg_fanout(), 0.0);
        assert_eq!(s.avg_read_work(), 0.0);
        assert_eq!(s.write_work(), 0);
    }

    #[test]
    fn averages_compute() {
        let s = DeliveryStats {
            posts: 4,
            push_deliveries: 12,
            reads: 2,
            merge_examined: 10,
            outbox_appends: 3,
        };
        assert_eq!(s.avg_fanout(), 3.0);
        assert_eq!(s.avg_read_work(), 5.0);
        assert_eq!(s.write_work(), 15);
    }
}
