//! Plain-data snapshot of the store, for the durability layer.
//!
//! A [`StoreSnapshot`] captures *everything* history-dependent about an
//! [`crate::AdStore`](crate::AdStore) — campaigns with their exact
//! integer budget accounting, private lifecycle state, CTR counts,
//! pacing controller internals, and the index epoch — so a restored
//! store is bit-identical to the snapshotted one. The inverted index is
//! deliberately *not* captured: posting lists are kept sorted by ad id
//! on insert, so rebuilding the index from the active campaigns in id
//! order reproduces it exactly.

use adcast_stream::clock::Timestamp;

use crate::ad::Ad;
use crate::campaign::CampaignState;

/// All seven [`crate::PacingController`](crate::PacingController) fields.
#[derive(Debug, Clone, PartialEq)]
pub struct PacingSnapshot {
    /// Flight start.
    pub flight_start: Timestamp,
    /// Flight end.
    pub flight_end: Timestamp,
    /// Flight budget.
    pub total_budget: f64,
    /// Current pass-through probability.
    pub throttle: f64,
    /// Feedback step.
    pub step: f64,
    /// Throttle floor.
    pub min_throttle: f64,
    /// Spend recorded so far.
    pub spent: f64,
}

/// One campaign, private state included.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSnapshot {
    /// The ad creative (id, vector, bid, targeting, topic hint).
    pub ad: Ad,
    /// Exact budget accounting.
    pub budget_total_micros: u64,
    /// Exact spend accounting.
    pub budget_spent_micros: u64,
    /// Lifecycle state.
    pub state: CampaignState,
    /// Impressions served.
    pub impressions: u64,
    /// Raw CTR impressions.
    pub ctr_impressions: u64,
    /// Raw CTR clicks.
    pub ctr_clicks: u64,
    /// Pacing controller state, when the campaign has a flight.
    pub pacing: Option<PacingSnapshot>,
}

/// The whole store.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StoreSnapshot {
    /// Campaigns in ad-id order (the id *is* the vector index).
    pub campaigns: Vec<CampaignSnapshot>,
    /// History-dependent epoch counter (engines compare it against their
    /// certified bounds, so it must survive restarts exactly).
    pub index_epoch: u64,
}
