//! # adcast-core — context-aware ad recommendation for high-speed social
//! news feeding
//!
//! The primary contribution reproduced from Li, Zhang, Lan, Tan (ICDE
//! 2016): continuous, per-user top-k advertisement selection driven by the
//! user's *news-feed context*, maintained **incrementally** as feeds update
//! at high rates.
//!
//! ## The problem
//!
//! Every user's context is the recency-decayed aggregate of the messages
//! currently in their feed window. Ads are ranked by a blend of textual
//! relevance (ad keywords vs. context) and advertiser bid. Feeds update
//! thousands of times per second platform-wide; re-ranking every ad on
//! every update does not scale.
//!
//! ## The engines
//!
//! * [`engine::FullScanEngine`] — baseline 1: score every active ad on
//!   every request. Exact, O(|A|).
//! * [`engine::IndexScanEngine`] — baseline 2: exact term-at-a-time
//!   re-evaluation over the ad inverted index on every request. Exact,
//!   O(postings of context terms).
//! * [`engine::IncrementalEngine`] — the system: per-user candidate
//!   buffers hold exact forward-decayed scores for the top-B ads; feed
//!   deltas touch only the posting lists of the changed terms; per-term
//!   max-weight screening decides which outside ads are worth an exact
//!   dot; a certified *outside bound* triggers refreshes exactly when the
//!   buffered top-k can no longer be proven correct (eager mode) or when a
//!   slack budget is exceeded (lazy mode). O(Δ postings) per update.
//!
//! ## Module map
//!
//! * [`config`] — engine configuration,
//! * [`context`] — forward-decayed per-user context accumulators,
//! * [`score`] — the relevance × bid scoring policy,
//! * [`topk`] — deterministic top-k selection,
//! * [`skyband`] — the candidate buffer,
//! * [`engine`] — the three engines behind one trait,
//! * [`market`] — auction + engagement + billing on top of the engines
//!   (GSP pricing, click simulation, CPC billing, budget pacing),
//! * [`runner`] — single-threaded simulation glue (generator → feed →
//!   engine) used by examples, tests, and the harness,
//! * [`driver`] — the sharded multi-threaded driver (E10 scalability),
//! * [`snapshot`] — plain-data engine snapshots for `adcast-durability`.

#[cfg(feature = "debug-stats")]
pub mod allocmeter;
pub mod config;
pub mod context;
pub mod driver;
pub mod engine;
pub mod market;
pub mod runner;
pub mod score;
pub mod skyband;
pub mod snapshot;
pub mod topk;

pub use config::{DriverConfig, EngineConfig, RefreshPolicy};
pub use context::UserContext;
pub use driver::{DriverError, ShardedDriver};
pub use engine::{
    EngineStats, FullScanEngine, IncrementalEngine, IndexScanEngine, Recommendation,
    RecommendationEngine,
};
pub use market::{AdMarket, ServedImpression};
pub use runner::{Simulation, SimulationConfig};
pub use score::ScoringPolicy;
pub use snapshot::{EngineSnapshot, UserStateSnapshot};
