//! E2 (Figure): sustained event throughput vs. number of ad campaigns.
//!
//! The headline figure. Continuous serving model: every message's
//! follower feeds are updated and their promoted slots re-served. Paper
//! shape to reproduce: full-scan degrades linearly in |A|; index-scan
//! degrades with posting-list density; the incremental engine stays close
//! to flat — 1–2 orders of magnitude above full-scan at the largest |A|.

use adcast_bench::{drive_continuous, fmt, Report, Scale, ENGINES};
use adcast_core::{Simulation, SimulationConfig};
use adcast_stream::generator::WorkloadConfig;

fn main() {
    let scale = Scale::from_env();
    let ad_counts: &[usize] = if scale == Scale::Paper {
        &[1_000, 5_000, 20_000, 50_000, 100_000]
    } else {
        &[500, 2_000, 8_000]
    };
    let messages = scale.pick(1_500, 12_000);
    let num_users = scale.pick(1_000, 5_000);

    let mut report = Report::new(
        "E2",
        "throughput vs number of ads (events/s, continuous serving)",
        vec![
            "ads",
            "engine",
            "events_per_sec",
            "p99_event_us",
            "postings_per_event",
        ],
    );
    for &num_ads in ad_counts {
        for (kind, name) in ENGINES {
            let mut sim = Simulation::build(SimulationConfig {
                workload: WorkloadConfig {
                    num_users,
                    ..WorkloadConfig::default()
                },
                num_ads,
                engine_kind: kind,
                ..SimulationConfig::default()
            });
            // Warm the windows so contexts are representative. The
            // full-scan baseline gets a smaller measurement budget at
            // large |A| (it is orders of magnitude slower; rates are
            // unaffected by the budget).
            sim.run(messages / 4);
            let budget = if name == "full-scan" {
                (messages / 8).max(200)
            } else {
                messages
            };
            let warm_postings = sim.engine().stats().postings_scanned;
            let (rate, hist, _) = drive_continuous(&mut sim, budget, 10, 1);
            let postings = sim.engine().stats().postings_scanned - warm_postings;
            report.row(vec![
                num_ads.to_string(),
                name.to_string(),
                fmt(rate),
                fmt(hist.p99() as f64 / 1000.0),
                fmt(postings as f64 / budget as f64),
            ]);
        }
    }
    report.finish();
}
