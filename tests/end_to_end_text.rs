//! End-to-end scenario on real text: the case-study cast (Tom, Luke,
//! Anna, Sam, Lia) tweeting across a day, with targeted campaigns.
//!
//! This is the promoted_feed example hardened into assertions — it pins
//! down the full pipeline: tokenizer → stemmer → TF-IDF → feeds →
//! incremental engine → targeting.

use std::sync::Arc;

use adcast::ads::{AdId, AdStore, AdSubmission, Budget, Targeting};
use adcast::core::{EngineConfig, IncrementalEngine, RecommendationEngine};
use adcast::feed::{FeedDelivery, PushDelivery, WindowConfig};
use adcast::graph::{GraphBuilder, UserId};
use adcast::stream::event::{LocationId, Message, MessageId, TimeSlot};
use adcast::stream::{Duration, Timestamp};
use adcast::text::pipeline::TextPipeline;

fn at(hour: u64, minute: u64) -> Timestamp {
    Timestamp((hour * 3600 + minute * 60) * 1_000_000)
}

struct Scenario {
    store: AdStore,
    engine: IncrementalEngine,
    ad_sports: AdId,
    ad_coffee: AdId,
}

fn build() -> Scenario {
    let mut builder = GraphBuilder::new(5);
    for a in 0..5u32 {
        for b in 0..5u32 {
            builder.follow(UserId(a), UserId(b));
        }
    }
    let graph = builder.build();
    let mut pipeline = TextPipeline::standard();

    let tweets: &[(u32, (u64, u64), u16, &str)] = &[
        (
            0,
            (8, 5),
            0,
            "The nation's best volleyball returns tonight, can't wait!",
        ),
        (
            1,
            (8, 30),
            1,
            "Morning espresso downtown before the volleyball match #coffee",
        ),
        (
            3,
            (9, 10),
            0,
            "New running shoes day! Training for the city marathon.",
        ),
        (
            2,
            (9, 45),
            2,
            "Gallery opening this weekend, modern art all day",
        ),
        (
            4,
            (10, 20),
            1,
            "Best coffee roaster downtown, hands down #espresso",
        ),
        (
            0,
            (14, 0),
            0,
            "Volleyball practice was brutal, need new knee pads and shoes",
        ),
        (
            1,
            (14, 30),
            1,
            "Afternoon slump. More coffee. Always more coffee.",
        ),
        (
            4,
            (19, 30),
            1,
            "Evening cappuccino and people-watching downtown",
        ),
    ];
    for (_, _, _, text) in tweets {
        pipeline.index_document(text);
    }

    let mut store = AdStore::new();
    let ad_sports = store
        .submit(AdSubmission {
            vector: pipeline.analyze_keywords(&["volleyball", "shoes", "gear", "training"]),
            bid: 1.0,
            targeting: Targeting::everywhere(),
            budget: Budget::unlimited(),
            topic_hint: None,
        })
        .unwrap();
    let ad_coffee = store
        .submit(AdSubmission {
            vector: pipeline.analyze_keywords(&["coffee", "espresso", "cappuccino", "downtown"]),
            bid: 1.0,
            targeting: Targeting::everywhere()
                .in_locations([LocationId(1)])
                .in_slots([TimeSlot::Afternoon]),
            budget: Budget::unlimited(),
            topic_hint: None,
        })
        .unwrap();

    let window = WindowConfig::count_and_time(8, Duration::from_secs(12 * 3600));
    let mut delivery = PushDelivery::new(5, window);
    let mut engine = IncrementalEngine::new(
        5,
        EngineConfig {
            k: 1,
            window,
            half_life: Some(Duration::from_secs(4 * 3600)),
            ..Default::default()
        },
    );
    for (i, &(author, (h, m), district, text)) in tweets.iter().enumerate() {
        let msg = Arc::new(Message {
            id: MessageId(i as u64),
            author: UserId(author),
            ts: at(h, m),
            location: LocationId(district),
            vector: pipeline.analyze(text),
        });
        for (user, delta) in delivery.post(&graph, msg) {
            engine.on_feed_delta(&store, user, &delta);
        }
    }
    Scenario {
        store,
        engine,
        ad_sports,
        ad_coffee,
    }
}

#[test]
fn coffee_ad_wins_downtown_in_the_afternoon() {
    let mut s = build();
    let recs = s
        .engine
        .recommend(&s.store, UserId(1), at(15, 30), LocationId(1), 1);
    assert_eq!(recs.first().map(|r| r.ad), Some(s.ad_coffee));
}

#[test]
fn coffee_ad_is_ineligible_outside_its_slot() {
    let mut s = build();
    // Same user, same place, 21:00: happy hour over → sports ad instead.
    let recs = s
        .engine
        .recommend(&s.store, UserId(1), at(21, 0), LocationId(1), 1);
    assert_eq!(recs.first().map(|r| r.ad), Some(s.ad_sports));
}

#[test]
fn coffee_ad_is_ineligible_outside_its_district() {
    let mut s = build();
    let recs = s
        .engine
        .recommend(&s.store, UserId(1), at(15, 30), LocationId(0), 1);
    assert_eq!(recs.first().map(|r| r.ad), Some(s.ad_sports));
}

#[test]
fn sports_context_beats_coffee_everywhere() {
    let mut s = build();
    // Tom's feed is shared (everyone follows everyone) but outside the
    // coffee slot the sports ad wins for everyone.
    for u in 0..5u32 {
        let recs = s
            .engine
            .recommend(&s.store, UserId(u), at(11, 0), LocationId(0), 1);
        assert_eq!(
            recs.first().map(|r| r.ad),
            Some(s.ad_sports),
            "user {u} mid-morning"
        );
    }
}

#[test]
fn both_ads_rank_when_both_eligible() {
    let mut s = build();
    let recs = s
        .engine
        .recommend(&s.store, UserId(2), at(15, 30), LocationId(1), 2);
    assert_eq!(recs.len(), 2);
    assert!(recs[0].score >= recs[1].score);
    let ids: Vec<_> = recs.iter().map(|r| r.ad).collect();
    assert!(ids.contains(&s.ad_sports) && ids.contains(&s.ad_coffee));
}

#[test]
fn stemming_connects_ad_keywords_to_tweet_text() {
    // "running"/"training" in tweets vs "training" keyword etc. — verify
    // the relevance is non-zero purely through stemmed overlap.
    let mut s = build();
    let recs = s
        .engine
        .recommend(&s.store, UserId(3), at(11, 0), LocationId(0), 1);
    let rec = recs.first().expect("some ad serves");
    assert!(rec.relevance > 0.0);
}
