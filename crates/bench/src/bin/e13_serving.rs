//! E13: serving-layer offered-load sweep (closed loop over loopback TCP).
//!
//! Offered load is the closed-loop connection count; each point stands up
//! a fresh server (fresh engine state), replays the same deterministic
//! workload through `adcast-net`'s load generator, and records achieved
//! ingest throughput, client-observed RTT percentiles, and the shed rate
//! of the bounded admission queue. Expected shape: throughput grows with
//! connections until the single engine thread saturates, after which RTT
//! climbs and — with the queue bound doing its job — sheds appear instead
//! of unbounded queueing delay.

use std::sync::Arc;

use adcast_ads::AdStore;
use adcast_bench::{fmt, Report, Scale};
use adcast_core::{EngineConfig, ShardedDriver};
use adcast_net::synth::{self, SynthConfig};
use adcast_net::{LoadgenConfig, Server, ServerConfig};

fn main() {
    let scale = Scale::from_env();
    let synth_cfg = SynthConfig {
        num_users: scale.pick(800u32, 4_000),
        num_ads: scale.pick(500usize, 2_000),
        messages: scale.pick(4_000u64, 20_000),
        batch_size: 200,
        msgs_per_sec: 200.0,
        seed: 0xE13,
    };
    let workload = Arc::new(synth::build(&synth_cfg));
    println!(
        "workload: {} users, {} campaigns, {} deltas in {} batches\n",
        workload.num_users,
        workload.campaigns.len(),
        workload.total_deltas(),
        workload.batches.len()
    );

    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut report = Report::new(
        "E13",
        "serving layer: offered load vs achieved throughput and RTT",
        vec![
            "conns",
            "deltas_per_sec",
            "rtt_p50_us",
            "rtt_p95_us",
            "rtt_p99_us",
            "sheds",
            "shed_rate",
        ],
    );
    for conns in [1usize, 2, 4, 8] {
        // Closed-loop connections are I/O-blocked, not CPU-bound: sweeping
        // past the core count is exactly how the saturation knee appears,
        // so only cut the sweep on absurdly small boxes.
        if conns > available * 8 {
            break;
        }
        // Fresh server per offered load: every point replays the same
        // workload against the same initial state.
        let driver = ShardedDriver::new(
            workload.num_users,
            2.min(available),
            EngineConfig::default(),
        );
        let server = Server::start(
            "127.0.0.1:0",
            ServerConfig::default(),
            AdStore::new(),
            driver,
        )
        .expect("bind loopback");
        let config = LoadgenConfig {
            connections: conns,
            ..LoadgenConfig::new(server.addr().to_string())
        };
        let result = adcast_net::loadgen::run(&config, &workload).expect("loadgen run");
        assert_eq!(
            result.server.deltas, result.deltas_accepted,
            "server must have applied every acknowledged delta"
        );
        report.row(vec![
            conns.to_string(),
            fmt(result.deltas_per_sec()),
            fmt(result.rtt.p50() as f64 / 1e3),
            fmt(result.rtt.p95() as f64 / 1e3),
            fmt(result.rtt.p99() as f64 / 1e3),
            result.sheds.to_string(),
            format!("{:.4}", result.shed_rate()),
        ]);
        server.shutdown();
        server.join();
    }
    report.finish();
}
