//! Exact finite-support Zipf sampling.
//!
//! The workload generators need Zipf-distributed choices everywhere (author
//! activity, topic popularity, term draws). No `rand_distr` is available
//! offline, so this module implements an exact sampler: the (truncated)
//! Zipf CDF is precomputed once and each draw is a binary search —
//! `O(log n)` per sample, numerically exact for any skew `s ≥ 0`.

use rand::Rng;

/// Sampler over ranks `0..n` with probability `P(k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Create a sampler over `n` ranks with exponent `s`.
    ///
    /// `s = 0` degenerates to the uniform distribution; `s ≈ 1` matches
    /// classic word-frequency/user-activity skew.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(s >= 0.0 && s.is_finite(), "invalid Zipf exponent {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("n > 0");
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point drift at the top end.
        *cdf.last_mut().expect("n > 0") = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the support is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw a rank in `0..len()`. Rank 0 is the most popular.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// The probability mass of rank `k`.
    pub fn pmf(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(100, 1.0);
        let total: f64 = (0..100).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_when_s_zero() {
        let z = ZipfSampler::new(10, 0.0);
        for k in 0..10 {
            assert!((z.pmf(k) - 0.1).abs() < 1e-9, "pmf({k}) = {}", z.pmf(k));
        }
    }

    #[test]
    fn skew_orders_ranks() {
        let z = ZipfSampler::new(50, 1.2);
        for k in 1..50 {
            assert!(z.pmf(k) < z.pmf(k - 1), "pmf must be strictly decreasing");
        }
    }

    #[test]
    fn samples_in_range_and_skewed() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            let k = z.sample(&mut rng);
            assert!(k < 1000);
            if k < 10 {
                head += 1;
            }
        }
        // Under Zipf(1.0, n=1000) the top-10 ranks carry ~39% of the mass.
        let frac = head as f64 / N as f64;
        assert!(
            (0.3..0.5).contains(&frac),
            "head mass {frac} outside expectation"
        );
    }

    #[test]
    fn empirical_matches_pmf_for_small_support() {
        let z = ZipfSampler::new(5, 1.5);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = [0usize; 5];
        const N: usize = 100_000;
        for _ in 0..N {
            counts[z.sample(&mut rng)] += 1;
        }
        for (k, &count) in counts.iter().enumerate() {
            let emp = count as f64 / N as f64;
            assert!(
                (emp - z.pmf(k)).abs() < 0.01,
                "rank {k}: emp {emp} vs pmf {}",
                z.pmf(k)
            );
        }
    }

    #[test]
    fn single_rank_support() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.pmf(0), 1.0);
        assert_eq!(z.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid Zipf exponent")]
    fn negative_exponent_panics() {
        let _ = ZipfSampler::new(10, -1.0);
    }
}
