// Fixture: the same violations, each silenced by its own pragma with a
// reason. Linted under a pretend crates/net rel path; never compiled.

use std::io;

// adcast-lint: allow(error-hygiene) -- fixture: variants frozen for wire compatibility
pub enum FixtureError {
    Io(io::Error),
}

// adcast-lint: allow(error-hygiene) -- fixture: io::Error is the real contract of this shim
pub fn open_segment(path: &Path) -> io::Result<File> {
    File::open(path)
}
