//! Fixture: an unbounded queue on a serving path — `bounded-channel`
//! must fire.

fn reply_slot() -> (Sender<u64>, Receiver<u64>) {
    mpsc::channel()
}
