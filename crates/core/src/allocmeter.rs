//! Heap-allocation accounting for the hot path (the `debug-stats`
//! feature).
//!
//! The engine's steady-state claim — *zero heap allocations per feed
//! delta once scratch capacities have warmed up* — is asserted by a test
//! rather than argued in a comment. The test binary installs
//! [`CountingAllocator`] as its `#[global_allocator]`; the engine then
//! samples the thread-local counter around each `on_feed_delta` and
//! accumulates the difference into `EngineStats::hot_path_allocs`.
//!
//! When no counting allocator is installed (every normal build), the
//! counter never moves and the accounting is a pair of thread-local
//! reads per delta. The module only exists under the `debug-stats`
//! feature, so release binaries carry none of it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Number of heap allocations performed by the current thread since it
/// started (only counted while [`CountingAllocator`] is the global
/// allocator; 0 otherwise).
pub fn allocation_count() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

/// A [`System`]-backed allocator that counts allocation events
/// (`alloc`, `alloc_zeroed`, `realloc`) per thread. Deallocation is free
/// and deliberately not counted: the steady-state property under test is
/// "no new heap blocks", and dropping an `Arc<Message>` evicted from a
/// feed window is expected.
pub struct CountingAllocator;

impl CountingAllocator {
    fn bump() {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
    }
}

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the only addition is a thread-local counter bump,
// which itself never allocates (`Cell<u64>` write) and so cannot re-enter
// the allocator.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: caller upholds `GlobalAlloc::alloc`'s contract (nonzero-size
    // layout); we forward the same layout to `System` unchanged.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::bump();
        System.alloc(layout)
    }

    // SAFETY: same contract forwarding as `alloc`; `System.alloc_zeroed`
    // receives the caller's layout unmodified.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::bump();
        System.alloc_zeroed(layout)
    }

    // SAFETY: caller guarantees `ptr` was allocated by this allocator with
    // `layout` and `new_size` is nonzero; since we delegate allocation to
    // `System`, forwarding the triple to `System.realloc` is sound.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::bump();
        System.realloc(ptr, layout, new_size)
    }

    // SAFETY: caller guarantees `ptr`/`layout` match a live allocation from
    // this allocator, and every allocation path above came from `System`,
    // so `System.dealloc` is the matching deallocator.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}
