//! `adcast-router` — the cluster's routing gateway.
//!
//! ```text
//! adcast-router [--addr HOST:PORT]
//!               --partition PRIMARY[,FOLLOWER] [--partition ...]
//!               [--partition-obs PRIMARY_OBS[,FOLLOWER_OBS] ...]
//!               [--connect-attempts N] [--obs-addr HOST:PORT]
//!               [--trace-sample N] [--trace-seed SEED]
//! ```
//!
//! One `--partition` flag per partition, in partition order; each names
//! the partition's primary and (optionally) its follower. Binds the
//! listener (port 0 picks an ephemeral port), prints
//! `listening on HOST:PORT` on stdout — scripts parse that line — and
//! routes until a client sends the Shutdown RPC (which also drains the
//! nodes). When a primary dies, the router promotes its follower under
//! a bumped epoch and keeps serving; see DESIGN.md §14.
//!
//! With `--partition-obs` flags (one per `--partition`, naming the
//! members' obs ports), the router's own obs port federates: `/metrics`
//! merges every member's exposition under `node`/`partition`/`role`
//! labels, `/traces/<id>` stitches cross-node spans, and `/readyz`
//! aggregates member readiness. `--trace-sample N` head-samples every
//! Nth routed client RPC into a distributed trace; see DESIGN.md §15.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use adcast::cluster::{PartitionMap, Router, RouterConfig};
use adcast::net::client::ClientConfig;
use adcast::obs::{Federator, Member, ObsServer};

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|e| format!("{name}: {e}")),
    }
}

fn str_flag<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(String::as_str)
            .map(Some)
            .ok_or_else(|| format!("{name} needs a value")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: adcast-router [--addr HOST:PORT] --partition PRIMARY[,FOLLOWER] \
             [--partition ...] [--partition-obs PRIMARY_OBS[,FOLLOWER_OBS] ...] \
             [--connect-attempts N] [--obs-addr HOST:PORT] [--trace-sample N] \
             [--trace-seed SEED]"
        );
        return Ok(());
    }
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .map_or("127.0.0.1:0", String::as_str);
    let mut specs = Vec::new();
    let mut obs_specs = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--partition" {
            specs.push(
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| "--partition needs a value".to_string())?,
            );
            i += 2;
        } else if args[i] == "--partition-obs" {
            obs_specs.push(
                args.get(i + 1)
                    .cloned()
                    .ok_or_else(|| "--partition-obs needs a value".to_string())?,
            );
            i += 2;
        } else {
            i += 1;
        }
    }
    let map = PartitionMap::parse(&specs)
        .map_err(|e| format!("{e} (repeat --partition PRIMARY[,FOLLOWER] per partition)"))?;
    if !obs_specs.is_empty() && obs_specs.len() != specs.len() {
        return Err(format!(
            "--partition-obs given {} times but --partition {} times (they pair up in order)",
            obs_specs.len(),
            specs.len()
        ));
    }
    let connect_attempts = flag(args, "--connect-attempts")?.unwrap_or(3) as u32;
    let obs_addr = str_flag(args, "--obs-addr")?;
    let trace_sample = flag(args, "--trace-sample")?.unwrap_or(0);
    let trace_seed = flag(args, "--trace-seed")?.unwrap_or(0xAD_CA57);

    let config = RouterConfig {
        client: ClientConfig {
            connect_attempts,
            ..ClientConfig::default()
        },
        poll_interval: Duration::from_millis(50),
        trace_sample,
        trace_seed,
    };
    let router = Router::start(addr, &map, config).map_err(|e| format!("bind {addr}: {e}"))?;
    let obs_server = match obs_addr {
        None => None,
        Some(obs_addr) => {
            let server = if obs_specs.is_empty() {
                ObsServer::start(obs_addr, adcast::obs::registry())
            } else {
                let mut members = Vec::new();
                for (partition, spec) in obs_specs.iter().enumerate() {
                    let partition = u16::try_from(partition).map_err(|_| "too many partitions")?;
                    let mut roles = spec.split(',');
                    let primary = roles
                        .next()
                        .filter(|a| !a.is_empty())
                        .ok_or_else(|| format!("--partition-obs {spec}: empty primary"))?;
                    members.push(Member {
                        obs_addr: primary.to_string(),
                        partition,
                        role: "primary",
                    });
                    if let Some(follower) = roles.next() {
                        members.push(Member {
                            obs_addr: follower.to_string(),
                            partition,
                            role: "follower",
                        });
                    }
                }
                let federator = Arc::new(Federator {
                    members,
                    local: (obs_addr.to_string(), adcast::obs::registry()),
                });
                ObsServer::start_with(obs_addr, adcast::obs::registry(), federator)
            };
            Some(server.map_err(|e| format!("bind obs {obs_addr}: {e}"))?)
        }
    };
    // Scripts wait for this exact line to learn the ephemeral port.
    println!("listening on {}", router.addr());
    if let Some(obs) = &obs_server {
        println!("obs listening on {}", obs.addr());
    }
    for (partition, nodes) in map.iter() {
        match &nodes.follower {
            Some(f) => eprintln!(
                "partition {partition}: primary {} follower {f}",
                nodes.primary
            ),
            None => eprintln!(
                "partition {partition}: primary {} (no follower: failover unavailable)",
                nodes.primary
            ),
        }
    }
    router.join();
    if let Some(obs) = obs_server {
        obs.stop();
    }
    eprintln!("router shut down cleanly");
    Ok(())
}
