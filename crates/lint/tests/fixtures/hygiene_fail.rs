// Fixture: two `error-hygiene` violations — a pub fallible API leaking
// `io::Result`, and a pub error enum without `#[non_exhaustive]`.
// Linted under a pretend crates/net rel path; never compiled.

use std::io;

pub enum FixtureError {
    Io(io::Error),
}

pub fn open_segment(path: &Path) -> io::Result<File> {
    File::open(path)
}
