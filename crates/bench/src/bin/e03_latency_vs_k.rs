//! E3 (Figure): per-event latency percentiles vs. k (results per slot).
//!
//! Paper shape: baselines' latency grows with k only mildly (top-k heap)
//! but sits orders of magnitude above the incremental engine's; the
//! incremental engine's latency grows gently with k through buffer size
//! (capacity = headroom·k).

use adcast_bench::{drive_continuous, fmt, Report, Scale, ENGINES};
use adcast_core::{EngineConfig, Simulation, SimulationConfig};
use adcast_stream::generator::WorkloadConfig;

fn main() {
    let scale = Scale::from_env();
    let ks: &[usize] = &[1, 5, 10, 20, 50];
    let messages = scale.pick(1_200, 10_000);
    let num_ads = scale.pick(4_000, 30_000);
    let num_users = scale.pick(1_000, 5_000);

    let mut report = Report::new(
        "E3",
        "event latency vs k",
        vec!["k", "engine", "p50_us", "p95_us", "p99_us", "mean_us"],
    );
    for &k in ks {
        for (kind, name) in ENGINES {
            let mut sim = Simulation::build(SimulationConfig {
                workload: WorkloadConfig {
                    num_users,
                    ..WorkloadConfig::default()
                },
                num_ads,
                engine_kind: kind,
                engine: EngineConfig {
                    k,
                    ..EngineConfig::default()
                },
                ..SimulationConfig::default()
            });
            sim.run(messages / 4);
            let budget = if name == "full-scan" {
                (messages / 8).max(200)
            } else {
                messages
            };
            let (_, hist, _) = drive_continuous(&mut sim, budget, k, 1);
            report.row(vec![
                k.to_string(),
                name.to_string(),
                fmt(hist.p50() as f64 / 1000.0),
                fmt(hist.p95() as f64 / 1000.0),
                fmt(hist.p99() as f64 / 1000.0),
                fmt(hist.mean() / 1000.0),
            ]);
        }
    }
    report.finish();
}
