//! Memory-footprint reporting helpers.
//!
//! The substrates self-report approximate resident bytes via
//! `memory_bytes()` methods; this module provides the shared trait and a
//! human-readable formatter for the E6 experiment output.

/// Types that can estimate their resident memory.
pub trait MemoryFootprint {
    /// Approximate resident bytes (structure + owned heap allocations).
    fn memory_bytes(&self) -> usize;
}

/// Format a byte count as a human-readable string (`1.50 MiB`).
pub fn format_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_units() {
        assert_eq!(format_bytes(0), "0 B");
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert_eq!(format_bytes(1_572_864), "1.50 MiB");
        assert_eq!(format_bytes(3 * 1024 * 1024 * 1024), "3.00 GiB");
    }

    struct Fake(usize);
    impl MemoryFootprint for Fake {
        fn memory_bytes(&self) -> usize {
            self.0
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let objects: Vec<Box<dyn MemoryFootprint>> = vec![Box::new(Fake(10)), Box::new(Fake(20))];
        let total: usize = objects.iter().map(|o| o.memory_bytes()).sum();
        assert_eq!(total, 30);
    }
}
