//! E4 (Figure): throughput vs feed-window size W.
//!
//! Paper shape: the index-scan baseline degrades roughly linearly in W
//! (the context accumulates more distinct terms → longer TAAT); the
//! incremental engine is W-insensitive (per-update cost depends on the
//! *delta*, i.e. two messages, not the window).

use adcast_bench::{drive_continuous, fmt, Report, Scale};
use adcast_core::runner::EngineKind;
use adcast_core::{EngineConfig, Simulation, SimulationConfig};
use adcast_feed::WindowConfig;
use adcast_stream::generator::WorkloadConfig;

fn main() {
    let scale = Scale::from_env();
    let windows: &[usize] = &[8, 16, 32, 64, 128, 256];
    let messages = scale.pick(1_200, 10_000);
    let num_ads = scale.pick(3_000, 20_000);
    let num_users = scale.pick(1_000, 5_000);

    let mut report = Report::new(
        "E4",
        "throughput vs window size",
        vec!["window", "engine", "events_per_sec", "ctx_terms_mean"],
    );
    for &w in windows {
        for (kind, name) in [
            (EngineKind::IndexScan, "index-scan"),
            (EngineKind::Incremental, "incremental"),
        ] {
            let mut sim = Simulation::build(SimulationConfig {
                workload: WorkloadConfig {
                    num_users,
                    ..WorkloadConfig::default()
                },
                num_ads,
                engine_kind: kind,
                engine: EngineConfig {
                    window: WindowConfig::count(w),
                    ..EngineConfig::default()
                },
                ..SimulationConfig::default()
            });
            // Warm enough to fill windows of this size.
            sim.run((messages / 2).max(w * 50));
            let (rate, _, _) = drive_continuous(&mut sim, messages, 10, 1);
            // Context size proxy: average window fill across users.
            let filled: usize = sim
                .graph()
                .users()
                .map(|u| sim.delivery().store().window(u).len())
                .sum();
            let mean_fill = filled as f64 / sim.graph().num_users() as f64;
            report.row(vec![
                w.to_string(),
                name.to_string(),
                fmt(rate),
                fmt(mean_fill),
            ]);
        }
    }
    report.finish();
}
