//! Arrival processes: how simulated posting times are spaced.
//!
//! The throughput experiments drive the engines at controlled rates; the
//! robustness experiments need bursts. Three processes cover it:
//!
//! * [`ArrivalProcess::Uniform`] — deterministic spacing (rate control),
//! * [`ArrivalProcess::Poisson`] — exponential inter-arrivals (the
//!   standard open-system model),
//! * [`ArrivalProcess::Bursty`] — a two-state Markov-modulated Poisson
//!   process alternating calm and burst phases (models flash crowds, the
//!   regime where lazy refresh earns its keep).

use rand::Rng;

use crate::clock::Duration;

/// An arrival process generating inter-arrival gaps.
#[derive(Debug, Clone)]
pub enum ArrivalProcess {
    /// Exactly `1/rate` seconds between events.
    Uniform {
        /// Events per simulated second.
        rate: f64,
    },
    /// Exponential inter-arrivals with mean `1/rate`.
    Poisson {
        /// Events per simulated second.
        rate: f64,
    },
    /// Markov-modulated Poisson: calm rate vs. burst rate, with geometric
    /// phase lengths.
    Bursty {
        /// Rate in the calm phase (events/s).
        calm_rate: f64,
        /// Rate in the burst phase (events/s).
        burst_rate: f64,
        /// Probability of switching phase after each event.
        switch_prob: f64,
        /// Currently bursting?
        bursting: bool,
    },
}

impl ArrivalProcess {
    /// A uniform process at `rate` events/second.
    pub fn uniform(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "invalid rate {rate}");
        ArrivalProcess::Uniform { rate }
    }

    /// A Poisson process at `rate` events/second.
    pub fn poisson(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "invalid rate {rate}");
        ArrivalProcess::Poisson { rate }
    }

    /// A bursty process alternating `calm_rate` and `burst_rate`.
    pub fn bursty(calm_rate: f64, burst_rate: f64, switch_prob: f64) -> Self {
        assert!(
            calm_rate > 0.0 && burst_rate > 0.0,
            "rates must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&switch_prob),
            "switch_prob out of range"
        );
        ArrivalProcess::Bursty {
            calm_rate,
            burst_rate,
            switch_prob,
            bursting: false,
        }
    }

    /// The long-run average rate (events/s).
    pub fn mean_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Uniform { rate } | ArrivalProcess::Poisson { rate } => rate,
            // Symmetric switching spends half the time in each phase; the
            // long-run event rate is the time-average of the phase rates.
            ArrivalProcess::Bursty {
                calm_rate,
                burst_rate,
                ..
            } => (calm_rate + burst_rate) / 2.0,
        }
    }

    /// Draw the gap to the next event.
    pub fn next_gap<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Duration {
        match self {
            ArrivalProcess::Uniform { rate } => Duration::from_micros((1e6 / *rate) as u64),
            ArrivalProcess::Poisson { rate } => exponential_gap(*rate, rng),
            ArrivalProcess::Bursty {
                calm_rate,
                burst_rate,
                switch_prob,
                bursting,
            } => {
                let rate = if *bursting { *burst_rate } else { *calm_rate };
                if rng.gen_bool(*switch_prob) {
                    *bursting = !*bursting;
                }
                exponential_gap(rate, rng)
            }
        }
    }
}

/// Draw `Exp(rate)` via inverse CDF, clamped to ≥ 1 µs so simulated time
/// always advances.
fn exponential_gap<R: Rng + ?Sized>(rate: f64, rng: &mut R) -> Duration {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let secs = -u.ln() / rate;
    Duration::from_micros(((secs * 1e6) as u64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_spacing_is_exact() {
        let mut p = ArrivalProcess::uniform(100.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..5 {
            assert_eq!(p.next_gap(&mut rng), Duration::from_micros(10_000));
        }
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let mut p = ArrivalProcess::poisson(50.0);
        let mut rng = SmallRng::seed_from_u64(1);
        const N: usize = 50_000;
        let total: f64 = (0..N).map(|_| p.next_gap(&mut rng).as_secs_f64()).sum();
        let mean = total / N as f64;
        assert!(
            (mean - 0.02).abs() < 0.002,
            "mean gap {mean} vs expected 0.02"
        );
    }

    #[test]
    fn poisson_gaps_are_variable() {
        let mut p = ArrivalProcess::poisson(10.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let gaps: Vec<u64> = (0..100).map(|_| p.next_gap(&mut rng).micros()).collect();
        let distinct: std::collections::HashSet<_> = gaps.iter().collect();
        assert!(distinct.len() > 50, "exponential gaps should rarely repeat");
        assert!(gaps.iter().all(|&g| g >= 1));
    }

    #[test]
    fn bursty_switches_phases() {
        let mut p = ArrivalProcess::bursty(10.0, 1000.0, 0.2);
        let mut rng = SmallRng::seed_from_u64(3);
        // Collect gaps; the mixture should contain both long (~0.1s) and
        // short (~1ms) gaps.
        let gaps: Vec<f64> = (0..2000)
            .map(|_| p.next_gap(&mut rng).as_secs_f64())
            .collect();
        let long = gaps.iter().filter(|&&g| g > 0.03).count();
        let short = gaps.iter().filter(|&&g| g < 0.003).count();
        assert!(long > 100, "calm phase gaps missing ({long})");
        assert!(short > 100, "burst phase gaps missing ({short})");
    }

    #[test]
    fn mean_rates() {
        assert_eq!(ArrivalProcess::uniform(5.0).mean_rate(), 5.0);
        assert_eq!(ArrivalProcess::poisson(5.0).mean_rate(), 5.0);
        assert_eq!(ArrivalProcess::bursty(10.0, 30.0, 0.1).mean_rate(), 20.0);
    }

    #[test]
    #[should_panic(expected = "invalid rate")]
    fn zero_rate_panics() {
        let _ = ArrivalProcess::poisson(0.0);
    }

    #[test]
    #[should_panic(expected = "switch_prob out of range")]
    fn bad_switch_prob_panics() {
        let _ = ArrivalProcess::bursty(1.0, 2.0, 1.5);
    }
}
