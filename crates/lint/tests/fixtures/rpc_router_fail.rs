//! Fixture router: `merge_broadcast` misses the non-excepted
//! `Response::Results` AND handles the excepted `Response::Ingested` — one
//! unhandled-variant diagnostic plus one stale-exemption diagnostic.

fn route_one(req: &Request) -> u32 {
    match req {
        Request::Ping => 0,
        Request::Ingest { .. } => 1,
        Request::Query(_) => 2,
    }
}

fn merge_broadcast(acc: &mut Vec<Response>, r: Response) {
    match r {
        Response::Pong => acc.push(r),
        Response::Ingested(_) => acc.push(r),
        _ => {}
    }
}
