//! Blocking client for the adcast wire protocol.
//!
//! One [`Client`] wraps one TCP connection and runs a closed loop: each
//! call writes a frame, then blocks for the matching reply (ids are
//! checked, so a desynchronized stream surfaces as
//! [`NetError::IdMismatch`] instead of silently mis-pairing replies).
//! Connect retries with exponential backoff so a load generator can race
//! server startup; the same retry loop backs [`Client::reconnect`], so a
//! caller can ride through a server restart. A peer that vanishes
//! mid-RPC (broken pipe, connection reset, EOF inside a reply) surfaces
//! as the typed [`NetError::Disconnected`] — the caller knows the
//! request's fate is unknown and can reconnect + retry where that is
//! safe. Per-call timeouts come from the socket read timeout.

use std::io;
use std::net::TcpStream;
use std::time::Duration;

use adcast_ads::AdId;
use adcast_core::Recommendation;
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::LocationId;

use crate::codec::{decode_response, encode_request, read_frame, write_frame, NetError};
use crate::protocol::{CampaignSpec, Request, Response, ServerStats};

/// Connection and retry knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connect attempts before giving up (also per [`Client::reconnect`]
    /// call).
    pub connect_attempts: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub initial_backoff: Duration,
    /// Per-RPC reply timeout (`None` = wait forever).
    pub rpc_timeout: Option<Duration>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_attempts: 8,
            initial_backoff: Duration::from_millis(20),
            rpc_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A blocking connection to an adcast server.
pub struct Client {
    stream: TcpStream,
    next_id: u64,
    addr: String,
    config: ClientConfig,
}

/// The shared connect-with-backoff loop (initial connect and reconnect).
fn connect_with_backoff(addr: &str, config: &ClientConfig) -> Result<TcpStream, NetError> {
    let mut backoff = config.initial_backoff;
    let mut last: Option<io::Error> = None;
    for attempt in 0..config.connect_attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream.set_nodelay(true)?;
                stream.set_read_timeout(config.rpc_timeout)?;
                return Ok(stream);
            }
            Err(e) => last = Some(e),
        }
    }
    Err(NetError::Io(last.unwrap_or_else(|| {
        io::Error::other("no connect attempts made")
    })))
}

/// Does this error mean the peer went away (as opposed to a protocol or
/// local failure)?
fn is_disconnect(err: &NetError) -> bool {
    match err {
        NetError::UnexpectedEof => true,
        NetError::Io(e) => matches!(
            e.kind(),
            io::ErrorKind::BrokenPipe
                | io::ErrorKind::ConnectionReset
                | io::ErrorKind::ConnectionAborted
                | io::ErrorKind::NotConnected
        ),
        _ => false,
    }
}

impl Client {
    /// Connect with retry + exponential backoff.
    ///
    /// # Errors
    ///
    /// The last connect error once `connect_attempts` is exhausted.
    pub fn connect(addr: impl Into<String>, config: &ClientConfig) -> Result<Client, NetError> {
        let addr = addr.into();
        let stream = connect_with_backoff(&addr, config)?;
        Ok(Client {
            stream,
            next_id: 1,
            addr,
            config: config.clone(),
        })
    }

    /// Drop the (possibly dead) connection and dial the same address
    /// again with the same retry/backoff policy. Any RPC that was in
    /// flight when the old connection died is of unknown fate — re-issue
    /// it only where at-least-once semantics are acceptable.
    ///
    /// # Errors
    ///
    /// The last connect error once `connect_attempts` is exhausted; the
    /// client keeps its old (dead) stream in that case so a later retry
    /// is still possible.
    pub fn reconnect(&mut self) -> Result<(), NetError> {
        self.stream = connect_with_backoff(&self.addr, &self.config)?;
        self.next_id = 1;
        Ok(())
    }

    /// The address this client dials.
    #[must_use]
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Issue one RPC and wait for its reply.
    ///
    /// # Errors
    ///
    /// [`NetError::Disconnected`] when the server goes away mid-RPC
    /// (write or read side), [`NetError::IdMismatch`] on a
    /// desynchronized stream, and transport/codec failures otherwise. A
    /// server-side [`Response::Error`] is returned as `Ok` — use the
    /// typed wrappers below to turn those into [`NetError::Remote`].
    pub fn call(&mut self, req: &Request) -> Result<Response, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        let outcome = (|| {
            write_frame(&mut self.stream, &encode_request(id, req))?;
            read_frame(&mut self.stream)?.ok_or(NetError::UnexpectedEof)
        })();
        let body = match outcome {
            Ok(body) => body,
            Err(e) if is_disconnect(&e) => return Err(NetError::Disconnected),
            Err(e) => return Err(e),
        };
        let (got, resp) = decode_response(body)?;
        if got != id {
            return Err(NetError::IdMismatch { expected: id, got });
        }
        Ok(resp)
    }

    /// Apply a batch of feed deltas; returns the accepted count.
    ///
    /// # Errors
    ///
    /// [`NetError::Remote`] carries server-side refusals — match
    /// [`crate::WireError::Overloaded`] to implement retry-with-backoff.
    pub fn ingest(&mut self, deltas: Vec<(UserId, FeedDelta)>) -> Result<u32, NetError> {
        match self.call(&Request::Ingest { deltas })? {
            Response::Ingested { accepted } => Ok(accepted),
            other => Err(unexpected(other)),
        }
    }

    /// Serve the top-`k` ads for `user`.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn recommend(
        &mut self,
        user: UserId,
        now: Timestamp,
        location: LocationId,
        k: u16,
    ) -> Result<Vec<Recommendation>, NetError> {
        match self.call(&Request::Recommend {
            user,
            now,
            location,
            k,
        })? {
            Response::Recommendations(recs) => Ok(recs),
            other => Err(unexpected(other)),
        }
    }

    /// Submit a campaign; returns its assigned id.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn submit_campaign(&mut self, spec: CampaignSpec) -> Result<AdId, NetError> {
        match self.call(&Request::SubmitCampaign(spec))? {
            Response::CampaignAccepted { ad } => Ok(ad),
            other => Err(unexpected(other)),
        }
    }

    /// Pause a campaign everywhere.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn pause_campaign(&mut self, ad: AdId) -> Result<(), NetError> {
        match self.call(&Request::PauseCampaign { ad })? {
            Response::CampaignPaused { .. } => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Charge an impression; returns whether it exhausted the budget.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn impression(
        &mut self,
        ad: AdId,
        cost: f64,
        clicked: bool,
        now: Timestamp,
    ) -> Result<bool, NetError> {
        match self.call(&Request::Impression {
            ad,
            cost,
            clicked,
            now,
        })? {
            Response::ImpressionRecorded { exhausted, .. } => Ok(exhausted),
            other => Err(unexpected(other)),
        }
    }

    /// Run a lifecycle maintenance pass (evict finished-flight campaigns,
    /// reset users idle for at least `idle_for`); returns `(scanned,
    /// decayed, pruned)` counts.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn maintain(
        &mut self,
        now: Timestamp,
        idle_for: adcast_stream::clock::Duration,
    ) -> Result<(u64, u64, u64), NetError> {
        match self.call(&Request::Maintain { now, idle_for })? {
            Response::Maintained {
                scanned,
                decayed,
                pruned,
            } => Ok((scanned, decayed, pruned)),
            other => Err(unexpected(other)),
        }
    }

    /// Force a durable snapshot; returns the WAL position it covers.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`]; a server without a data directory refuses
    /// with [`crate::WireError::BadRequest`].
    pub fn checkpoint(&mut self) -> Result<u64, NetError> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpointed { lsn } => Ok(lsn),
            other => Err(unexpected(other)),
        }
    }

    /// Dump the server's flight recorder to disk; returns the number of
    /// events written.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`]; a server without a data directory refuses
    /// with [`crate::WireError::BadRequest`].
    pub fn obs_dump(&mut self) -> Result<u64, NetError> {
        match self.call(&Request::ObsDump)? {
            Response::ObsDumped { events } => Ok(events),
            other => Err(unexpected(other)),
        }
    }

    /// Snapshot the server's counters and latency percentiles.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn stats(&mut self) -> Result<ServerStats, NetError> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Ask the server to drain and stop.
    ///
    /// # Errors
    ///
    /// See [`Client::ingest`].
    pub fn shutdown(&mut self) -> Result<(), NetError> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

/// Fold a non-matching reply into a typed error.
fn unexpected(resp: Response) -> NetError {
    match resp {
        Response::Error(e) => NetError::Remote(e),
        other => NetError::Decode(adcast_stream::trace::TraceError::Corrupt(match other {
            Response::Ingested { .. } => "unexpected Ingested reply",
            Response::Recommendations(_) => "unexpected Recommendations reply",
            Response::CampaignAccepted { .. } => "unexpected CampaignAccepted reply",
            Response::CampaignPaused { .. } => "unexpected CampaignPaused reply",
            Response::ImpressionRecorded { .. } => "unexpected ImpressionRecorded reply",
            Response::Maintained { .. } => "unexpected Maintained reply",
            Response::Checkpointed { .. } => "unexpected Checkpointed reply",
            Response::ObsDumped { .. } => "unexpected ObsDumped reply",
            Response::Stats(_) => "unexpected Stats reply",
            Response::ShutdownAck => "unexpected ShutdownAck reply",
            Response::Error(_) => unreachable!(),
        })),
    }
}
