//! Lossy text normalization tuned for social-media text.
//!
//! The normalizer lowercases, folds a practical subset of Latin-1 /
//! Latin-Extended-A accented characters to ASCII, collapses typographic
//! punctuation (curly quotes, dashes, ellipses) to their ASCII forms, and
//! squeezes repeated letters ("soooo" → "soo") which is a common social-text
//! trick that dramatically reduces vocabulary blow-up on informal text.
//!
//! Normalization is *lossy by design*: the output feeds a bag-of-words
//! recommender, not a renderer.

/// Fold one character to zero or more ASCII characters.
///
/// Returns `None` when the character passes through unchanged (already
/// lowercase ASCII) so callers can avoid allocation in the common case.
fn fold_char(c: char) -> Fold {
    if c.is_ascii_lowercase() || c.is_ascii_digit() {
        return Fold::Keep;
    }
    if c.is_ascii_uppercase() {
        return Fold::One(c.to_ascii_lowercase());
    }
    match c {
        // Latin-1 + Latin Extended-A vowels.
        'à' | 'á' | 'â' | 'ã' | 'ä' | 'å' | 'ā' | 'ă' | 'ą' | 'À' | 'Á' | 'Â' | 'Ã' | 'Ä' | 'Å'
        | 'Ā' | 'Ă' | 'Ą' => Fold::One('a'),
        'è' | 'é' | 'ê' | 'ë' | 'ē' | 'ĕ' | 'ė' | 'ę' | 'ě' | 'È' | 'É' | 'Ê' | 'Ë' | 'Ē' | 'Ĕ'
        | 'Ė' | 'Ę' | 'Ě' => Fold::One('e'),
        'ì' | 'í' | 'î' | 'ï' | 'ĩ' | 'ī' | 'ĭ' | 'į' | 'ı' | 'Ì' | 'Í' | 'Î' | 'Ï' | 'Ĩ' | 'Ī'
        | 'Ĭ' | 'Į' | 'İ' => Fold::One('i'),
        'ò' | 'ó' | 'ô' | 'õ' | 'ö' | 'ø' | 'ō' | 'ŏ' | 'ő' | 'Ò' | 'Ó' | 'Ô' | 'Õ' | 'Ö' | 'Ø'
        | 'Ō' | 'Ŏ' | 'Ő' => Fold::One('o'),
        'ù' | 'ú' | 'û' | 'ü' | 'ũ' | 'ū' | 'ŭ' | 'ů' | 'ű' | 'ų' | 'Ù' | 'Ú' | 'Û' | 'Ü' | 'Ũ'
        | 'Ū' | 'Ŭ' | 'Ů' | 'Ű' | 'Ų' => Fold::One('u'),
        'ý' | 'ÿ' | 'Ý' | 'Ÿ' => Fold::One('y'),
        // Consonants.
        'ç' | 'ć' | 'ĉ' | 'ċ' | 'č' | 'Ç' | 'Ć' | 'Ĉ' | 'Ċ' | 'Č' => Fold::One('c'),
        'ñ' | 'ń' | 'ņ' | 'ň' | 'Ñ' | 'Ń' | 'Ņ' | 'Ň' => Fold::One('n'),
        'š' | 'ś' | 'ŝ' | 'ş' | 'Š' | 'Ś' | 'Ŝ' | 'Ş' => Fold::One('s'),
        'ž' | 'ź' | 'ż' | 'Ž' | 'Ź' | 'Ż' => Fold::One('z'),
        'ğ' | 'ĝ' | 'ġ' | 'ģ' | 'Ğ' | 'Ĝ' | 'Ġ' | 'Ģ' => Fold::One('g'),
        'ł' | 'ĺ' | 'ļ' | 'ľ' | 'Ł' | 'Ĺ' | 'Ļ' | 'Ľ' => Fold::One('l'),
        'ř' | 'ŕ' | 'ŗ' | 'Ř' | 'Ŕ' | 'Ŗ' => Fold::One('r'),
        'ť' | 'ţ' | 'Ť' | 'Ţ' => Fold::One('t'),
        'ď' | 'Ď' | 'đ' | 'Đ' => Fold::One('d'),
        'ß' => Fold::Two('s', 's'),
        'æ' | 'Æ' => Fold::Two('a', 'e'),
        'œ' | 'Œ' => Fold::Two('o', 'e'),
        // Typographic punctuation to ASCII.
        '\u{2018}' | '\u{2019}' | '\u{201A}' | '\u{2032}' => Fold::One('\''),
        '\u{201C}' | '\u{201D}' | '\u{201E}' | '\u{2033}' => Fold::One('"'),
        '\u{2013}' | '\u{2014}' | '\u{2015}' | '\u{2212}' => Fold::One('-'),
        '\u{2026}' => Fold::One('.'),
        '\u{00A0}' | '\u{2009}' | '\u{200A}' | '\u{2002}' | '\u{2003}' => Fold::One(' '),
        // Everything else passes through; the tokenizer decides what is a
        // word character. Emoji and CJK survive here and form their own
        // tokens downstream.
        _ => Fold::Keep,
    }
}

enum Fold {
    Keep,
    One(char),
    Two(char, char),
}

/// Normalize `input` into `out` (cleared first).
///
/// Reusing the output buffer keeps the hot tokenization path allocation-free;
/// see the perf notes in `DESIGN.md`.
pub fn normalize_into(input: &str, out: &mut String) {
    out.clear();
    out.reserve(input.len());
    // Squeeze runs of 3+ identical letters down to 2 ("sooooo" -> "soo").
    let mut prev: Option<char> = None;
    let mut run = 0usize;
    let mut push = |c: char, out: &mut String| {
        if Some(c) == prev && c.is_ascii_alphabetic() {
            run += 1;
            if run >= 2 {
                return;
            }
        } else {
            prev = Some(c);
            run = 0;
        }
        out.push(c);
    };
    for c in input.chars() {
        match fold_char(c) {
            Fold::Keep => push(c, out),
            Fold::One(a) => push(a, out),
            Fold::Two(a, b) => {
                push(a, out);
                push(b, out);
            }
        }
    }
}

/// Convenience wrapper around [`normalize_into`] that allocates.
pub fn normalize(input: &str) -> String {
    let mut out = String::new();
    normalize_into(input, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_ascii() {
        assert_eq!(normalize("HeLLo World"), "hello world");
    }

    #[test]
    fn folds_accents() {
        assert_eq!(normalize("Café Zürich"), "cafe zurich");
        assert_eq!(normalize("naïve façade"), "naive facade");
    }

    #[test]
    fn folds_ligatures_and_sharp_s() {
        assert_eq!(normalize("straße"), "strasse");
        assert_eq!(normalize("Œuvre"), "oeuvre");
        assert_eq!(normalize("Ærø"), "aero");
    }

    #[test]
    fn folds_typographic_punctuation() {
        assert_eq!(
            normalize("it\u{2019}s \u{201C}fine\u{201D}"),
            "it's \"fine\""
        );
        assert_eq!(normalize("a\u{2014}b"), "a-b");
    }

    #[test]
    fn squeezes_letter_runs() {
        assert_eq!(normalize("soooooo gooood"), "soo good");
        // Runs of exactly two are preserved (legitimate double letters).
        assert_eq!(normalize("bookkeeper"), "bookkeeper");
        // Digits are never squeezed.
        assert_eq!(normalize("10000"), "10000");
    }

    #[test]
    fn passes_through_unknown_scripts() {
        assert_eq!(normalize("日本語 ok"), "日本語 ok");
    }

    #[test]
    fn normalize_into_reuses_buffer() {
        let mut buf = String::from("stale contents");
        normalize_into("New", &mut buf);
        assert_eq!(buf, "new");
    }

    #[test]
    fn empty_input() {
        assert_eq!(normalize(""), "");
    }
}
