//! The rule implementations. Each rule is a pure function from a
//! [`FileAnalysis`] to diagnostics; path gating lives in [`crate::config`]
//! so a fixture can be linted "as if" it were a hot-path file.

use crate::analysis::{matching_close, Directive, FileAnalysis};
use crate::config;
use crate::lexer::TokKind;
use crate::Diagnostic;

pub const UNSAFE_NEEDS_SAFETY: &str = "unsafe-needs-safety";
pub const NO_PANIC_HOT_PATH: &str = "no-panic-hot-path";
pub const NO_ALLOC_STEADY_STATE: &str = "no-alloc-steady-state";
pub const WAL_ORDERING: &str = "wal-ordering";
pub const ERROR_HYGIENE: &str = "error-hygiene";
pub const NO_LOCK_IN_RECORD: &str = "no-lock-in-record";
pub const NO_WALLCLOCK: &str = "no-wallclock";

fn diag(fa: &FileAnalysis, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: fa.rel_path.clone(),
        line,
        rule,
        message,
    }
}

/// Rule 1: every `unsafe` keyword (block, fn, impl) must be immediately
/// preceded by a `// SAFETY:` comment — attributes may sit between, blank
/// lines may not. Applies to every file, test code included: unsoundness in
/// tests is still unsoundness.
pub fn unsafe_needs_safety(fa: &FileAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for t in &fa.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let mut l = t.line.saturating_sub(1);
        let mut ok = false;
        while l > 0 {
            if let Some(c) = fa.comment_on(l) {
                if c.text.contains("SAFETY:") {
                    ok = true;
                    break;
                }
                l = c.line.saturating_sub(1);
            } else if fa.attr_lines.binary_search(&l).is_ok() {
                l -= 1;
            } else {
                break;
            }
        }
        if !ok {
            out.push(diag(
                fa,
                t.line,
                UNSAFE_NEEDS_SAFETY,
                "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
            ));
        }
    }
    out
}

/// Rule 2: no panicking constructs in the configured hot-path modules
/// (outside `#[cfg(test)]`). A narrower sub-set of files also bans bare
/// slice indexing in favour of `.get()`.
pub fn no_panic_hot_path(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::is_hot_path(&fa.rel_path) {
        return Vec::new();
    }
    let index_checked = config::is_index_checked(&fa.rel_path);
    let mut out = Vec::new();
    for (i, t) in fa.tokens.iter().enumerate() {
        if fa.in_test[i] {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &fa.tokens[p]);
        let next = fa.tokens.get(i + 1);
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
        {
            out.push(diag(
                fa,
                t.line,
                NO_PANIC_HOT_PATH,
                format!(
                    "`.{}()` on a hot path; return a typed error instead",
                    t.text
                ),
            ));
            continue;
        }
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unimplemented" | "todo" | "unreachable"
            )
            && next.is_some_and(|n| n.is_punct('!'))
        {
            out.push(diag(
                fa,
                t.line,
                NO_PANIC_HOT_PATH,
                format!("`{}!` on a hot path; return a typed error instead", t.text),
            ));
            continue;
        }
        if index_checked
            && t.is_punct('[')
            && prev.is_some_and(|p| p.kind == TokKind::Ident || p.is_punct(')') || p.is_punct(']'))
        {
            out.push(diag(
                fa,
                t.line,
                NO_PANIC_HOT_PATH,
                "bare slice index on a hot path; use `.get()` and handle `None`".to_string(),
            ));
        }
    }
    out
}

/// Rule 3: a fn marked `// adcast-lint: zero-alloc` may not allocate.
/// Scratch re-use is the sanctioned pattern: pushes are allowed only when
/// the receiver chain goes through `scratch` or a local taken from
/// `self.scratch` via `mem::take`. This is the static complement to the
/// `debug-stats` counting-allocator test (which proves the property
/// dynamically for the inputs it runs).
pub fn no_alloc_steady_state(fa: &FileAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in &fa.pragmas {
        if !matches!(p.directive, Directive::ZeroAlloc) {
            continue;
        }
        let Some(f) = fa
            .fns
            .iter()
            .filter(|f| f.line > p.line && f.body_open.is_some())
            .min_by_key(|f| f.line)
        else {
            out.push(diag(
                fa,
                p.line,
                NO_ALLOC_STEADY_STATE,
                "zero-alloc marker is not followed by a function with a body".to_string(),
            ));
            continue;
        };
        let (open, close) = (f.body_open.unwrap_or(0), f.body_close.unwrap_or(0));
        check_zero_alloc_body(fa, open + 1, close, &f.name, &mut out);
    }
    out
}

fn check_zero_alloc_body(
    fa: &FileAnalysis,
    start: usize,
    end: usize,
    fn_name: &str,
    out: &mut Vec<Diagnostic>,
) {
    // Locals bound from `... = std::mem::take(&mut self.scratch.<field>)`.
    let mut scratch_locals: Vec<&str> = Vec::new();
    for i in start..end {
        let t = &fa.tokens[i];
        if !t.is_ident("take") || !fa.tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let has_mem = (i.saturating_sub(4)..i).any(|j| fa.tokens[j].is_ident("mem"));
        if !has_mem {
            continue;
        }
        let Some(close) = matching_close(&fa.tokens, i + 1) else {
            continue;
        };
        let takes_scratch = fa.tokens[i + 1..close]
            .iter()
            .any(|t| t.is_ident("scratch"));
        if !takes_scratch {
            continue;
        }
        // Walk back over the `std::mem::take` chain to the `=`, then the
        // binding name sits just before it.
        let mut j = i;
        while j > start {
            let prev = &fa.tokens[j - 1];
            if prev.is_punct(':') || prev.is_punct('.') || prev.kind == TokKind::Ident {
                j -= 1;
            } else {
                break;
            }
        }
        if j > start && fa.tokens[j - 1].is_punct('=') && j >= 2 {
            let name = &fa.tokens[j - 2];
            if name.kind == TokKind::Ident {
                scratch_locals.push(name.text.as_str());
            }
        }
    }

    for i in start..end {
        let t = &fa.tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &fa.tokens[p]);
        let next = fa.tokens.get(i + 1);
        let called = next.is_some_and(|n| n.is_punct('(') || n.is_punct(':'));

        // `Vec::new` / `Box::new` / `String::new` and friends, with or
        // without a turbofish (`Vec::<u32>::new`).
        if matches!(
            t.text.as_str(),
            "Vec" | "Box" | "String" | "HashMap" | "BTreeMap"
        ) && fa.tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && fa.tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
        {
            let mut m = i + 3;
            if fa.tokens.get(m).is_some_and(|x| x.is_punct('<')) {
                let mut angle = 0i64;
                while let Some(x) = fa.tokens.get(m) {
                    if x.is_punct('<') {
                        angle += 1;
                    } else if x.is_punct('>') {
                        angle -= 1;
                        if angle == 0 {
                            m += 1;
                            break;
                        }
                    }
                    m += 1;
                }
                // Expect `::` after the closing `>`.
                if fa.tokens.get(m).is_some_and(|x| x.is_punct(':'))
                    && fa.tokens.get(m + 1).is_some_and(|x| x.is_punct(':'))
                {
                    m += 2;
                } else {
                    m = usize::MAX;
                }
            }
            let ctor = fa
                .tokens
                .get(m.min(fa.tokens.len()))
                .filter(|c| c.is_ident("new") || c.is_ident("from") || c.is_ident("with_capacity"));
            if let Some(ctor) = ctor {
                out.push(diag(
                    fa,
                    t.line,
                    NO_ALLOC_STEADY_STATE,
                    format!(
                        "`{}::{}` allocates inside zero-alloc fn `{fn_name}`",
                        t.text, ctor.text
                    ),
                ));
                continue;
            }
        }
        // `vec![...]` / `format!(...)`.
        if matches!(t.text.as_str(), "vec" | "format") && next.is_some_and(|n| n.is_punct('!')) {
            out.push(diag(
                fa,
                t.line,
                NO_ALLOC_STEADY_STATE,
                format!("`{}!` allocates inside zero-alloc fn `{fn_name}`", t.text),
            ));
            continue;
        }
        // Allocating method calls.
        if matches!(
            t.text.as_str(),
            "to_vec" | "collect" | "clone" | "to_owned" | "to_string"
        ) && prev.is_some_and(|p| p.is_punct('.'))
            && called
        {
            out.push(diag(
                fa,
                t.line,
                NO_ALLOC_STEADY_STATE,
                format!("`.{}()` allocates inside zero-alloc fn `{fn_name}`", t.text),
            ));
            continue;
        }
        // `push` is allowed only onto scratch-owned storage (capacity is
        // retained across deltas, so steady-state pushes do not allocate).
        if t.is_ident("push")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
        {
            let mut chain: Vec<&str> = Vec::new();
            let mut j = i - 1; // the `.`
            while j >= 1 && fa.tokens[j].is_punct('.') && fa.tokens[j - 1].kind == TokKind::Ident {
                chain.push(fa.tokens[j - 1].text.as_str());
                if j < 2 {
                    break;
                }
                j -= 2;
            }
            // `chain` reads receiver-outward: `self.scratch.promote.push`
            // yields ["promote", "scratch", "self"].
            let allowed = chain.iter().any(|n| n.contains("scratch"))
                || chain
                    .first()
                    .is_some_and(|recv| scratch_locals.contains(recv));
            if !allowed {
                out.push(diag(
                    fa,
                    t.line,
                    NO_ALLOC_STEADY_STATE,
                    format!(
                        "`.push()` onto non-scratch storage `{}` inside zero-alloc fn `{fn_name}`",
                        chain.first().copied().unwrap_or("<expr>")
                    ),
                ));
            }
        }
    }
}

/// Rule 4: in mutation handlers, the WAL commit must happen before the store
/// apply. Token-order check: within any fn body that mentions
/// `apply_record`, a `commit(` call must appear earlier in the body.
pub fn wal_ordering(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::wants_wal_ordering(&fa.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &fa.fns {
        let (Some(open), Some(close)) = (f.body_open, f.body_close) else {
            continue;
        };
        if fa.in_test[open] {
            continue;
        }
        let apply_at = (open + 1..close).find(|&i| fa.tokens[i].is_ident("apply_record"));
        let Some(apply_at) = apply_at else {
            continue;
        };
        let commit_before = (open + 1..apply_at).any(|i| {
            fa.tokens[i].is_ident("commit") && fa.tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        });
        if !commit_before {
            out.push(diag(
                fa,
                fa.tokens[apply_at].line,
                WAL_ORDERING,
                format!(
                    "`apply_record` in `{}` without a preceding WAL `commit()`: \
                     durable order is validate-log-commit-apply-ack",
                    f.name
                ),
            ));
        }
    }
    out
}

/// Rule 5: public fallible APIs in `net`/`durability` return the crate's
/// typed error, never `io::Result`/`io::Error` directly; and public error
/// enums are `#[non_exhaustive]` so adding a variant is not a breaking
/// change downstream.
pub fn error_hygiene(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::wants_error_hygiene(&fa.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &fa.fns {
        if !f.is_pub || fa.in_test[f.fn_idx] {
            continue;
        }
        let Some((rs, re)) = f.ret else {
            continue;
        };
        let mentions_io = (rs..re.saturating_sub(2)).any(|i| {
            fa.tokens[i].is_ident("io")
                && fa.tokens[i + 1].is_punct(':')
                && fa.tokens[i + 2].is_punct(':')
                && fa
                    .tokens
                    .get(i + 3)
                    .is_some_and(|t| t.is_ident("Result") || t.is_ident("Error"))
        });
        if mentions_io {
            out.push(diag(
                fa,
                f.line,
                ERROR_HYGIENE,
                format!(
                    "pub fn `{}` returns `io::Error` directly; wrap it in the crate's typed error",
                    f.name
                ),
            ));
        }
    }
    // `pub enum <Name>Error` must carry #[non_exhaustive].
    for (i, t) in fa.tokens.iter().enumerate() {
        if !t.is_ident("enum") || fa.in_test[i] {
            continue;
        }
        if !i
            .checked_sub(1)
            .is_some_and(|p| fa.tokens[p].is_ident("pub"))
        {
            continue; // private or restricted visibility
        }
        let Some(name) = fa.tokens.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident || !name.text.ends_with("Error") {
            continue;
        }
        if !has_non_exhaustive_attr(fa, i - 1) {
            out.push(diag(
                fa,
                t.line,
                ERROR_HYGIENE,
                format!(
                    "pub error enum `{}` is not `#[non_exhaustive]`; adding a variant would \
                     break downstream matches",
                    name.text
                ),
            ));
        }
    }
    out
}

/// Rule 6: the obs record paths must stay lock-free. A metric handle or the
/// flight recorder is hit from every serving thread — the accept loop, each
/// reader, the engine, the durability persister — and from inside the
/// zero-alloc engine kernel, so a lock here would serialize the very paths
/// the telemetry exists to measure. Bans lock type names (`Mutex`,
/// `RwLock`) and `.lock()` calls outside `#[cfg(test)]`.
pub fn no_lock_in_record(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::wants_no_lock(&fa.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in fa.tokens.iter().enumerate() {
        if fa.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "Mutex" | "RwLock") {
            out.push(diag(
                fa,
                t.line,
                NO_LOCK_IN_RECORD,
                format!(
                    "`{}` in an obs record path; recording must stay lock-free (atomics only)",
                    t.text
                ),
            ));
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &fa.tokens[p]);
        let next = fa.tokens.get(i + 1);
        if t.is_ident("lock")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
        {
            out.push(diag(
                fa,
                t.line,
                NO_LOCK_IN_RECORD,
                "`.lock()` in an obs record path; recording must stay lock-free (atomics only)"
                    .to_string(),
            ));
        }
    }
    out
}

/// Rule 7: the deterministic-simulation seam. Core, durability and net run
/// unmodified under the sim harness's virtual clock, so their non-test code
/// must read time through `adcast_stream::clock::now_ns()`; a raw
/// `Instant::now()` / `SystemTime::now()` is invisible to the simulator and
/// breaks same-seed reproducibility. The clock module itself lives in
/// `crates/stream/` — outside the gated set — and needs no exemption here.
pub fn no_wallclock(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::wants_no_wallclock(&fa.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in fa.tokens.iter().enumerate() {
        if fa.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if !matches!(t.text.as_str(), "Instant" | "SystemTime") {
            continue;
        }
        let now_call = fa.tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && fa.tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && fa.tokens.get(i + 3).is_some_and(|c| c.is_ident("now"))
            && fa.tokens.get(i + 4).is_some_and(|d| d.is_punct('('));
        if now_call {
            out.push(diag(
                fa,
                t.line,
                NO_WALLCLOCK,
                format!(
                    "`{}::now()` reads the wall clock on a simulated path; use \
                     `adcast_stream::clock::now_ns()` so virtual time stays authoritative",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Walk backwards from the token at `before` (the `pub` of an item) over
/// contiguous attribute groups, looking for `non_exhaustive`.
fn has_non_exhaustive_attr(fa: &FileAnalysis, before: usize) -> bool {
    let mut j = before;
    while j >= 1 && fa.tokens[j - 1].is_punct(']') {
        // Find the matching `[` going backwards.
        let mut depth = 0i64;
        let mut k = j - 1;
        loop {
            if fa.tokens[k].is_punct(']') {
                depth += 1;
            } else if fa.tokens[k].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        if fa.tokens[k..j].iter().any(|t| t.is_ident("non_exhaustive")) {
            return true;
        }
        if k >= 1 && fa.tokens[k - 1].is_punct('#') {
            j = k - 1;
        } else {
            return false;
        }
    }
    false
}
