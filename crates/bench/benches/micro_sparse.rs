//! Criterion micro-benchmarks: sparse-vector kernels (the engines' inner
//! loops).

use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_vector(rng: &mut SmallRng, terms: usize, vocab: u32) -> SparseVector {
    SparseVector::from_pairs(
        (0..terms).map(|_| (TermId(rng.gen_range(0..vocab)), rng.gen_range(0.01f32..1.0))),
    )
}

fn bench_dot(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_dot");
    let mut rng = SmallRng::seed_from_u64(1);
    for &size in &[8usize, 64, 512] {
        let a = random_vector(&mut rng, size, 10_000);
        let b = random_vector(&mut rng, size, 10_000);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| black_box(a.dot(&b)));
        });
    }
    group.finish();
}

fn bench_axpy(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparse_axpy");
    let mut rng = SmallRng::seed_from_u64(2);
    for &size in &[8usize, 64, 512] {
        let base = random_vector(&mut rng, size, 10_000);
        let delta = random_vector(&mut rng, 12, 10_000);
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |bench, _| {
            bench.iter(|| {
                let mut v = base.clone();
                v.axpy(black_box(0.5), &delta);
                black_box(v.len())
            });
        });
    }
    group.finish();
}

fn bench_ad_side_lookup(c: &mut Criterion) {
    // The incremental engine's promotion kernel: small-ad × large-context.
    let mut rng = SmallRng::seed_from_u64(3);
    let ctx = random_vector(&mut rng, 300, 10_000);
    let ad = random_vector(&mut rng, 8, 10_000);
    c.bench_function("ad_side_dot_8x300", |bench| {
        bench.iter(|| {
            let s: f32 = ad.iter().map(|(t, w)| w * ctx.get(t)).sum();
            black_box(s)
        });
    });
    // The same product through the skew-aware dispatch (lands on the
    // galloping merge-join): the replacement for per-term `get` probes.
    c.bench_function("ad_side_dot_8x300_dispatch", |bench| {
        bench.iter(|| black_box(ad.dot(&ctx)));
    });
}

fn bench_dot_skewed(c: &mut Criterion) {
    // Skewed operand lengths — the posting-driven rescoring shape (ads
    // hold ~10 terms, contexts hundreds). Compares the straight
    // merge-join against the galloping kernel and the public dispatch at
    // several skew ratios; the dispatch should track the better of the
    // two on both ends.
    let mut group = c.benchmark_group("sparse_dot_skewed");
    let mut rng = SmallRng::seed_from_u64(4);
    for &(small, large) in &[
        (8usize, 64usize),
        (8, 256),
        (8, 1024),
        (16, 1024),
        (64, 128),
    ] {
        let label = format!("{small}x{large}");
        let a = random_vector(&mut rng, small, 50_000);
        let b = random_vector(&mut rng, large, 50_000);
        group.bench_function(BenchmarkId::new("merge", &label), |bench| {
            bench.iter(|| black_box(a.dot_merge(&b)));
        });
        group.bench_function(BenchmarkId::new("gallop", &label), |bench| {
            bench.iter(|| black_box(a.dot_gallop(&b)));
        });
        group.bench_function(BenchmarkId::new("dispatch", &label), |bench| {
            bench.iter(|| black_box(a.dot(&b)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_dot,
    bench_axpy,
    bench_ad_side_lookup,
    bench_dot_skewed
);
criterion_main!(benches);
