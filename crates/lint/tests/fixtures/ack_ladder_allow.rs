//! Same swap as `ack_ladder_fail.rs`, with a reasoned allow pragma.

// adcast-lint: allow(ack-ladder) -- fixture: this replay path applies from an already-durable snapshot, so commit order is moot
fn replica_append(d: &mut Wal, entries: &[Record]) -> Result<u64, WalError> {
    for r in entries {
        d.log(r)?;
    }
    for r in entries {
        apply_record(d, r)?;
    }
    d.commit()?;
    Ok(d.next_lsn())
}
