//! The routing gateway: one TCP front door for an N-partition cluster.
//!
//! ## Forwarding model
//!
//! ```text
//! client ──► router connection thread ──► per-partition forwarder threads
//!                  │ split Ingest by user partition        │ owns one Client
//!                  │ route Recommend by user               │ to the partition
//!                  │ broadcast control RPCs (serialized)   │ primary
//!                  ◄───────────── merged reply ────────────┘
//! ```
//!
//! Each accepted connection gets its own forwarder thread per partition,
//! so a mixed ingest batch fans out to all partitions **concurrently**
//! and the reply returns when the slowest sub-batch acks — wall-clock
//! per batch is the max partition latency, not the sum. Client RPCs are
//! wrapped in `Routed{partition, epoch}` envelopes; the epoch makes a
//! deposed primary refuse with a typed error instead of serving stale.
//!
//! ## Broadcast ordering
//!
//! Campaign state is replicated to every partition (only users are
//! sharded), so control-plane mutations (submit/pause/impression/
//! maintain) broadcast to all partitions. Broadcasts across *all* router
//! connections are serialized by one mutex, giving every partition the
//! identical submission order — campaign ids assigned by replay are
//! identical on every node, which the consistency tests assert.
//!
//! ## Failover
//!
//! A forwarder that cannot reach its primary (dead connection, refused
//! dial, stale-epoch refusal) triggers promotion: under the partition
//! lock it dials the follower, bumps the epoch, and `Promote`s it. The
//! generation counter tells every other forwarder to re-dial. A
//! partition with no promotable follower sheds with typed
//! [`WireError::Overloaded`] rather than blocking the connection.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_net::client::{Client, ClientConfig};
use adcast_net::codec::{decode_request, encode_response, read_frame, write_frame, NetError};
use adcast_net::protocol::{Request, Response, ServerStats, TraceContext, WireError};
use adcast_obs::tracestore::{trace_id_for, tracestore, SpanKind};
use adcast_obs::{flightrec, Counter, EventKind, Gauge, Hist};
use adcast_stream::clock::now_ns;

use crate::partition::PartitionMap;

/// Router knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Connect/retry/timeout policy for the per-partition client pools.
    /// `connect_attempts` also bounds how long a forwarder probes a dead
    /// primary before giving up and promoting the follower.
    pub client: ClientConfig,
    /// How often blocked threads wake to poll the shutdown flag.
    pub poll_interval: Duration,
    /// Head-based trace sampling: every `trace_sample`-th forwarded
    /// client RPC carries a sampled [`TraceContext`] (0 disables
    /// tracing). Sampling is deterministic in the request ordinal, so a
    /// rerun with the same seed samples the same requests.
    pub trace_sample: u64,
    /// Seed for [`trace_id_for`]: same seed + same ordinal ⇒ same trace
    /// id, which is what makes sim traces reproducible.
    pub trace_seed: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            client: ClientConfig {
                connect_attempts: 3,
                ..ClientConfig::default()
            },
            poll_interval: Duration::from_millis(50),
            trace_sample: 0,
            trace_seed: 0xAD_CA57,
        }
    }
}

/// Handles into the process-wide metrics registry for the router.
#[derive(Clone)]
struct RouterObs {
    forwarded_total: Counter,
    broadcasts_total: Counter,
    failovers_total: Counter,
    shed_total: Counter,
    connections_total: Counter,
    partitions: Gauge,
    forward_ns: Hist,
    broadcast_ns: Hist,
}

impl RouterObs {
    fn resolve() -> RouterObs {
        let reg = adcast_obs::registry();
        RouterObs {
            forwarded_total: reg.counter(
                "adcast_router_forwarded_total",
                "Client RPCs forwarded to a partition primary.",
            ),
            broadcasts_total: reg.counter(
                "adcast_router_broadcasts_total",
                "Control RPCs broadcast to every partition.",
            ),
            failovers_total: reg.counter(
                "adcast_router_failovers_total",
                "Follower promotions initiated after a primary failure.",
            ),
            shed_total: reg.counter(
                "adcast_router_shed_total",
                "RPCs shed with Overloaded because a partition was unavailable.",
            ),
            connections_total: reg
                .counter("adcast_router_connections_total", "Connections accepted."),
            partitions: reg.gauge("adcast_router_partitions", "Partitions in the serving map."),
            forward_ns: reg.hist(
                "adcast_router_forward_ns",
                "Router span: single-partition forward round trip.",
            ),
            broadcast_ns: reg.hist(
                "adcast_router_broadcast_ns",
                "Router span: full-cluster control broadcast round trip.",
            ),
        }
    }
}

/// The router's authoritative view of one partition, shared by every
/// connection's forwarders. Locked briefly for reads; held across the
/// promotion RPC during failover (the partition is down anyway).
struct PartitionRuntime {
    epoch: u64,
    primary: String,
    follower: Option<String>,
    /// Bumped on every primary change; forwarders compare it to know
    /// their cached connection dials the wrong node.
    generation: u64,
}

struct RouterShared {
    shutdown: AtomicBool,
    partitions: Vec<Mutex<PartitionRuntime>>,
    /// Serializes control-plane broadcasts across all connections.
    broadcast: Mutex<()>,
    config: RouterConfig,
    obs: RouterObs,
    /// Ordinal of the next routable client RPC, across all connections —
    /// the head-based sampling counter.
    trace_ordinal: AtomicU64,
}

impl RouterShared {
    /// Sample (or not) the next routable client RPC: a root context whose
    /// trace id is a pure function of `(trace_seed, ordinal)`.
    fn sample_trace(&self) -> TraceContext {
        let every = self.config.trace_sample;
        if every == 0 {
            return TraceContext::NONE;
        }
        let ordinal = self.trace_ordinal.fetch_add(1, Ordering::Relaxed);
        if !ordinal.is_multiple_of(every) {
            return TraceContext::NONE;
        }
        TraceContext {
            trace_id: trace_id_for(self.config.trace_seed, ordinal),
            parent_span_id: 0,
        }
    }
}

/// One partition's forwarding state, owned by one forwarder thread of
/// one connection.
struct Forwarder {
    partition: u16,
    shared: Arc<RouterShared>,
    client: Option<Client>,
    generation: u64,
}

impl Forwarder {
    fn view(&self) -> (u64, String, u64) {
        match self.shared.partitions[usize::from(self.partition)].lock() {
            Ok(rt) => (rt.epoch, rt.primary.clone(), rt.generation),
            // A poisoned partition lock means a failover panicked; treat
            // the partition as unavailable rather than propagating.
            Err(poisoned) => {
                let rt = poisoned.into_inner();
                (rt.epoch, rt.primary.clone(), rt.generation)
            }
        }
    }

    /// Forward one client RPC to this partition, riding through at most
    /// two view changes (a failover by us or by a racing connection).
    /// A sampled `trace` roots the cross-node trace here: the envelope
    /// carries this forward span's derived id as the downstream parent,
    /// and the span itself is recorded when the reply lands.
    fn forward(&mut self, inner: &Request, trace: TraceContext) -> Response {
        let started = now_ns();
        let salt = u64::from(self.partition);
        for _ in 0..3 {
            let (epoch, primary, generation) = self.view();
            if self.client.is_none() || self.generation != generation {
                match Client::connect(primary, &self.shared.config.client) {
                    Ok(c) => {
                        self.client = Some(c);
                        self.generation = generation;
                    }
                    Err(_) => {
                        if self.failover(generation) {
                            continue;
                        }
                        break;
                    }
                }
            }
            let Some(client) = self.client.as_mut() else {
                break;
            };
            // Shutdown travels bare: it is role- and epoch-independent
            // (draining a fenced or deposed node is still wanted).
            let outcome = if matches!(inner, Request::Shutdown) {
                client.call(&Request::Shutdown)
            } else {
                client.call(&Request::Routed {
                    partition: self.partition,
                    epoch,
                    trace: trace.child(SpanKind::RouterForward, salt),
                    inner: Box::new(inner.clone()),
                })
            };
            match outcome {
                Ok(Response::Error(WireError::StaleEpoch { .. } | WireError::NotPrimary)) => {
                    // Our view lags the cluster (the node was promoted or
                    // fenced behind our back), or the primary is gone in
                    // all but TCP. Refresh; if the view hasn't moved,
                    // move it ourselves.
                    if self.view().2 == generation && !self.failover(generation) {
                        break;
                    }
                }
                Ok(resp) => {
                    self.shared.obs.forwarded_total.inc();
                    let forward_ns = now_ns().saturating_sub(started);
                    self.shared.obs.forward_ns.record(forward_ns);
                    tracestore().record(trace, SpanKind::RouterForward, salt, started, forward_ns);
                    return resp;
                }
                Err(NetError::Disconnected) => {
                    self.client = None;
                    if self.view().2 == generation && !self.failover(generation) {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        self.shared.obs.shed_total.inc();
        Response::Error(WireError::Overloaded)
    }

    /// Promote this partition's follower under a bumped epoch. Returns
    /// whether the caller should retry — true when the view changed,
    /// whether we moved it or a racing connection did.
    // adcast-lint: allow(lock-discipline) -- the promotion RPC runs under
    // the partition lock on purpose: the partition is down (nothing else
    // can make progress on it) and racing failovers must serialize on
    // exactly this lock so only one epoch bump wins.
    fn failover(&mut self, observed_generation: u64) -> bool {
        let mut rt = match self.shared.partitions[usize::from(self.partition)].lock() {
            Ok(rt) => rt,
            Err(poisoned) => poisoned.into_inner(),
        };
        if rt.generation != observed_generation {
            return true;
        }
        let Some(follower) = rt.follower.clone() else {
            return false;
        };
        let Ok(mut client) = Client::connect(follower.clone(), &self.shared.config.client) else {
            return false;
        };
        let adopted = match client.promote(self.partition, rt.epoch + 1) {
            Ok((epoch, _next_lsn)) => epoch,
            // The node already holds a higher epoch — promoted during a
            // previous router life. Adopt its view instead of fighting.
            Err(NetError::Remote(WireError::StaleEpoch { current })) => current,
            Err(_) => return false,
        };
        rt.epoch = adopted;
        rt.primary = follower;
        // The deposed primary is fenced, not a promotion target.
        rt.follower = None;
        rt.generation += 1;
        // Scripts grep this exact shape.
        eprintln!(
            "router: promoted partition={} epoch={} primary={}",
            self.partition, adopted, rt.primary
        );
        self.shared.obs.failovers_total.inc();
        flightrec().record(EventKind::Failover, u64::from(self.partition), adopted, 0);
        true
    }
}

/// One forwarding job for a partition forwarder thread.
struct Job {
    inner: Request,
    /// The sampled (or `NONE`) root context this RPC traces under; the
    /// fan-out legs of one broadcast share it and are told apart by the
    /// partition salt in their span ids.
    trace: TraceContext,
    /// Depth-1 by construction: the forwarder sends exactly one reply
    /// per job, so the bounded send can never block.
    reply: mpsc::SyncSender<Response>,
}

/// The per-connection fan-out: one forwarder thread per partition, fed
/// by channels, collected by the connection thread.
struct Pool {
    /// Each forwarder queue is bounded at one job: the connection thread
    /// is the only producer and collects every reply before dispatching
    /// the next RPC, so at most one job is ever in flight per partition.
    senders: Vec<mpsc::SyncSender<Job>>,
    joins: Vec<JoinHandle<()>>,
}

impl Pool {
    fn spawn(shared: &Arc<RouterShared>) -> Pool {
        let n = shared.partitions.len();
        let mut senders = Vec::with_capacity(n);
        let mut joins = Vec::with_capacity(n);
        for partition in 0..n {
            let (tx, rx) = mpsc::sync_channel::<Job>(1);
            let mut forwarder = Forwarder {
                // Construction bounds n to u16 (PartitionMap invariant).
                partition: partition as u16,
                shared: Arc::clone(shared),
                client: None,
                generation: u64::MAX, // force the first dial
            };
            let join = std::thread::Builder::new()
                .name(format!("adcast-fwd-{partition}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let resp = forwarder.forward(&job.inner, job.trace);
                        // A connection thread that gave up mid-collect
                        // cannot receive; fine.
                        let _ = job.reply.send(resp);
                    }
                });
            match join {
                Ok(j) => joins.push(j),
                Err(_) => continue,
            }
            senders.push(tx);
        }
        Pool { senders, joins }
    }

    /// Dispatch `inner` to one partition; returns the reply receiver.
    fn dispatch(
        &self,
        partition: u16,
        inner: Request,
        trace: TraceContext,
    ) -> mpsc::Receiver<Response> {
        let (tx, rx) = mpsc::sync_channel(1);
        if let Some(sender) = self.senders.get(usize::from(partition)) {
            let _ = sender.send(Job {
                inner,
                trace,
                reply: tx,
            });
        }
        rx
    }

    /// Dispatch `inner` to every partition concurrently and collect the
    /// replies in partition order (missing replies — a dead forwarder —
    /// come back as `Overloaded`).
    fn broadcast(&self, inner: &Request, trace: TraceContext) -> Vec<Response> {
        let pending: Vec<_> = (0..self.senders.len())
            .map(|p| self.dispatch(p as u16, inner.clone(), trace))
            .collect();
        pending
            .into_iter()
            .map(|rx| rx.recv().unwrap_or(Response::Error(WireError::Overloaded)))
            .collect()
    }

    fn join(self) {
        drop(self.senders);
        for j in self.joins {
            let _ = j.join();
        }
    }
}

/// Merge per-partition stats into the cluster view the router reports:
/// traffic counters sum; campaign state is replicated so the max is the
/// truth; latency percentiles report the worst partition.
fn merge_stats(replies: &[ServerStats]) -> ServerStats {
    let mut out = ServerStats::default();
    for s in replies {
        out.deltas += s.deltas;
        out.recommends += s.recommends;
        out.active_campaigns = out.active_campaigns.max(s.active_campaigns);
        out.rpcs += s.rpcs;
        out.shed += s.shed;
        out.connections += s.connections;
        out.queue_capacity += s.queue_capacity;
        out.ingest_p50_ns = out.ingest_p50_ns.max(s.ingest_p50_ns);
        out.ingest_p99_ns = out.ingest_p99_ns.max(s.ingest_p99_ns);
        out.recommend_p50_ns = out.recommend_p50_ns.max(s.recommend_p50_ns);
        out.recommend_p99_ns = out.recommend_p99_ns.max(s.recommend_p99_ns);
        out.wal_records += s.wal_records;
        out.wal_bytes += s.wal_bytes;
        out.wal_fsyncs += s.wal_fsyncs;
        out.snapshots_written += s.snapshots_written;
        out.recovered_records += s.recovered_records;
        out.recovered_truncated_bytes += s.recovered_truncated_bytes;
    }
    out
}

/// A running router; like the node server, send `Shutdown` (or call
/// [`Router::shutdown`]) then [`Router::join`].
pub struct Router {
    addr: SocketAddr,
    shared: Arc<RouterShared>,
    accept_join: Option<JoinHandle<()>>,
}

impl Router {
    /// Bind `addr` and start routing for `map` on background threads.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] on bind or thread-spawn failures.
    pub fn start(addr: &str, map: &PartitionMap, config: RouterConfig) -> Result<Router, NetError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let obs = RouterObs::resolve();
        obs.partitions.set(map.len() as i64);
        let partitions = map
            .iter()
            .map(|(_, nodes)| {
                Mutex::new(PartitionRuntime {
                    epoch: 0,
                    primary: nodes.primary.clone(),
                    follower: nodes.follower.clone(),
                    generation: 0,
                })
            })
            .collect();
        let shared = Arc::new(RouterShared {
            shutdown: AtomicBool::new(false),
            partitions,
            broadcast: Mutex::new(()),
            config,
            obs,
            trace_ordinal: AtomicU64::new(0),
        });
        let accept_join = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("adcast-router".into())
                .spawn(move || accept_loop(&listener, &shared))?
        };
        Ok(Router {
            addr: local,
            shared,
            accept_join: Some(accept_join),
        })
    }

    /// The bound address (real port even when started on port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Trigger shutdown of the router itself (the nodes keep serving;
    /// a client-sent `Shutdown` stops nodes *and* router).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    /// Block until the accept loop and every connection have exited.
    pub fn join(mut self) {
        if let Some(j) = self.accept_join.take() {
            let _ = j.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    let poll = shared.config.poll_interval;
    let nonblocking = listener.set_nonblocking(true).is_ok();
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                shared.obs.connections_total.inc();
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(poll));
                let shared = Arc::clone(shared);
                if let Ok(join) = std::thread::Builder::new()
                    .name("adcast-route-conn".into())
                    .spawn(move || connection_loop(stream, &shared))
                {
                    conns.push(join);
                }
                conns.retain(|j| !j.is_finished());
            }
            Err(e) if nonblocking && e.kind() == io::ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                conns.retain(|j| !j.is_finished());
                std::thread::sleep(poll);
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    for j in conns {
        let _ = j.join();
    }
}

fn connection_loop(mut stream: TcpStream, shared: &Arc<RouterShared>) {
    let pool = Pool::spawn(shared);
    loop {
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) => break,
            Err(NetError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        };
        let (id, req) = match decode_request(body) {
            Ok(pair) => pair,
            Err(e) => {
                let resp = Response::Error(WireError::BadRequest(e.to_string()));
                let _ = write_frame(&mut stream, &encode_response(0, &resp));
                break;
            }
        };
        let is_shutdown = matches!(req, Request::Shutdown);
        let resp = route_one(shared, &pool, req);
        if write_frame(&mut stream, &encode_response(id, &resp)).is_err() {
            break;
        }
        if is_shutdown {
            shared.shutdown.store(true, Ordering::SeqCst);
            break;
        }
    }
    pool.join();
}

/// The partition a single-target request belongs to, or `None` for
/// broadcast/refused kinds.
fn route_one(shared: &Arc<RouterShared>, pool: &Pool, req: Request) -> Response {
    let num_partitions = shared.partitions.len();
    // One sampling decision per client RPC, taken before any fan-out, so
    // every partition leg of this request shares one trace id.
    let trace = match &req {
        Request::Routed { .. }
        | Request::ReplAppend { .. }
        | Request::InstallSnapshot { .. }
        | Request::Promote { .. }
        | Request::ClusterStatus => TraceContext::NONE,
        _ => shared.sample_trace(),
    };
    match req {
        Request::Ingest { deltas } => {
            // Split the batch by owning partition and fan out; the reply
            // arrives when the slowest partition acks.
            let mut parts: Vec<Vec<(UserId, FeedDelta)>> = vec![Vec::new(); num_partitions];
            for (user, delta) in deltas {
                parts[user.index() % num_partitions].push((user, delta));
            }
            let pending: Vec<_> = parts
                .into_iter()
                .enumerate()
                .filter(|(_, sub)| !sub.is_empty())
                .map(|(p, sub)| pool.dispatch(p as u16, Request::Ingest { deltas: sub }, trace))
                .collect();
            let mut accepted = 0u32;
            for rx in pending {
                match rx.recv() {
                    Ok(Response::Ingested { accepted: n }) => accepted += n,
                    Ok(Response::Error(err)) => return Response::Error(err),
                    Ok(_) | Err(_) => return Response::Error(WireError::Overloaded),
                }
            }
            Response::Ingested { accepted }
        }
        Request::Recommend { user, .. } => {
            let partition = (user.index() % num_partitions) as u16;
            let rx = pool.dispatch(partition, req, trace);
            rx.recv().unwrap_or(Response::Error(WireError::Overloaded))
        }
        Request::SubmitCampaign(_)
        | Request::PauseCampaign { .. }
        | Request::Impression { .. }
        | Request::Maintain { .. }
        | Request::Checkpoint
        | Request::ObsDump
        | Request::Stats
        | Request::Shutdown => broadcast(shared, pool, &req, trace),
        // The router is a gateway, not a cluster member: partition-
        // addressed envelopes and replication RPCs stop here.
        Request::Routed { .. } => Response::Error(WireError::BadRequest(
            "router does not accept pre-routed frames".into(),
        )),
        Request::ReplAppend { .. } | Request::InstallSnapshot { .. } | Request::Promote { .. } => {
            Response::Error(WireError::BadRequest(
                "replication RPCs go directly to nodes, not through the router".into(),
            ))
        }
        Request::ClusterStatus => Response::Error(WireError::BadRequest(
            "the router has no cluster status; ask a node".into(),
        )),
    }
}

/// Broadcast a control RPC to every partition under the global broadcast
/// lock (identical delivery order on every partition — replayed campaign
/// ids match), then merge the per-partition replies.
fn broadcast(
    shared: &Arc<RouterShared>,
    pool: &Pool,
    req: &Request,
    trace: TraceContext,
) -> Response {
    let started = now_ns();
    let guard = shared.broadcast.lock();
    let replies = pool.broadcast(req, trace);
    drop(guard);
    shared.obs.broadcasts_total.inc();
    shared
        .obs
        .broadcast_ns
        .record(now_ns().saturating_sub(started));
    merge_broadcast(req, replies)
}

fn merge_broadcast(req: &Request, replies: Vec<Response>) -> Response {
    // Any typed error wins over a merged success: broadcast mutations
    // are all-or-error so partitions cannot silently diverge.
    if let Some(err) = replies.iter().find_map(|r| match r {
        Response::Error(e) => Some(e.clone()),
        _ => None,
    }) {
        return Response::Error(err);
    }
    match req {
        Request::SubmitCampaign(_) => {
            let mut ids = replies.iter().filter_map(|r| match r {
                Response::CampaignAccepted { ad } => Some(*ad),
                _ => None,
            });
            match ids.next() {
                Some(first) if ids.all(|ad| ad == first) => {
                    Response::CampaignAccepted { ad: first }
                }
                // Divergent ids mean the partitions saw different
                // submission histories — surface loudly.
                _ => Response::Error(WireError::Unavailable),
            }
        }
        Request::PauseCampaign { ad } => Response::CampaignPaused { ad: *ad },
        Request::Impression { ad, .. } => Response::ImpressionRecorded {
            ad: *ad,
            exhausted: replies.iter().any(|r| {
                matches!(
                    r,
                    Response::ImpressionRecorded {
                        exhausted: true,
                        ..
                    }
                )
            }),
        },
        Request::Maintain { .. } => {
            let (mut scanned, mut decayed, mut pruned) = (0u64, 0u64, 0u64);
            for r in &replies {
                if let Response::Maintained {
                    scanned: s,
                    decayed: d,
                    pruned: p,
                } = r
                {
                    scanned += s;
                    decayed += d;
                    pruned += p;
                }
            }
            Response::Maintained {
                scanned,
                decayed,
                pruned,
            }
        }
        Request::Checkpoint => Response::Checkpointed {
            lsn: replies
                .iter()
                .filter_map(|r| match r {
                    Response::Checkpointed { lsn } => Some(*lsn),
                    _ => None,
                })
                .max()
                .unwrap_or(0),
        },
        Request::ObsDump => Response::ObsDumped {
            events: replies
                .iter()
                .filter_map(|r| match r {
                    Response::ObsDumped { events } => Some(*events),
                    _ => None,
                })
                .sum(),
        },
        Request::Stats => {
            let stats: Vec<ServerStats> = replies
                .into_iter()
                .filter_map(|r| match r {
                    Response::Stats(s) => Some(s),
                    _ => None,
                })
                .collect();
            Response::Stats(merge_stats(&stats))
        }
        Request::Shutdown => Response::ShutdownAck,
        // Broadcast is only called for the kinds above.
        _ => Response::Error(WireError::Unavailable),
    }
}
