//! Plain-data snapshots of incremental engine state.
//!
//! These structs capture everything a [`crate::engine::IncrementalEngine`]
//! needs to resume serving *bit-identically* after a restart: the
//! forward-decayed context (landmark + raw accumulator), the exact
//! candidate buffer, the drift-high score cache, both certification
//! bounds, and the index epoch the buffer was last certified against.
//!
//! They are deliberately dumb data — serialization lives in
//! `adcast-durability`, which encodes them with the same length-prefixed,
//! CRC-checked framing as the WAL. Buffer and cache entries are exported
//! sorted by ad id so the encoded form is deterministic (HashMap iteration
//! order is not).

use adcast_ads::AdId;
use adcast_stream::clock::Timestamp;
use adcast_text::SparseVector;

use crate::engine::EngineStats;

/// One user's incremental state, ready for serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct UserStateSnapshot {
    /// Forward-decay landmark of the context accumulator.
    pub landmark: Timestamp,
    /// Timestamp of the newest message folded into the context.
    pub last_ts: Timestamp,
    /// The raw (forward-scale) context accumulator.
    pub context: SparseVector,
    /// Exact buffered `(ad, forward relevance)` pairs, sorted by ad id.
    pub buffer: Vec<(AdId, f32)>,
    /// Cached `(ad, drift-high bound)` pairs, sorted by ad id.
    pub cache: Vec<(AdId, f32)>,
    /// Upper bound covering every cached ad.
    pub ceiling: f32,
    /// Upper bound covering every ad neither buffered nor cached.
    pub outside_bound: f32,
    /// Store index epoch the buffer was last certified against.
    pub index_epoch: u64,
}

/// One engine's full state: every user plus the work counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSnapshot {
    /// Per-user state in user order.
    pub users: Vec<UserStateSnapshot>,
    /// Cumulative work counters at the snapshot cut.
    pub stats: EngineStats,
}
