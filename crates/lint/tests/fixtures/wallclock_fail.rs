//! Fixture: raw wall-clock reads on a simulation-virtualized path.

use std::time::{Instant, SystemTime};

pub fn stamp_request() -> u64 {
    let started = Instant::now();
    let _wall = SystemTime::now();
    started.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use std::time::Instant;

    #[test]
    fn tests_may_read_the_wall_clock() {
        let _t = Instant::now();
    }
}
