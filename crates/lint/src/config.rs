//! Which rules apply to which files.
//!
//! Paths are workspace-relative with forward slashes. The sets are narrow on
//! purpose: a rule that fires on code with legitimate uses of a pattern
//! breeds suppressions, and suppression creep is exactly what this tool
//! exists to prevent (`perf_summary` graphs the suppression count per PR).

/// Hot-path modules: the blocked ad index and its evaluators, the engine
/// steady state, the net server loop and codec, the durability
/// commit/replay paths, the cluster router forwarding and replication
/// apply paths (every routed RPC and every replicated record crosses
/// them), and the obs record paths (metric handles and the
/// flight-recorder ring run inside all of the former).
/// `no-panic-hot-path` bans `unwrap`/`expect`/`panic!`-family macros here.
pub const HOT_PATH_FILES: &[&str] = &[
    "crates/adstore/src/index.rs",
    "crates/cluster/src/router.rs",
    "crates/core/src/engine/blockmax.rs",
    "crates/core/src/engine/incremental.rs",
    "crates/core/src/engine/index_scan.rs",
    "crates/net/src/server.rs",
    "crates/net/src/replication.rs",
    "crates/textproc/src/kernels.rs",
    "crates/net/src/codec.rs",
    "crates/durability/src/wal.rs",
    "crates/durability/src/apply.rs",
    "crates/durability/src/recovery.rs",
    "crates/durability/src/manager.rs",
    "crates/obs/src/metrics.rs",
    "crates/obs/src/flightrec.rs",
    "crates/obs/src/tracestore.rs",
];

/// Subset of the hot set where bare slice indexing (`x[i]`) is also banned
/// in favour of `.get()`. The engine kernel and codec index scratch buffers
/// with loop-invariant bounds everywhere, so they are exempt; the control
/// paths below have no legitimate reason to index.
pub const INDEX_CHECKED_FILES: &[&str] = &[
    "crates/net/src/server.rs",
    "crates/durability/src/apply.rs",
    "crates/durability/src/recovery.rs",
    "crates/durability/src/manager.rs",
    "crates/durability/src/wal.rs",
];

/// Crates whose public fallible APIs must return their typed error, never
/// `io::Error`/`io::Result` directly, and whose error enums must be
/// `#[non_exhaustive]`.
pub const ERROR_HYGIENE_PREFIXES: &[&str] = &["crates/net/src/", "crates/durability/src/"];

/// Files where mutation handlers must order WAL commit before store apply.
pub const WAL_ORDERING_FILES: &[&str] = &["crates/net/src/server.rs"];

/// Obs record paths: metric handles and the flight-recorder ring are called
/// from every serving thread, including inside the zero-alloc engine kernel,
/// so `no-lock-in-record` bans lock types and `.lock()` calls here. The
/// registry (register/expose only — both off the hot path) is deliberately
/// not in this set.
pub const NO_LOCK_FILES: &[&str] = &[
    "crates/obs/src/metrics.rs",
    "crates/obs/src/flightrec.rs",
    "crates/obs/src/tracestore.rs",
];

/// Crates whose non-test code must read time through
/// `adcast_stream::clock::now_ns()` rather than `Instant::now()` /
/// `SystemTime::now()`. These are the crates the simulation harness runs
/// under virtual time; a raw wall-clock read there is invisible to the
/// simulator and breaks same-seed reproducibility. The clock seam itself
/// (`crates/stream/src/clock.rs`) and the obs/bench crates (measurement
/// machinery, never simulated) are deliberately outside this set.
pub const NO_WALLCLOCK_PREFIXES: &[&str] = &[
    "crates/cluster/src/",
    "crates/core/src/",
    "crates/durability/src/",
    "crates/net/src/",
];

/// Where the wire protocol's `Request`/`Response` enums are declared; the
/// single source of truth `rpc-exhaustive` diffs every site against.
pub const PROTOCOL_FILE: &str = "crates/net/src/protocol.rs";

/// One place where every protocol variant must be handled.
pub struct RpcSite {
    /// Workspace-relative file holding the site.
    pub file: &'static str,
    /// Function whose body must mention every variant (same-named fns in
    /// one file are merged, so impl methods need no qualification).
    pub func: &'static str,
    /// `"Request"` or `"Response"`.
    pub enum_name: &'static str,
    /// Short human name used in diagnostics.
    pub role: &'static str,
    /// Variants this site never sees **by design**. Each entry is checked
    /// the other way too: an excepted variant that the site does handle
    /// is a stale exemption and diagnosed.
    pub except: &'static [&'static str],
}

/// Every conformance site for `rpc-exhaustive`. The router's broadcast
/// merge table legitimately skips the kinds that never cross the router:
/// cluster RPCs (`ReplAck`, `SnapshotInstalled`, `Promoted`,
/// `ClusterStatusReply`) are dialed node-direct and refused by
/// `route_one`; `Ingested` merges in `route_one`'s scatter-gather, not in
/// the broadcast path; `Recommendations` pass through the router opaquely.
pub const RPC_SITES: &[RpcSite] = &[
    RpcSite {
        file: "crates/net/src/codec.rs",
        func: "put_request",
        enum_name: "Request",
        role: "codec encode",
        except: &[],
    },
    RpcSite {
        // `decode_request` delegates to `take_request` (the seam that caps
        // `Routed` nesting at one); the variants are constructed there.
        file: "crates/net/src/codec.rs",
        func: "take_request",
        enum_name: "Request",
        role: "codec decode",
        except: &[],
    },
    RpcSite {
        file: "crates/net/src/codec.rs",
        func: "encode_response",
        enum_name: "Response",
        role: "codec encode",
        except: &[],
    },
    RpcSite {
        file: "crates/net/src/codec.rs",
        func: "decode_response",
        enum_name: "Response",
        role: "codec decode",
        except: &[],
    },
    RpcSite {
        file: "crates/net/src/server.rs",
        func: "serve_one",
        enum_name: "Request",
        role: "server dispatch",
        except: &[],
    },
    RpcSite {
        file: "crates/net/src/server.rs",
        func: "req_kind_code",
        enum_name: "Request",
        role: "flight-recorder kind table",
        except: &[],
    },
    RpcSite {
        file: "crates/cluster/src/router.rs",
        func: "route_one",
        enum_name: "Request",
        role: "router forward table",
        except: &[],
    },
    RpcSite {
        file: "crates/cluster/src/router.rs",
        func: "merge_broadcast",
        enum_name: "Response",
        role: "router broadcast merge table",
        except: &[
            "Ingested",
            "Recommendations",
            "ReplAck",
            "SnapshotInstalled",
            "Promoted",
            "ClusterStatusReply",
        ],
    },
];

/// One trace-context plumbing site for `trace-propagation`: within the
/// named fn's body, every token in `must_mention` has to appear. The
/// tokens anchor the plumbing a site is responsible for (encoding the
/// envelope, deriving a child context, capturing the wire context), so a
/// refactor that drops the context on the floor — forwarding a request
/// without its trace, shipping a batch with `TraceContext::NONE` — is a
/// diagnostic, not a silent hole in every cross-node trace.
pub struct TraceSite {
    pub file: &'static str,
    pub func: &'static str,
    pub must_mention: &'static [&'static str],
    /// The invariant in words, for diagnostics.
    pub doc: &'static str,
}

/// Every trace-propagation site. The codec entries pin the v6 trace
/// envelope itself (16 bytes after the epoch in `Routed`/`ReplAppend`);
/// the router/server/replication entries pin the handoff at each process
/// boundary of the routed ack ladder (DESIGN §15).
pub const TRACE_SITES: &[TraceSite] = &[
    TraceSite {
        file: "crates/net/src/codec.rs",
        func: "put_request",
        must_mention: &["put_trace"],
        doc: "request encode writes the 16-byte trace envelope after the epoch",
    },
    TraceSite {
        file: "crates/net/src/codec.rs",
        func: "take_request",
        must_mention: &["get_trace"],
        doc: "request decode reads the trace envelope back off the wire",
    },
    TraceSite {
        file: "crates/cluster/src/router.rs",
        func: "forward",
        must_mention: &["trace", "child"],
        doc: "router forwarding derives a child context and puts it in the Routed envelope",
    },
    TraceSite {
        file: "crates/net/src/server.rs",
        func: "serve_one",
        must_mention: &["cur_trace"],
        doc: "server dispatch captures the wire context before handling the request",
    },
    TraceSite {
        file: "crates/net/src/server.rs",
        func: "replicate",
        must_mention: &["trace", "child"],
        doc: "primary->follower shipment carries a child of the request's context",
    },
];

/// A token-order state machine for `ack-ladder`: within the named fn's
/// body, the first occurrences of the anchor tokens must appear in `steps`
/// order, and a later step may not appear without every earlier one.
pub struct Ladder {
    pub file: &'static str,
    pub func: &'static str,
    pub steps: &'static [&'static str],
    /// The invariant in words, for diagnostics.
    pub doc: &'static str,
}

/// The replication-path ladders. The client-facing ack is structural (the
/// dispatch arm's reply is sent only after `log_apply` returns), so the
/// ladders pin everything up to it: primary WAL order, the follower's
/// durable-commit-before-ack, and the follower apply order.
pub const ACK_LADDERS: &[Ladder] = &[
    Ladder {
        file: "crates/net/src/server.rs",
        func: "log_apply",
        steps: &["log", "commit", "apply_record", "replicate"],
        doc: "primary mutations go WAL log -> commit -> apply -> replicate",
    },
    Ladder {
        file: "crates/net/src/server.rs",
        func: "serve_one",
        steps: &["replica_append", "ReplAck"],
        doc: "a follower acks (`ReplAck`) only after `replica_append` made the batch durable",
    },
    Ladder {
        file: "crates/net/src/replication.rs",
        func: "replica_append",
        steps: &["log", "commit", "apply_record"],
        doc: "the follower logs and commits the whole batch before applying it",
    },
];

/// Crates whose code runs on serving threads: `lock-discipline` (no
/// blocking calls or undeclared nested locks while a guard is live) and
/// `bounded-channel` (no unbounded `mpsc::channel()`) apply here. The
/// durability persister and obs/bench machinery are deliberately outside:
/// the former owns its fsync latency, the latter never serves.
pub const SERVING_PREFIXES: &[&str] =
    &["crates/net/src/", "crates/cluster/src/", "crates/core/src/"];

/// Calls that can block the thread; banned while a lock guard is live.
/// `send` on a `sync_channel` can block too but is deliberately absent:
/// the bounded-channel conversions size every queue so protocol-bounded
/// sends never fill it, and banning `send` would outlaw the reply-channel
/// idiom wholesale.
pub const BLOCKING_IN_LOCK: &[&str] = &[
    "read",
    "write",
    "read_frame",
    "write_frame",
    "recv",
    "recv_timeout",
    "recv_deadline",
    "accept",
    "connect",
    "join",
    "sync_all",
    "sync_data",
    "flush",
    "sleep",
    "park",
    "wait",
    "wait_timeout",
];

/// Declared lock order: acquiring the second lock while holding a guard
/// on the first is sanctioned. Seeded with the router's design: the
/// global broadcast lock is taken first, then the forwarders take
/// per-partition locks underneath it (deterministic broadcast delivery
/// order requires exactly this nesting).
pub const LOCK_ORDER: &[(&str, &str)] = &[("broadcast", "partitions")];

/// Directory names skipped entirely when walking the workspace.
pub const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "results", "fixtures"];

pub fn is_hot_path(rel: &str) -> bool {
    HOT_PATH_FILES.contains(&rel)
}

pub fn is_index_checked(rel: &str) -> bool {
    INDEX_CHECKED_FILES.contains(&rel)
}

pub fn wants_error_hygiene(rel: &str) -> bool {
    ERROR_HYGIENE_PREFIXES.iter().any(|p| rel.starts_with(p))
}

pub fn wants_wal_ordering(rel: &str) -> bool {
    WAL_ORDERING_FILES.contains(&rel)
}

pub fn wants_no_lock(rel: &str) -> bool {
    NO_LOCK_FILES.contains(&rel)
}

pub fn wants_no_wallclock(rel: &str) -> bool {
    NO_WALLCLOCK_PREFIXES.iter().any(|p| rel.starts_with(p))
}

pub fn is_serving(rel: &str) -> bool {
    SERVING_PREFIXES.iter().any(|p| rel.starts_with(p))
}

/// Is holding `held` while acquiring `acquired` a declared order?
pub fn lock_order_allows(held: &str, acquired: &str) -> bool {
    LOCK_ORDER.iter().any(|&(h, a)| h == held && a == acquired)
}
