//! Sharded multi-threaded driver (the E10 scalability experiment).
//!
//! Users are partitioned across shards by id; each shard owns a private
//! engine instance, so no engine state is ever shared between threads —
//! the only shared structure is the read-only [`AdStore`] borrow. Feed
//! deltas are fanned to shards over crossbeam channels and processed by a
//! scoped worker per shard.
//!
//! This mirrors how a production deployment scales the algorithm: the
//! per-user state is embarrassingly partitionable, and the ad index is
//! read-mostly (campaign churn is orders of magnitude rarer than feed
//! updates and is applied between processing waves).

use adcast_ads::AdStore;
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::LocationId;
use crossbeam::channel;

use crate::config::EngineConfig;
use crate::engine::{EngineStats, IncrementalEngine, Recommendation, RecommendationEngine};

/// A sharded pool of incremental engines.
pub struct ShardedDriver {
    shards: Vec<IncrementalEngine>,
    num_users: u32,
}

impl ShardedDriver {
    /// Create `num_shards` engines over `num_users` users.
    ///
    /// # Panics
    ///
    /// Panics when `num_shards == 0` or the configuration is invalid.
    pub fn new(num_users: u32, num_shards: usize, config: EngineConfig) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        // Each shard allocates state for all user ids (simple and uniform);
        // only its residents are ever touched, so the overhead is one
        // empty context per foreign user.
        let shards =
            (0..num_shards).map(|_| IncrementalEngine::new(num_users, config.clone())).collect();
        ShardedDriver { shards, num_users }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `user`.
    pub fn shard_of(&self, user: UserId) -> usize {
        user.index() % self.shards.len()
    }

    /// Process a batch of feed deltas in parallel across shards.
    /// Returns when every delta has been applied.
    pub fn process_batch(&mut self, store: &AdStore, deltas: Vec<(UserId, FeedDelta)>) {
        let num_shards = self.shards.len();
        if num_shards == 1 {
            let engine = &mut self.shards[0];
            for (user, delta) in &deltas {
                engine.on_feed_delta(store, *user, delta);
            }
            return;
        }
        let mut senders = Vec::with_capacity(num_shards);
        let mut receivers = Vec::with_capacity(num_shards);
        for _ in 0..num_shards {
            let (tx, rx) = channel::unbounded::<(UserId, FeedDelta)>();
            senders.push(tx);
            receivers.push(rx);
        }
        for (user, delta) in deltas {
            let shard = user.index() % num_shards;
            senders[shard].send((user, delta)).expect("receiver alive");
        }
        drop(senders);
        std::thread::scope(|scope| {
            for (engine, rx) in self.shards.iter_mut().zip(receivers) {
                scope.spawn(move || {
                    for (user, delta) in rx {
                        engine.on_feed_delta(store, user, &delta);
                    }
                });
            }
        });
    }

    /// Serve a recommendation from the owning shard.
    pub fn recommend(
        &mut self,
        store: &AdStore,
        user: UserId,
        now: Timestamp,
        location: LocationId,
        k: usize,
    ) -> Vec<Recommendation> {
        let shard = self.shard_of(user);
        self.shards[shard].recommend(store, user, now, location, k)
    }

    /// Aggregate work counters across shards.
    pub fn stats(&self) -> EngineStats {
        let mut total = EngineStats::default();
        for s in &self.shards {
            let st = s.stats();
            total.deltas += st.deltas;
            total.postings_scanned += st.postings_scanned;
            total.ads_scored += st.ads_scored;
            total.screened_out += st.screened_out;
            total.promotions += st.promotions;
            total.refreshes += st.refreshes;
            total.fallbacks += st.fallbacks;
            total.recommends += st.recommends;
            total.rebases += st.rebases;
        }
        total
    }

    /// Total users.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Approximate resident bytes across shards.
    pub fn memory_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcast_ads::{AdSubmission, Budget, Targeting};
    use adcast_stream::event::{Message, MessageId};
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;
    use std::sync::Arc;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    fn store() -> AdStore {
        let mut s = AdStore::new();
        for t in 0..8u32 {
            s.submit(AdSubmission {
                vector: v(&[(t, 1.0)]),
                bid: 1.0,
                targeting: Targeting::everywhere(),
                budget: Budget::unlimited(),
                topic_hint: None,
            })
            .unwrap();
        }
        s
    }

    fn deltas(n: u64, users: u32) -> Vec<(UserId, FeedDelta)> {
        (0..n)
            .map(|i| {
                let user = UserId((i % users as u64) as u32);
                let msg = Arc::new(Message {
                    id: MessageId(i),
                    author: UserId(0),
                    ts: Timestamp::from_secs(i),
                    location: LocationId(0),
                    vector: v(&[((i % 8) as u32, 1.0)]),
                });
                (user, FeedDelta { entered: Some(msg), evicted: vec![] })
            })
            .collect()
    }

    fn cfg() -> EngineConfig {
        EngineConfig { k: 2, half_life: None, ..Default::default() }
    }

    #[test]
    fn single_shard_matches_direct_engine() {
        let s = store();
        let mut driver = ShardedDriver::new(4, 1, cfg());
        let mut direct = IncrementalEngine::new(4, cfg());
        let batch = deltas(40, 4);
        for (u, d) in &batch {
            direct.on_feed_delta(&s, *u, d);
        }
        driver.process_batch(&s, batch);
        for u in 0..4u32 {
            let now = Timestamp::from_secs(100);
            let a = driver.recommend(&s, UserId(u), now, LocationId(0), 2);
            let b = direct.recommend(&s, UserId(u), now, LocationId(0), 2);
            assert_eq!(
                a.iter().map(|r| r.ad).collect::<Vec<_>>(),
                b.iter().map(|r| r.ad).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn multi_shard_matches_single_shard() {
        let s = store();
        let mut one = ShardedDriver::new(8, 1, cfg());
        let mut four = ShardedDriver::new(8, 4, cfg());
        let batch = deltas(80, 8);
        one.process_batch(&s, batch.clone());
        four.process_batch(&s, batch);
        let now = Timestamp::from_secs(100);
        for u in 0..8u32 {
            let a = one.recommend(&s, UserId(u), now, LocationId(0), 2);
            let b = four.recommend(&s, UserId(u), now, LocationId(0), 2);
            assert_eq!(
                a.iter().map(|r| r.ad).collect::<Vec<_>>(),
                b.iter().map(|r| r.ad).collect::<Vec<_>>(),
                "user {u}"
            );
        }
        assert_eq!(one.stats().deltas, four.stats().deltas);
    }

    #[test]
    fn shard_routing_is_stable() {
        let driver = ShardedDriver::new(16, 4, cfg());
        for u in 0..16u32 {
            assert_eq!(driver.shard_of(UserId(u)), (u % 4) as usize);
        }
        assert_eq!(driver.num_shards(), 4);
        assert_eq!(driver.num_users(), 16);
        assert!(driver.memory_bytes() > 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let s = store();
        let mut driver = ShardedDriver::new(4, 2, cfg());
        driver.process_batch(&s, vec![]);
        assert_eq!(driver.stats().deltas, 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedDriver::new(4, 0, cfg());
    }
}
