//! Scenario vocabulary: what a simulated day is made of.
//!
//! A [`SimConfig`] pins everything that shapes a run — workload seed and
//! size, engine topology, durability knobs, admission-model bounds,
//! maintenance cadence, and a fault script. Two runs from the same config
//! execute the same events in the same order against the same code paths
//! and must produce byte-identical transcripts; that equality is what the
//! determinism tests assert.

use adcast_core::EngineConfig;
use adcast_durability::{FsyncPolicy, WalOptions};
use adcast_net::synth::SynthConfig;
use adcast_stream::clock::Duration;

/// An injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The next fsync takes `ms` extra virtual milliseconds (a device
    /// hiccup). Surfaces in the WAL's fsync span histogram.
    FsyncStall {
        /// Extra latency, virtual milliseconds.
        ms: u64,
    },
    /// Power loss: the pending batch is logged but never committed, every
    /// file is torn back to its durability horizon, and the harness
    /// crash-recovers in place — then proves the recovered state is a
    /// bit-identical twin of a clean replay.
    Crash,
    /// A burst of phantom load competing for the bounded admission queue:
    /// `arrivals` extra requests per step for `steps` steps. Overflow
    /// beyond the queue bound is shed (the server's `Overloaded` path).
    ShedStorm {
        /// Extra arrivals per step.
        arrivals: u64,
        /// Steps the storm lasts.
        steps: u64,
    },
}

/// A fault pinned to a position in the batch stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultAt {
    /// Fires just before this ingest batch (0-based).
    pub at_batch: usize,
    /// What happens.
    pub fault: Fault,
}

/// Everything that shapes one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Workload shape (users, campaigns, messages, batching, seed).
    pub synth: SynthConfig,
    /// Engine shards.
    pub num_shards: usize,
    /// Engine knobs (k, window, decay, refresh policy…).
    pub engine: EngineConfig,
    /// WAL knobs. Crash scenarios want [`FsyncPolicy::Always`]; anything
    /// weaker widens the acked-but-lost window (which the harness also
    /// models faithfully: acked records beyond the recovered tip count as
    /// `lost_acked`).
    pub wal: WalOptions,
    /// Background snapshot cadence in WAL records (0 = checkpoint only).
    pub snapshot_every: u64,
    /// Snapshots retained by pruning (also bounds live WAL segments).
    pub keep_snapshots: usize,
    /// Virtual cost of one fsync, nanoseconds.
    pub fsync_latency_ns: u64,
    /// Serve a recommendation wave every this many batches (0 = never).
    pub recommend_every: usize,
    /// Users served per wave.
    pub wave_users: usize,
    /// Impression cost charged for each wave's top pick.
    pub impression_cost: f64,
    /// Every Nth campaign gets a pacing flight attached (0 = none).
    pub paced_every: usize,
    /// Pacing flight length, seconds of virtual time from the epoch.
    pub flight_secs: u64,
    /// Pacing flight budget.
    pub flight_budget: f64,
    /// Run a maintenance pass once virtual time advances this far past
    /// the previous pass ([`Duration::ZERO`] = never).
    pub maintenance_every: Duration,
    /// Maintenance resets users idle at least this long.
    pub idle_for: Duration,
    /// Admission queue bound (mirrors the server's bounded request
    /// queue; overflow is shed).
    pub queue_depth: u64,
    /// Requests drained from the admission queue per batch step.
    pub drain_per_step: u64,
    /// The fault script, in firing order.
    pub faults: Vec<FaultAt>,
}

impl SimConfig {
    /// A seconds-scale scenario: small workload, frequent snapshots,
    /// maintenance and pacing cadences matched to the workload's ~6
    /// virtual seconds (the generator posts ~200 messages/s), no faults
    /// (add your own).
    #[must_use]
    pub fn smoke(seed: u64) -> SimConfig {
        SimConfig {
            synth: SynthConfig {
                num_users: 400,
                num_ads: 120,
                messages: 1_200,
                batch_size: 200,
                msgs_per_sec: 200.0,
                seed,
            },
            num_shards: 2,
            engine: EngineConfig::default(),
            wal: WalOptions {
                fsync: FsyncPolicy::Always,
                segment_bytes: 256 << 10,
            },
            snapshot_every: 40,
            keep_snapshots: 2,
            fsync_latency_ns: 100_000,
            recommend_every: 4,
            wave_users: 8,
            impression_cost: 0.05,
            paced_every: 8,
            flight_secs: 3,
            flight_budget: 2.0,
            maintenance_every: Duration::from_secs(1),
            idle_for: Duration::from_secs(2),
            queue_depth: 64,
            drain_per_step: 4,
            faults: Vec::new(),
        }
    }
}
