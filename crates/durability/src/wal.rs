//! Segmented, CRC-checked write-ahead log.
//!
//! On-disk layout. Each segment file `wal-{base_lsn:016x}.log` is:
//!
//! ```text
//! header:  magic "ADWL" | version u16 | reserved u16 | base_lsn u64
//! record:  len u32 | crc32 u32 | payload
//! payload: lsn u64 | record bytes        (crc covers the payload)
//! ```
//!
//! LSNs are assigned sequentially, one per record, so record `i` of a
//! segment always carries `base_lsn + i` — a cheap integrity check on
//! top of the CRC.
//!
//! Durability contract: [`WalWriter::append`] only buffers;
//! [`WalWriter::commit`] flushes and applies the [`FsyncPolicy`] — the
//! server appends every record of one RPC group and commits once before
//! acking, so one fsync covers the whole group (group commit). Rotation
//! happens at commit boundaries and always fsyncs the outgoing segment,
//! which preserves the recovery invariant that *only the final segment
//! may be torn*: a short or corrupt record there is truncated; the same
//! damage in an earlier segment is a hard [`WalError::Corrupt`].

use std::fs::{self, File};
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use adcast_stream::clock::now_ns;
use adcast_stream::trace::{check_stream_header, put_stream_header, TraceError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::backend::{fs_backend, StorageBackend, StorageFile};
use crate::crc::crc32;
use crate::record::WalRecord;

/// Per-segment magic (traces use `ADCT`, wire frames `ADCN`,
/// snapshots `ADSS`).
pub const WAL_MAGIC: &[u8; 4] = b"ADWL";
/// WAL format version.
pub const WAL_VERSION: u16 = 1;
/// Bytes of segment header before the first record.
pub const SEGMENT_HEADER: u64 = 8 + 8;
/// Upper bound on one record payload; larger declared lengths are
/// rejected before allocation, mirroring the wire codec's `MAX_FRAME`.
pub const MAX_RECORD: usize = 64 << 20;

/// When to fsync committed records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// fsync on every commit: an acked write survives `kill -9`.
    Always,
    /// fsync every N commits: bounded loss window, much cheaper.
    EveryN(u32),
    /// Never fsync (the OS flushes when it pleases): benchmark floor and
    /// "I trust the page cache" deployments.
    Off,
}

impl FsyncPolicy {
    /// Parse a CLI spelling: `always`, `off`, or `every=N`.
    ///
    /// # Errors
    ///
    /// A description of the accepted forms.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "off" => Ok(FsyncPolicy::Off),
            _ => match s.strip_prefix("every=").map(str::parse::<u32>) {
                Some(Ok(n)) if n > 0 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!(
                    "bad fsync policy {s:?}: expected always, off, or every=N"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::EveryN(n) => write!(f, "every={n}"),
            FsyncPolicy::Off => write!(f, "off"),
        }
    }
}

/// Writer knobs.
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Commit durability policy.
    pub fsync: FsyncPolicy,
    /// Rotate to a new segment once the current one exceeds this size.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 16 << 20,
        }
    }
}

/// WAL failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum WalError {
    /// Filesystem failure.
    Io(io::Error),
    /// A segment header failed validation (bad magic/version).
    Header(TraceError),
    /// Damage outside the final segment (or in its header), where
    /// truncation would silently drop durable records.
    Corrupt {
        /// Base LSN of the damaged segment.
        segment: u64,
        /// Byte offset of the damage within the segment file.
        offset: u64,
        /// What failed.
        what: &'static str,
    },
    /// An append was refused because the encoded record would exceed
    /// [`MAX_RECORD`] and could never be read back.
    RecordTooLarge {
        /// Encoded payload length that was refused.
        len: usize,
    },
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal io: {e}"),
            WalError::Header(e) => write!(f, "wal segment header: {e}"),
            WalError::Corrupt {
                segment,
                offset,
                what,
            } => write!(
                f,
                "wal segment {segment:016x} corrupt at byte {offset}: {what}"
            ),
            WalError::RecordTooLarge { len } => write!(
                f,
                "wal record of {len} bytes exceeds the {MAX_RECORD}-byte limit"
            ),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// The file name of the segment whose first record is `base_lsn`.
pub fn segment_file_name(base_lsn: u64) -> String {
    format!("wal-{base_lsn:016x}.log")
}

/// Parse a segment file name back to its base LSN.
pub fn parse_segment_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// One segment on disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInfo {
    /// LSN of the segment's first record.
    pub base_lsn: u64,
    /// Full path.
    pub path: PathBuf,
}

/// Enumerate WAL segments in `dir`, sorted by base LSN. A missing
/// directory is an empty list.
///
/// # Errors
///
/// [`WalError::Io`] on directory-read failures.
pub fn list_segments(dir: &Path) -> Result<Vec<SegmentInfo>, WalError> {
    Ok(list_segment_lsns_on(&*fs_backend(dir))?
        .into_iter()
        .map(|base_lsn| SegmentInfo {
            base_lsn,
            path: dir.join(segment_file_name(base_lsn)),
        })
        .collect())
}

/// Enumerate WAL segment base LSNs on `backend`, sorted ascending.
///
/// # Errors
///
/// [`WalError::Io`] on listing failures.
pub fn list_segment_lsns_on(backend: &dyn StorageBackend) -> Result<Vec<u64>, WalError> {
    let mut lsns: Vec<u64> = backend
        .list()?
        .iter()
        .filter_map(|name| parse_segment_name(name))
        .collect();
    lsns.sort_unstable();
    Ok(lsns)
}

/// The valid contents of one segment.
#[derive(Debug)]
pub struct SegmentRecords {
    /// `(lsn, payload)` pairs in log order; payloads are undecoded
    /// [`WalRecord`] bytes.
    pub records: Vec<(u64, Bytes)>,
    /// Bytes past the last valid record (0 unless the tail was torn).
    pub truncated_bytes: u64,
    /// Length of the valid prefix — truncate the file here to heal it.
    pub valid_len: u64,
}

/// Read and validate one segment.
///
/// In the **final** segment (`is_last`), the first short, oversized, or
/// CRC-failing record marks a torn tail: everything from there on is
/// reported as `truncated_bytes` and the records before it are returned.
/// Anywhere else the same damage is a [`WalError::Corrupt`] — those
/// records were fsynced and covered by later segments, so dropping them
/// silently would corrupt recovery.
///
/// # Errors
///
/// [`WalError::Header`] on a bad header, [`WalError::Corrupt`] as above,
/// [`WalError::Io`] on filesystem failures. Never panics, whatever the
/// file contains.
pub fn read_segment(
    path: &Path,
    expect_base: u64,
    is_last: bool,
) -> Result<SegmentRecords, WalError> {
    let mut raw = Vec::new();
    File::open(path)?.read_to_end(&mut raw)?;
    parse_segment(raw, expect_base, is_last)
}

/// [`read_segment`] against a [`StorageBackend`] (the segment's name is
/// derived from `expect_base`).
///
/// # Errors
///
/// As [`read_segment`].
pub fn read_segment_on(
    backend: &dyn StorageBackend,
    expect_base: u64,
    is_last: bool,
) -> Result<SegmentRecords, WalError> {
    parse_segment(
        backend.read(&segment_file_name(expect_base))?,
        expect_base,
        is_last,
    )
}

/// Validate raw segment bytes (the pure half of [`read_segment`]).
///
/// # Errors
///
/// As [`read_segment`].
pub fn parse_segment(
    raw: Vec<u8>,
    expect_base: u64,
    is_last: bool,
) -> Result<SegmentRecords, WalError> {
    let file_len = raw.len() as u64;
    let mut data = Bytes::from(raw);
    check_stream_header(&mut data, WAL_MAGIC, WAL_VERSION).map_err(WalError::Header)?;
    if data.remaining() < 8 {
        return Err(WalError::Header(TraceError::Truncated));
    }
    let base_lsn = data.get_u64_le();
    if base_lsn != expect_base {
        return Err(WalError::Corrupt {
            segment: expect_base,
            offset: 8,
            what: "segment base lsn does not match file name",
        });
    }

    let mut records = Vec::new();
    let mut valid_len = SEGMENT_HEADER;
    let mut next_lsn = base_lsn;
    let tear = |offset: u64, what: &'static str| {
        if is_last {
            Ok(())
        } else {
            Err(WalError::Corrupt {
                segment: expect_base,
                offset,
                what,
            })
        }
    };
    loop {
        if !data.has_remaining() {
            break;
        }
        if data.remaining() < 8 {
            tear(valid_len, "torn record prefix")?;
            break;
        }
        let len = data.get_u32_le() as usize;
        let crc = data.get_u32_le();
        if !(8..=MAX_RECORD).contains(&len) {
            tear(valid_len, "impossible record length")?;
            break;
        }
        if data.remaining() < len {
            tear(valid_len, "torn record body")?;
            break;
        }
        let mut payload = data.slice(..len);
        data.advance(len);
        if crc32(&payload) != crc {
            tear(valid_len, "crc mismatch")?;
            break;
        }
        let lsn = payload.get_u64_le();
        if lsn != next_lsn {
            tear(valid_len, "lsn out of sequence")?;
            break;
        }
        next_lsn += 1;
        records.push((lsn, payload));
        valid_len += 8 + len as u64;
    }
    Ok(SegmentRecords {
        records,
        truncated_bytes: file_len - valid_len,
        valid_len,
    })
}

/// The appending half of the log.
pub struct WalWriter {
    backend: Arc<dyn StorageBackend>,
    file: BufWriter<Box<dyn StorageFile>>,
    options: WalOptions,
    segment_base: u64,
    segment_written: u64,
    next_lsn: u64,
    commits_since_sync: u32,
    records: u64,
    bytes: u64,
    fsyncs: u64,
    /// Span timing: time inside `sync_data` per fsync.
    fsync_ns: adcast_obs::Hist,
    /// Span timing: segment rotation (final fsync + new segment) time.
    rotate_ns: adcast_obs::Hist,
}

impl WalWriter {
    /// Start a fresh segment whose first record will carry `next_lsn`.
    ///
    /// An existing file of the same name is truncated — that can only
    /// happen when the previous incarnation crashed before writing any
    /// durable record to it, so nothing valid is lost.
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on filesystem failures.
    pub fn create(dir: &Path, options: WalOptions, next_lsn: u64) -> Result<WalWriter, WalError> {
        fs::create_dir_all(dir)?;
        WalWriter::create_on(fs_backend(dir), options, next_lsn)
    }

    /// [`WalWriter::create`] against an explicit [`StorageBackend`].
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on backend failures.
    pub fn create_on(
        backend: Arc<dyn StorageBackend>,
        options: WalOptions,
        next_lsn: u64,
    ) -> Result<WalWriter, WalError> {
        let file = new_segment_file(&*backend, next_lsn)?;
        Ok(WalWriter {
            backend,
            file,
            options,
            segment_base: next_lsn,
            segment_written: SEGMENT_HEADER,
            next_lsn,
            commits_since_sync: 0,
            records: 0,
            bytes: 0,
            fsyncs: 0,
            fsync_ns: adcast_obs::registry().hist(
                "adcast_durability_fsync_ns",
                "Time spent in sync_data per WAL fsync.",
            ),
            rotate_ns: adcast_obs::registry().hist(
                "adcast_durability_rotate_ns",
                "WAL segment rotation time (closing fsync plus new segment).",
            ),
        })
    }

    /// Append one record to the buffer (no durability until
    /// [`WalWriter::commit`]). Returns the record's LSN.
    ///
    /// # Errors
    ///
    /// [`WalError::RecordTooLarge`] when the encoded record exceeds
    /// [`MAX_RECORD`] (it could never be read back), [`WalError::Io`] on
    /// filesystem failures.
    pub fn append(&mut self, record: &WalRecord) -> Result<u64, WalError> {
        let lsn = self.next_lsn;
        let body = record.encode();
        let mut payload = BytesMut::with_capacity(8 + body.len());
        payload.put_u64_le(lsn);
        payload.put_slice(&body);
        if payload.len() > MAX_RECORD {
            return Err(WalError::RecordTooLarge { len: payload.len() });
        }
        let mut frame = BytesMut::with_capacity(8 + payload.len());
        let len32 = u32::try_from(payload.len())
            .map_err(|_| WalError::RecordTooLarge { len: payload.len() })?;
        frame.put_u32_le(len32);
        frame.put_u32_le(crc32(&payload));
        frame.put_slice(&payload);
        self.file.write_all(&frame)?;
        self.next_lsn += 1;
        self.segment_written += frame.len() as u64;
        self.records += 1;
        self.bytes += frame.len() as u64;
        Ok(lsn)
    }

    /// Commit everything appended so far: flush, fsync per policy, and
    /// rotate the segment when it outgrew [`WalOptions::segment_bytes`].
    ///
    /// # Errors
    ///
    /// [`WalError::Io`] on filesystem failures; on error the appended
    /// records must be considered not durable (callers refuse the ack).
    pub fn commit(&mut self) -> Result<(), WalError> {
        self.file.flush()?;
        match self.options.fsync {
            FsyncPolicy::Always => {
                let started = now_ns();
                self.file.get_mut().sync_data()?;
                self.fsync_ns.record(now_ns().saturating_sub(started));
                self.fsyncs += 1;
            }
            FsyncPolicy::EveryN(n) => {
                self.commits_since_sync += 1;
                if self.commits_since_sync >= n {
                    let started = now_ns();
                    self.file.get_mut().sync_data()?;
                    self.fsync_ns.record(now_ns().saturating_sub(started));
                    self.fsyncs += 1;
                    self.commits_since_sync = 0;
                }
            }
            FsyncPolicy::Off => {}
        }
        if self.segment_written >= self.options.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Close the current segment durably and start the next one. Always
    /// fsyncs the outgoing segment (whatever the policy), so only the
    /// newest segment can ever be torn.
    fn rotate(&mut self) -> io::Result<()> {
        let started = now_ns();
        self.file.flush()?;
        self.file.get_mut().sync_data()?;
        self.fsyncs += 1;
        self.file = new_segment_file(&*self.backend, self.next_lsn)?;
        self.segment_base = self.next_lsn;
        self.segment_written = SEGMENT_HEADER;
        self.commits_since_sync = 0;
        self.rotate_ns.record(now_ns().saturating_sub(started));
        Ok(())
    }

    /// LSN the next appended record will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Base LSN of the segment currently being written.
    pub fn segment_base(&self) -> u64 {
        self.segment_base
    }

    /// Records appended over this writer's lifetime.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Record bytes appended (framing included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// fsync calls issued.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }
}

/// Create (truncating) a segment file, write its header, and fsync the
/// directory so the new name itself is durable.
fn new_segment_file(
    backend: &dyn StorageBackend,
    base_lsn: u64,
) -> io::Result<BufWriter<Box<dyn StorageFile>>> {
    let file = backend.create(&segment_file_name(base_lsn))?;
    let mut header = BytesMut::with_capacity(SEGMENT_HEADER as usize);
    put_stream_header(&mut header, WAL_MAGIC, WAL_VERSION);
    header.put_u64_le(base_lsn);
    let mut writer = BufWriter::new(file);
    writer.write_all(&header)?;
    writer.flush()?;
    backend.sync_dir()?;
    Ok(writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::tests::sample_records;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "adcast-wal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn reencode(records: &[(u64, Bytes)]) -> Vec<Bytes> {
        records
            .iter()
            .map(|(_, payload)| WalRecord::decode(payload.clone()).unwrap().encode())
            .collect()
    }

    #[test]
    fn roundtrip_single_segment() {
        let dir = temp_dir("roundtrip");
        let originals = sample_records();
        let mut w = WalWriter::create(&dir, WalOptions::default(), 0).unwrap();
        for r in &originals {
            w.append(r).unwrap();
        }
        w.commit().unwrap();
        assert_eq!(w.next_lsn(), originals.len() as u64);
        assert_eq!(w.records(), originals.len() as u64);
        assert_eq!(w.fsyncs(), 1);
        drop(w);

        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 1);
        assert_eq!(segments[0].base_lsn, 0);
        let seg = read_segment(&segments[0].path, 0, true).unwrap();
        assert_eq!(seg.truncated_bytes, 0);
        assert_eq!(seg.records.len(), originals.len());
        for (i, ((lsn, _), original)) in seg.records.iter().zip(&originals).enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(reencode(&seg.records)[i], original.encode());
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_segments_and_replays_in_order() {
        let dir = temp_dir("rotate");
        let options = WalOptions {
            fsync: FsyncPolicy::Off,
            segment_bytes: 256,
        };
        let mut w = WalWriter::create(&dir, options, 0).unwrap();
        let mut appended = Vec::new();
        for i in 0..40u32 {
            let record = WalRecord::Pause(adcast_ads::AdId(i));
            appended.push(record.encode());
            w.append(&record).unwrap();
            w.commit().unwrap();
        }
        drop(w);

        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "rotation must produce segments");
        let mut lsn = 0u64;
        for (i, seg) in segments.iter().enumerate() {
            assert_eq!(seg.base_lsn, lsn, "segments dense in lsn space");
            let is_last = i + 1 == segments.len();
            let contents = read_segment(&seg.path, seg.base_lsn, is_last).unwrap();
            assert_eq!(contents.truncated_bytes, 0);
            for (got_lsn, payload) in &contents.records {
                assert_eq!(*got_lsn, lsn);
                assert_eq!(
                    WalRecord::decode(payload.clone()).unwrap().encode(),
                    appended[lsn as usize]
                );
                lsn += 1;
            }
        }
        assert_eq!(lsn, 40);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_counts() {
        for (policy, commits, expect) in [
            (FsyncPolicy::Always, 5u32, 5u64),
            (FsyncPolicy::EveryN(3), 7, 2),
            (FsyncPolicy::Off, 9, 0),
        ] {
            let dir = temp_dir("fsync");
            let mut w = WalWriter::create(
                &dir,
                WalOptions {
                    fsync: policy,
                    segment_bytes: u64::MAX,
                },
                0,
            )
            .unwrap();
            for i in 0..commits {
                w.append(&WalRecord::Pause(adcast_ads::AdId(i))).unwrap();
                w.commit().unwrap();
            }
            assert_eq!(w.fsyncs(), expect, "{policy}");
            fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn torn_tail_truncates_at_every_cut() {
        let dir = temp_dir("torn");
        let originals = sample_records();
        let mut w = WalWriter::create(&dir, WalOptions::default(), 0).unwrap();
        let mut boundaries = vec![SEGMENT_HEADER];
        for r in &originals {
            w.append(r).unwrap();
            w.commit().unwrap();
            boundaries.push(w.bytes() + SEGMENT_HEADER);
        }
        drop(w);
        let path = dir.join(segment_file_name(0));
        let full = fs::read(&path).unwrap();

        for cut in SEGMENT_HEADER as usize..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let seg = read_segment(&path, 0, true).unwrap();
            // The valid prefix is however many whole records fit below the
            // cut (boundaries[0] is the segment header).
            let expect = boundaries.iter().take_while(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(seg.records.len(), expect, "cut at {cut}");
            assert_eq!(seg.valid_len, boundaries[expect], "cut at {cut}");
            assert_eq!(seg.truncated_bytes, cut as u64 - seg.valid_len);
            // The same cut in a non-final segment is a hard error (except
            // a cut exactly at a record boundary, which looks complete).
            let at_boundary = boundaries.contains(&(cut as u64));
            assert_eq!(
                read_segment(&path, 0, false).is_err(),
                !at_boundary,
                "cut at {cut}"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn byte_flip_at_every_offset_never_panics() {
        let dir = temp_dir("flip");
        let mut w = WalWriter::create(&dir, WalOptions::default(), 0).unwrap();
        for i in 0..4u32 {
            w.append(&WalRecord::Pause(adcast_ads::AdId(i))).unwrap();
        }
        w.commit().unwrap();
        drop(w);
        let path = dir.join(segment_file_name(0));
        let clean = fs::read(&path).unwrap();
        let baseline = read_segment(&path, 0, true).unwrap().records.len();
        assert_eq!(baseline, 4);

        for offset in 0..clean.len() {
            if offset == 6 || offset == 7 {
                // Reserved stream-header bytes; readers ignore them by
                // design, so a flip there is (harmlessly) undetectable.
                continue;
            }
            let mut flipped = clean.clone();
            flipped[offset] ^= 0x40;
            fs::write(&path, &flipped).unwrap();
            // Must never panic: either a typed error (header damage) or a
            // truncated prefix of the original records.
            match read_segment(&path, 0, true) {
                Ok(seg) => {
                    assert!(seg.records.len() < baseline, "flip at {offset} undetected");
                    for (i, (lsn, _)) in seg.records.iter().enumerate() {
                        assert_eq!(*lsn, i as u64);
                    }
                }
                Err(WalError::Header(_) | WalError::Corrupt { .. }) => {}
                Err(e) => panic!("unexpected error at {offset}: {e}"),
            }
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parsing() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("off"), Ok(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("every=64"), Ok(FsyncPolicy::EveryN(64)));
        assert!(FsyncPolicy::parse("every=0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::EveryN(8).to_string(), "every=8");
    }

    #[test]
    fn segment_names_roundtrip() {
        assert_eq!(segment_file_name(0), "wal-0000000000000000.log");
        assert_eq!(parse_segment_name("wal-00000000000002a.log"), None);
        assert_eq!(parse_segment_name(&segment_file_name(0x2a)), Some(0x2a));
        assert_eq!(parse_segment_name("snap-0000000000000000.snap"), None);
    }
}
