//! Sharded multi-threaded driver (the E10 scalability experiment).
//!
//! Users are partitioned across shards by id; each shard owns a private
//! engine instance, so no engine state is ever shared between threads —
//! the only shared structure is the read-only [`AdStore`] borrow.
//!
//! ## Worker-pool protocol
//!
//! Workers are **persistent**: `new` spawns one long-lived thread per
//! shard (for `num_shards > 1`) and `process_batch` never spawns or joins
//! anything. Each batch is pre-partitioned into per-shard slabs
//! (`Vec<(UserId, FeedDelta)>`) and handed over with **one** channel send
//! per shard; the worker drains the slab through its engine and returns
//! the emptied slab on a per-worker ack channel. `process_batch` blocks
//! until every shard has acked — that barrier is what makes the raw
//! `*const AdStore` handed to the workers sound (the borrow outlives all
//! uses) and it recycles the slabs, so a steady batch loop performs no
//! per-item channel traffic and no per-batch thread churn. Dropping the
//! driver sends each worker a shutdown message and joins it.
//!
//! The ack barrier holds on the failure paths too: when a send fails or a
//! worker dies mid-batch, `process_batch` drains the acks of every worker
//! that received the batch *before* returning the [`DriverError`] (a live
//! worker that has not acked may still be dereferencing the store
//! pointer), then marks the driver dead so later batches fail fast with
//! [`DriverError::Dead`] instead of dispatching to a pool in an unknown
//! state.
//!
//! ## Memory
//!
//! Each shard's engine holds state **only for its resident users**: user
//! `u` lives on shard `u % S` at local index `u / S`, so shard `s` sizes
//! its engine to `ceil((N − s) / S)` users. Total per-user state is
//! independent of the shard count (an earlier revision allocated all `N`
//! user slots in every shard, overstating `memory_bytes` by ~`S×`).
//!
//! This mirrors how a production deployment scales the algorithm: the
//! per-user state is embarrassingly partitionable, and the ad index is
//! read-mostly (campaign churn is orders of magnitude rarer than feed
//! updates and is applied between processing waves).

use adcast_ads::{AdId, AdStore};
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::LocationId;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::config::{DriverConfig, EngineConfig};
use crate::engine::{EngineStats, IncrementalEngine, Recommendation, RecommendationEngine};

/// A batch slab: one shard's share of a `process_batch` call.
type Slab = Vec<(UserId, FeedDelta)>;

/// Why a batch could not be processed.
///
/// A serving layer maps these to load-shedding responses (report the
/// driver `Unavailable` and keep the process alive) instead of crashing;
/// see `adcast-net`. Read paths (`stats`, `recommend`, `memory_bytes`)
/// keep working on a dead driver so the failure can be reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriverError {
    /// A shard worker died (panicked) while processing *this* batch; its
    /// share of the deltas is lost and the driver is now dead.
    WorkerDied {
        /// The shard whose worker died.
        shard: usize,
    },
    /// The driver was already dead before this batch was dispatched (an
    /// earlier batch returned [`DriverError::WorkerDied`]); nothing was
    /// handed to the surviving workers.
    Dead,
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::WorkerDied { shard } => {
                write!(f, "shard worker {shard} died processing a batch")
            }
            DriverError::Dead => {
                write!(
                    f,
                    "ShardedDriver is dead: a shard worker died in an earlier batch"
                )
            }
        }
    }
}

impl std::error::Error for DriverError {}

/// The read-only store borrow smuggled to the workers for the duration of
/// one batch. Soundness: `process_batch` does not return until every
/// worker has acked the batch, so the pointee outlives every dereference.
struct StorePtr(*const AdStore);
// SAFETY: AdStore is Sync (machine-checked below, so this impl breaks the
// build instead of silently racing if AdStore ever gains interior
// mutability) and the barrier in `process_batch` bounds the pointer's
// lifetime to the caller's borrow.
unsafe impl Send for StorePtr {}
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<AdStore>()
};

enum WorkerMsg {
    Batch { store: StorePtr, items: Slab },
    Shutdown,
}

struct Worker {
    /// Bounded at one message: the ack barrier drains every dispatched
    /// batch before `process_batch` returns, so at most one `Batch` (or,
    /// after it, one `Shutdown`) is ever queued and sends never block.
    tx: SyncSender<WorkerMsg>,
    /// Per-worker ack channel: the emptied slab comes back when the batch
    /// is done. A dropped sender (worker panic) turns `recv` into an
    /// error instead of a deadlock. Bounded at one for the same reason as
    /// `tx`: one ack per batch, drained before the next dispatch.
    ack_rx: Receiver<Slab>,
    join: Option<JoinHandle<()>>,
}

/// A sharded pool of incremental engines behind persistent worker threads.
pub struct ShardedDriver {
    engines: Vec<Arc<Mutex<IncrementalEngine>>>,
    num_users: u32,
    /// Empty for `num_shards == 1` (batches run inline on the caller).
    workers: Vec<Worker>,
    /// Recycled partition slabs, one per shard.
    slabs: Vec<Slab>,
    /// Set when a worker died mid-batch. Further `process_batch` calls
    /// fail fast instead of handing new slabs (and a new [`StorePtr`]) to
    /// the surviving workers of a pool in an unknown state; read paths
    /// (`stats`, `memory_bytes`, `recommend`) keep working.
    dead: bool,
    /// Span timing: partition + send time per pooled batch.
    fanout_ns: adcast_obs::Hist,
    /// Span timing: ack-barrier wait per pooled batch.
    ack_wait_ns: adcast_obs::Hist,
}

/// Number of users resident on shard `s` under `u % num_shards` routing.
fn residents(num_users: u32, num_shards: usize, s: usize) -> u32 {
    let (n, k) = (num_users as usize, num_shards);
    if s >= n {
        0
    } else {
        ((n - s).div_ceil(k)) as u32
    }
}

impl ShardedDriver {
    /// Create `num_shards` engines over `num_users` users and spawn the
    /// worker pool (threads are spawned **once**, here, never per batch).
    ///
    /// # Panics
    ///
    /// Panics when `num_shards == 0`, the configuration is invalid, or a
    /// worker thread cannot be spawned.
    pub fn new(num_users: u32, num_shards: usize, config: EngineConfig) -> Self {
        assert!(num_shards > 0, "need at least one shard");
        let engines: Vec<Arc<Mutex<IncrementalEngine>>> = (0..num_shards)
            .map(|s| {
                Arc::new(Mutex::new(IncrementalEngine::new(
                    residents(num_users, num_shards, s),
                    config.clone(),
                )))
            })
            .collect();
        let workers = if num_shards == 1 {
            Vec::new()
        } else {
            engines
                .iter()
                .enumerate()
                .map(|(s, engine)| {
                    let engine = Arc::clone(engine);
                    let (tx, rx) = mpsc::sync_channel::<WorkerMsg>(1);
                    let (ack_tx, ack_rx) = mpsc::sync_channel::<Slab>(1);
                    let shards = num_shards as u32;
                    let join = std::thread::Builder::new()
                        .name(format!("adcast-shard-{s}"))
                        .spawn(move || worker_loop(&engine, shards, &rx, &ack_tx))
                        .expect("spawn shard worker");
                    Worker {
                        tx,
                        ack_rx,
                        join: Some(join),
                    }
                })
                .collect()
        };
        let reg = adcast_obs::registry();
        ShardedDriver {
            engines,
            num_users,
            workers,
            slabs: (0..num_shards).map(|_| Vec::new()).collect(),
            dead: false,
            fanout_ns: reg.hist(
                "adcast_core_fanout_ns",
                "Per-batch shard partition and worker dispatch time.",
            ),
            ack_wait_ns: reg.hist(
                "adcast_core_ack_wait_ns",
                "Per-batch ack-barrier wait for the slowest shard worker.",
            ),
        }
    }

    /// [`ShardedDriver::new`] from a validated [`DriverConfig`].
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid.
    pub fn with_config(num_users: u32, config: DriverConfig) -> Self {
        config
            .validate()
            .unwrap_or_else(|e| panic!("invalid driver config: {e}"));
        Self::new(num_users, config.num_shards, config.engine)
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.engines.len()
    }

    /// The shard owning `user`.
    pub fn shard_of(&self, user: UserId) -> usize {
        user.index() % self.engines.len()
    }

    /// `user`'s index within its shard's engine.
    fn local(&self, user: UserId) -> UserId {
        UserId((user.index() / self.engines.len()) as u32)
    }

    fn lock_engine(&self, shard: usize) -> MutexGuard<'_, IncrementalEngine> {
        // Poison-tolerant: a worker that panicked mid-batch poisons its
        // engine mutex, but read paths (stats, memory) must still work so
        // the failure can be reported.
        self.engines[shard]
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Process a batch of feed deltas in parallel across shards.
    /// Returns `Ok(())` when every delta has been applied.
    ///
    /// # Errors
    ///
    /// [`DriverError::WorkerDied`] when a worker thread died processing
    /// this batch (e.g. a poisoned delta made it panic) — the barrier
    /// converts the lost ack into an error instead of waiting forever.
    /// The driver is then **dead**: subsequent `process_batch` calls fail
    /// fast with [`DriverError::Dead`] without dispatching to the
    /// surviving workers (read paths keep working). Either error path
    /// first drains the acks of every worker that received the batch, so
    /// no thread can still hold the [`StorePtr`] once this call returns.
    ///
    /// # Panics
    ///
    /// The inline single-shard path runs on the caller's thread, so a
    /// poisoned delta (e.g. an out-of-range user) panics the caller
    /// directly there; validate ids before calling from a network surface.
    pub fn process_batch(
        &mut self,
        store: &AdStore,
        deltas: Vec<(UserId, FeedDelta)>,
    ) -> Result<(), DriverError> {
        let num_shards = self.engines.len();
        if self.workers.is_empty() {
            let local_shards = num_shards; // 1
            let mut engine = self.lock_engine(0);
            for (user, delta) in &deltas {
                engine.on_feed_delta(store, UserId((user.index() / local_shards) as u32), delta);
            }
            return Ok(());
        }
        if self.dead {
            return Err(DriverError::Dead);
        }
        // Partition into recycled slabs: one send per shard per batch.
        let fanout_started = adcast_stream::clock::now_ns();
        let mut slabs = std::mem::take(&mut self.slabs);
        while slabs.len() < num_shards {
            slabs.push(Vec::new()); // only after a panicked batch lost slabs
        }
        for slab in &mut slabs {
            slab.clear();
        }
        for (user, delta) in deltas {
            slabs[user.index() % num_shards].push((user, delta));
        }
        // Empty slabs are sent too: the ack protocol stays uniform (one
        // ack per worker per batch) and the slab keeps its capacity.
        // Track how many workers actually received the batch so the
        // failure path below drains exactly those acks.
        let mut sent = 0usize;
        for (worker, slab) in self.workers.iter().zip(slabs.drain(..)) {
            let msg = WorkerMsg::Batch {
                store: StorePtr(store),
                items: slab,
            };
            if worker.tx.send(msg).is_err() {
                break; // dead worker; earlier ones already hold the batch
            }
            sent += 1;
        }
        self.fanout_ns
            .record(adcast_stream::clock::now_ns().saturating_sub(fanout_started));
        // Barrier: one ack per worker that received the batch. Every such
        // ack must be drained — even after a failure — before this
        // function may return: a live worker that has not yet acked can
        // still be dereferencing the StorePtr, and the caller's `&AdStore`
        // borrow ends when we return (error included). Skipping the drain
        // here would be a use-after-free reachable from safe code.
        let mut dead_shard = if sent < self.workers.len() {
            Some(sent)
        } else {
            None
        };
        let ack_started = adcast_stream::clock::now_ns();
        for (s, worker) in self.workers.iter().take(sent).enumerate() {
            match worker.ack_rx.recv() {
                Ok(slab) => slabs.push(slab),
                Err(_) => {
                    dead_shard.get_or_insert(s);
                }
            }
        }
        self.ack_wait_ns
            .record(adcast_stream::clock::now_ns().saturating_sub(ack_started));
        self.slabs = slabs;
        if let Some(s) = dead_shard {
            self.dead = true;
            return Err(DriverError::WorkerDied { shard: s });
        }
        Ok(())
    }

    /// Has an earlier batch killed a worker? (Dead drivers refuse new
    /// batches but still serve reads.)
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Serve a recommendation from the owning shard.
    pub fn recommend(
        &mut self,
        store: &AdStore,
        user: UserId,
        now: Timestamp,
        location: LocationId,
        k: usize,
    ) -> Vec<Recommendation> {
        let shard = self.shard_of(user);
        let local = self.local(user);
        self.lock_engine(shard)
            .recommend(store, local, now, location, k)
    }

    /// Propagate campaign churn to every shard.
    pub fn on_campaign_removed(&mut self, ad: AdId) {
        for s in 0..self.engines.len() {
            self.lock_engine(s).on_campaign_removed(ad);
        }
    }

    /// Propagate a batch of campaign removals to every shard in one
    /// pass per shard (mass flight expiry stays O(users), not
    /// O(removals · users)).
    pub fn on_campaigns_removed(&mut self, ads: &[AdId]) {
        for s in 0..self.engines.len() {
            self.lock_engine(s).on_campaigns_removed(ads);
        }
    }

    /// Run a lifecycle maintenance pass over every shard: reset users
    /// idle for at least `idle_for` as of `now` (see
    /// [`IncrementalEngine::maintain`]). Runs on the caller's thread in
    /// shard order — maintenance is rare and cold, and the deterministic
    /// order keeps replay and recovery twins identical. Returns the
    /// summed `(scanned, decayed)` counts. Callers must ensure no batch
    /// is in flight (same contract as `export_snapshots`).
    pub fn maintain(
        &mut self,
        now: Timestamp,
        idle_for: adcast_stream::clock::Duration,
    ) -> (u64, u64) {
        let mut totals = (0u64, 0u64);
        for s in 0..self.engines.len() {
            let (scanned, decayed) = self.lock_engine(s).maintain(now, idle_for);
            totals.0 += scanned;
            totals.1 += decayed;
        }
        totals
    }

    /// Capture every shard's engine state (shard order). Callers must
    /// ensure no batch is in flight — the serving layer snapshots on the
    /// engine thread between batches, where the worker pool is idle.
    pub fn export_snapshots(&self) -> Vec<crate::snapshot::EngineSnapshot> {
        (0..self.engines.len())
            .map(|s| self.lock_engine(s).export_snapshot())
            .collect()
    }

    /// Restore shard engine states captured by
    /// [`export_snapshots`](Self::export_snapshots). Shard count and
    /// per-shard user counts must match this driver's layout.
    ///
    /// # Errors
    ///
    /// A description of the mismatch; the driver may be partially
    /// restored and should be discarded on error.
    pub fn restore_snapshots(
        &mut self,
        snapshots: &[crate::snapshot::EngineSnapshot],
    ) -> Result<(), String> {
        if snapshots.len() != self.engines.len() {
            return Err(format!(
                "snapshot holds {} shards, driver has {}",
                snapshots.len(),
                self.engines.len()
            ));
        }
        for (s, snap) in snapshots.iter().enumerate() {
            self.lock_engine(s)
                .restore_snapshot(snap)
                .map_err(|e| format!("shard {s}: {e}"))?;
        }
        Ok(())
    }

    /// Aggregate work counters across shards.
    pub fn stats(&self) -> EngineStats {
        (0..self.engines.len())
            .map(|s| self.lock_engine(s).stats().clone())
            .sum()
    }

    /// Total users.
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Approximate resident bytes across shards (engine state only covers
    /// resident users, so this no longer scales with `shards × users`).
    pub fn memory_bytes(&self) -> usize {
        let engines: usize = (0..self.engines.len())
            .map(|s| self.lock_engine(s).memory_bytes())
            .sum();
        let slabs: usize = self
            .slabs
            .iter()
            .map(|s| s.capacity() * std::mem::size_of::<(UserId, FeedDelta)>())
            .sum();
        engines + slabs + std::mem::size_of::<Self>()
    }
}

impl Drop for ShardedDriver {
    fn drop(&mut self) {
        for w in &self.workers {
            // A dead worker's channel is closed; that is fine, it needs no
            // shutdown message.
            let _ = w.tx.send(WorkerMsg::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(join) = w.join.take() {
                // A panicked worker yields Err; the panic was already
                // surfaced by the batch barrier.
                let _ = join.join();
            }
        }
    }
}

fn worker_loop(
    engine: &Mutex<IncrementalEngine>,
    num_shards: u32,
    rx: &Receiver<WorkerMsg>,
    ack_tx: &SyncSender<Slab>,
) {
    while let Ok(msg) = rx.recv() {
        match msg {
            WorkerMsg::Batch { store, mut items } => {
                // SAFETY: the driver blocks on this batch's ack before
                // `process_batch` returns, so the caller's `&AdStore`
                // borrow is still live for every dereference here.
                let store: &AdStore = unsafe { &*store.0 };
                {
                    let mut engine = engine.lock().expect("engine mutex poisoned");
                    for (user, delta) in items.drain(..) {
                        let local = UserId(user.index() as u32 / num_shards);
                        engine.on_feed_delta(store, local, &delta);
                    }
                }
                if ack_tx.send(items).is_err() {
                    return; // driver dropped mid-batch
                }
            }
            WorkerMsg::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcast_ads::{AdSubmission, Budget, Targeting};
    use adcast_stream::event::{Message, MessageId};
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;
    use std::sync::Arc;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    fn store() -> AdStore {
        let mut s = AdStore::new();
        for t in 0..8u32 {
            s.submit(AdSubmission {
                vector: v(&[(t, 1.0)]),
                bid: 1.0,
                targeting: Targeting::everywhere(),
                budget: Budget::unlimited(),
                topic_hint: None,
            })
            .unwrap();
        }
        s
    }

    fn deltas(n: u64, users: u32) -> Vec<(UserId, FeedDelta)> {
        (0..n)
            .map(|i| {
                let user = UserId((i % users as u64) as u32);
                let msg = Arc::new(Message {
                    id: MessageId(i),
                    author: UserId(0),
                    ts: Timestamp::from_secs(i),
                    location: LocationId(0),
                    vector: v(&[((i % 8) as u32, 1.0)]),
                });
                (
                    user,
                    FeedDelta {
                        entered: Some(msg),
                        evicted: vec![],
                    },
                )
            })
            .collect()
    }

    fn cfg() -> EngineConfig {
        EngineConfig {
            k: 2,
            half_life: None,
            ..Default::default()
        }
    }

    #[test]
    fn resident_counts_cover_all_users() {
        for n in [0u32, 1, 3, 7, 8, 16, 100] {
            for k in [1usize, 2, 3, 4, 7, 16] {
                let total: u32 = (0..k).map(|s| residents(n, k, s)).sum();
                assert_eq!(total, n, "n={n} k={k}");
                for s in 0..k {
                    // Every resident's local index must be in range.
                    let max_local = (s..n as usize)
                        .step_by(k)
                        .map(|u| u / k)
                        .max()
                        .map(|m| m as u32);
                    if let Some(max_local) = max_local {
                        assert!(max_local < residents(n, k, s), "n={n} k={k} s={s}");
                    }
                }
            }
        }
    }

    #[test]
    fn single_shard_matches_direct_engine() {
        let s = store();
        let mut driver = ShardedDriver::new(4, 1, cfg());
        let mut direct = IncrementalEngine::new(4, cfg());
        let batch = deltas(40, 4);
        for (u, d) in &batch {
            direct.on_feed_delta(&s, *u, d);
        }
        driver.process_batch(&s, batch).unwrap();
        for u in 0..4u32 {
            let now = Timestamp::from_secs(100);
            let a = driver.recommend(&s, UserId(u), now, LocationId(0), 2);
            let b = direct.recommend(&s, UserId(u), now, LocationId(0), 2);
            assert_eq!(
                a.iter().map(|r| r.ad).collect::<Vec<_>>(),
                b.iter().map(|r| r.ad).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn multi_shard_matches_single_shard() {
        let s = store();
        let mut one = ShardedDriver::new(8, 1, cfg());
        let mut four = ShardedDriver::new(8, 4, cfg());
        let batch = deltas(80, 8);
        one.process_batch(&s, batch.clone()).unwrap();
        four.process_batch(&s, batch).unwrap();
        let now = Timestamp::from_secs(100);
        for u in 0..8u32 {
            let a = one.recommend(&s, UserId(u), now, LocationId(0), 2);
            let b = four.recommend(&s, UserId(u), now, LocationId(0), 2);
            assert_eq!(
                a.iter().map(|r| r.ad).collect::<Vec<_>>(),
                b.iter().map(|r| r.ad).collect::<Vec<_>>(),
                "user {u}"
            );
        }
        assert_eq!(one.stats().deltas, four.stats().deltas);
    }

    #[test]
    fn workers_persist_across_batches() {
        let s = store();
        let mut driver = ShardedDriver::new(8, 4, cfg());
        // Many batches through the same pool; a per-batch spawn/join bug
        // or a slab-recycling bug would lose deltas or deadlock here.
        for round in 0..50u64 {
            driver.process_batch(&s, deltas(16, 8)).unwrap();
            assert_eq!(driver.stats().deltas, (round + 1) * 16);
        }
    }

    #[test]
    fn shard_memory_covers_residents_only() {
        let one = ShardedDriver::new(256, 1, cfg());
        let sixteen = ShardedDriver::new(256, 16, cfg());
        let (m1, m16) = (one.memory_bytes(), sixteen.memory_bytes());
        // Per-user state dominates; 16 shards must not cost ~16×. Allow
        // 2× slack for per-engine fixed overhead (scratch, maps).
        assert!(
            m16 < m1 * 2,
            "16-shard driver uses {m16} bytes vs {m1} for 1 shard — residents leak?"
        );
    }

    #[test]
    fn shard_routing_is_stable() {
        let driver = ShardedDriver::new(16, 4, cfg());
        for u in 0..16u32 {
            assert_eq!(driver.shard_of(UserId(u)), (u % 4) as usize);
        }
        assert_eq!(driver.num_shards(), 4);
        assert_eq!(driver.num_users(), 16);
        assert!(driver.memory_bytes() > 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let s = store();
        let mut driver = ShardedDriver::new(4, 2, cfg());
        driver.process_batch(&s, vec![]).unwrap();
        assert_eq!(driver.stats().deltas, 0);
    }

    #[test]
    fn campaign_removal_reaches_all_shards() {
        let s = store();
        let mut driver = ShardedDriver::new(8, 4, cfg());
        driver.process_batch(&s, deltas(80, 8)).unwrap();
        let mut s = s;
        assert!(s.remove(adcast_ads::AdId(0)));
        driver.on_campaign_removed(adcast_ads::AdId(0));
        let now = Timestamp::from_secs(100);
        for u in 0..8u32 {
            for rec in driver.recommend(&s, UserId(u), now, LocationId(0), 2) {
                assert_ne!(rec.ad, adcast_ads::AdId(0));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedDriver::new(4, 0, cfg());
    }

    #[test]
    fn poisoned_batch_errors_but_drop_completes() {
        let s = store();
        let mut driver = ShardedDriver::new(4, 2, cfg());
        // User 100 is out of range for a 4-user driver: the owning worker
        // panics. The barrier must surface that as a typed error (not a
        // hang, not a caller panic)...
        let poisoned = vec![deltas(1, 4).pop().map(|(_, d)| (UserId(100), d)).unwrap()];
        let err = driver
            .process_batch(&s, poisoned)
            .expect_err("poisoned batch must error the barrier");
        assert!(matches!(err, DriverError::WorkerDied { .. }), "{err:?}");
        assert!(driver.is_dead());
        // ...and the driver must still drop cleanly (shutdown + join must
        // not hang on the dead worker) with stats still readable.
        let _ = driver.stats();
        drop(driver);
    }

    #[test]
    fn dead_driver_fails_fast() {
        let s = store();
        let mut driver = ShardedDriver::new(4, 2, cfg());
        let poisoned = vec![deltas(1, 4).pop().map(|(_, d)| (UserId(100), d)).unwrap()];
        assert!(driver.process_batch(&s, poisoned).is_err());
        let before = driver.stats().deltas;
        // A later, perfectly valid batch must not be dispatched to the
        // surviving worker: the driver is dead and fails fast.
        let err = driver
            .process_batch(&s, deltas(4, 4))
            .expect_err("dead driver must refuse new batches");
        assert_eq!(err, DriverError::Dead);
        assert!(err.to_string().contains("dead"), "{err}");
        // No deltas reached the live shard after the driver died.
        assert_eq!(driver.stats().deltas, before);
    }
}
