// Fixture: `.unwrap()` on a hot-path file must trip `no-panic-hot-path`.
// Linted under a pretend hot-path rel path; never compiled.

fn serve_one(q: Option<u32>) -> u32 {
    q.unwrap()
}
