//! The metric registry: name → handle, plus the process-wide instance.
//!
//! Registration and exposition take a `Mutex` (they run at startup and on
//! scrape, never on the serving path); the handles they return are the
//! lock-free types from [`crate::metrics`]. Registration is idempotent by
//! name — asking twice for the same family returns clones of one handle —
//! because `cargo test` runs many servers inside one process and all of
//! them share the global registry.

use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Hist};

/// What kind of metric a family is (drives the `# TYPE` line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FamilyKind {
    Counter,
    Gauge,
    Histogram,
}

impl FamilyKind {
    /// The Prometheus `# TYPE` keyword.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            FamilyKind::Counter => "counter",
            FamilyKind::Gauge => "gauge",
            FamilyKind::Histogram => "histogram",
        }
    }
}

#[derive(Clone)]
pub(crate) enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Hist(Hist),
}

/// One registered metric family — strictly, one *labelset* of a family:
/// several entries may share a `name` with distinct `labels` (e.g. the
/// per-partition replication gauges), and exposition groups them under
/// one `# HELP`/`# TYPE` header.
pub(crate) struct Family {
    pub(crate) name: &'static str,
    pub(crate) help: &'static str,
    /// Label pairs attached to every sample of this entry, in
    /// registration order. Empty for classic unlabeled families.
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) handle: Handle,
}

impl Family {
    pub(crate) fn kind(&self) -> FamilyKind {
        match self.handle {
            Handle::Counter(_) => FamilyKind::Counter,
            Handle::Gauge(_) => FamilyKind::Gauge,
            Handle::Hist(_) => FamilyKind::Histogram,
        }
    }
}

/// A set of metric families. Most code uses the process-wide [`registry`];
/// standalone instances exist for unit tests.
#[derive(Default)]
pub struct Registry {
    pub(crate) families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or fetch) a counter family. Counter names follow the
    /// `adcast_<layer>_<name>_total` scheme. If the name is already
    /// registered as a different kind, a detached handle is returned so
    /// the caller keeps working and the registered family stays coherent.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or fetch) a gauge family.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or fetch) a histogram family over nanosecond values.
    pub fn hist(&self, name: &'static str, help: &'static str) -> Hist {
        self.hist_with(name, help, &[])
    }

    /// Register (or fetch) a counter with a fixed labelset. Idempotency is
    /// keyed on `(name, labels)`: the same name with different labels is a
    /// distinct series sharing one `# HELP`/`# TYPE` header on exposition.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        match self.register(name, help, labels, || Handle::Counter(Counter::detached())) {
            Handle::Counter(c) => c,
            _ => Counter::detached(),
        }
    }

    /// Register (or fetch) a gauge with a fixed labelset.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Gauge {
        match self.register(name, help, labels, || Handle::Gauge(Gauge::detached())) {
            Handle::Gauge(g) => g,
            _ => Gauge::detached(),
        }
    }

    /// Register (or fetch) a histogram with a fixed labelset.
    pub fn hist_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Hist {
        match self.register(name, help, labels, || Handle::Hist(Hist::detached())) {
            Handle::Hist(h) => h,
            _ => Hist::detached(),
        }
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        let mut families = self.families.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = families.iter().find(|f| {
            f.name == name
                && f.labels.len() == labels.len()
                && f.labels
                    .iter()
                    .zip(labels)
                    .all(|((k, v), (lk, lv))| k == lk && v == lv)
        }) {
            return existing.handle.clone();
        }
        let handle = make();
        families.push(Family {
            name,
            help,
            labels: labels
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
            handle: handle.clone(),
        });
        handle
    }

    /// Number of registered families.
    #[must_use]
    pub fn len(&self) -> usize {
        self.families
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// True when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the whole registry in Prometheus text format.
    #[must_use]
    pub fn expose(&self) -> String {
        crate::expo::write_exposition(self)
    }
}

/// The process-wide registry every layer registers into. Lives for the
/// process lifetime; counts are cumulative across all servers started in
/// the process (relevant for tests, which share it).
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_by_name() {
        let reg = Registry::new();
        let a = reg.counter("adcast_test_x_total", "x");
        let b = reg.counter("adcast_test_x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "same family, shared state");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn kind_mismatch_returns_detached_handle() {
        let reg = Registry::new();
        let c = reg.counter("adcast_test_y_total", "y");
        c.inc();
        let g = reg.gauge("adcast_test_y_total", "y as gauge");
        g.set(99);
        assert_eq!(c.get(), 1, "registered family untouched by the mismatch");
        assert_eq!(reg.len(), 1, "mismatched registration adds no family");
    }

    #[test]
    fn global_registry_is_shared() {
        let a = registry().counter("adcast_test_global_total", "g");
        let b = registry().counter("adcast_test_global_total", "g");
        a.inc();
        assert_eq!(b.get(), a.get());
    }

    #[test]
    fn labelsets_are_distinct_series_under_one_name() {
        let reg = Registry::new();
        let p0 = reg.gauge_with("adcast_test_lag", "lag", &[("partition", "0")]);
        let p1 = reg.gauge_with("adcast_test_lag", "lag", &[("partition", "1")]);
        let p0_again = reg.gauge_with("adcast_test_lag", "lag", &[("partition", "0")]);
        p0.set(7);
        p1.set(9);
        assert_eq!(p0_again.get(), 7, "same labelset shares state");
        assert_eq!(p1.get(), 9);
        assert_eq!(reg.len(), 2, "two labelsets, two entries");
        let text = reg.expose();
        assert!(
            text.contains("adcast_test_lag{partition=\"0\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("adcast_test_lag{partition=\"1\"} 9"),
            "{text}"
        );
        assert_eq!(
            text.matches("# TYPE adcast_test_lag gauge").count(),
            1,
            "one TYPE header for the grouped name:\n{text}"
        );
    }

    #[test]
    fn families_expose_in_registration_order() {
        let reg = Registry::new();
        reg.counter("adcast_test_b_total", "b");
        reg.gauge("adcast_test_a", "a");
        let text = reg.expose();
        let b_pos = text.find("adcast_test_b_total").unwrap();
        let a_pos = text.find("adcast_test_a").unwrap();
        assert!(b_pos < a_pos, "registration order preserved:\n{text}");
    }
}
