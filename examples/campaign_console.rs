//! Campaign console: the advertiser's view.
//!
//! Submits a slate of campaigns with budgets and targeting, drives organic
//! traffic plus serving, and prints a spend report; then demonstrates
//! pause / resume / removal flowing through to what users see.
//!
//! ```text
//! cargo run --release --example campaign_console
//! ```

use adcast::ads::CampaignState;
use adcast::core::{Simulation, SimulationConfig};
use adcast::graph::UserId;
use adcast::stream::generator::WorkloadConfig;

fn main() {
    let config = SimulationConfig {
        workload: WorkloadConfig {
            num_users: 300,
            ..WorkloadConfig::default()
        },
        num_ads: 12,
        ad_budget: Some(40.0),
        bid_range: (0.5, 2.0),
        targeted_ad_fraction: 0.5,
        ..SimulationConfig::default()
    };
    let mut sim = Simulation::build(config);

    println!("streaming traffic and serving ads …\n");
    let users: Vec<UserId> = sim.graph().users().collect();
    for wave in 0..10 {
        sim.run(800);
        for &u in users.iter().step_by(3) {
            sim.recommend_and_charge(u, 2);
        }
        if wave == 4 {
            // Mid-flight intervention: pause the top spender.
            if let Some(top) = top_spender(&sim) {
                println!(">>> pausing top spender {top:?} mid-flight\n");
                sim.store_mut().pause(top);
                sim.engine_mut().on_campaign_removed(top);
            }
        }
    }

    // Resume anything paused for the final report period.
    let paused: Vec<_> = sim
        .ad_topics()
        .iter()
        .map(|&(ad, _)| ad)
        .filter(|&ad| sim.store().campaign(ad).map(|c| c.state()) == Some(CampaignState::Paused))
        .collect();
    for ad in paused {
        println!(">>> resuming {ad:?}");
        sim.store_mut().resume(ad);
    }
    sim.run(500);

    println!("\n── campaign report ──");
    println!(
        "{:<6} {:>8} {:>12} {:>10} {:>10}  state",
        "ad", "bid", "impressions", "spent", "left"
    );
    for &(ad, topic) in sim.ad_topics() {
        let c = sim.store().campaign(ad).expect("campaign exists");
        println!(
            "{:<6} {:>8.2} {:>12} {:>10.2} {:>10.2}  {:?} (topic{topic})",
            format!("{ad:?}"),
            c.ad.bid,
            c.impressions,
            c.budget.spent(),
            c.budget.remaining(),
            c.state()
        );
    }
    let total_spend: f64 = sim
        .ad_topics()
        .iter()
        .filter_map(|&(ad, _)| sim.store().campaign(ad))
        .map(|c| c.budget.spent())
        .sum();
    println!("\ntotal platform revenue: {total_spend:.2}");
    println!(
        "active campaigns: {}/{}",
        sim.store().num_active(),
        sim.store().num_total()
    );
}

fn top_spender(sim: &Simulation) -> Option<adcast::ads::AdId> {
    sim.ad_topics()
        .iter()
        .map(|&(ad, _)| ad)
        .filter(|&ad| sim.store().campaign(ad).is_some_and(|c| c.is_active()))
        .max_by(|&a, &b| {
            let sa = sim.store().campaign(a).map_or(0.0, |c| c.budget.spent());
            let sb = sim.store().campaign(b).map_or(0.0, |c| c.budget.spent());
            sa.total_cmp(&sb)
        })
}
