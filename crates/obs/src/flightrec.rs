//! The flight recorder: a fixed-size lock-free ring of recent structured
//! events, dumped as JSON-lines when the process panics, shuts down, or
//! is asked via the `ObsDump` RPC.
//!
//! The ring answers "what was the server doing just before it died": each
//! slot is a handful of plain `AtomicU64` fields, so recording is
//! store-only (no locks, no allocation, no panics) and safe to call from
//! any serving thread. Readers validate each slot's sequence number
//! before and after copying its fields and skip slots a concurrent writer
//! is mid-flight on — the dump is best-effort by design (a crash dump
//! missing the single newest event is still a crash dump).
//!
//! Event payloads are three `u64`s whose meaning depends on the kind:
//!
//! | kind           | a          | b               | c |
//! |----------------|------------|-----------------|---|
//! | `Admission`    | request kind | queue wait µs | – |
//! | `Shed`         | request kind | –             | – |
//! | `Checkpoint`   | LSN        | –               | – |
//! | `SlowDelta`    | user id    | total µs        | – |
//! | `RecoveryStep` | step code  | value           | – |
//! | `Panic`        | –          | –               | – |
//! | `Shutdown`     | drained    | –               | – |
//! | `Maintenance`  | scanned    | decayed         | pruned |

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// What happened. Codes are stable (they appear in dumps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    Admission = 1,
    Shed = 2,
    Checkpoint = 3,
    SlowDelta = 4,
    RecoveryStep = 5,
    Panic = 6,
    Shutdown = 7,
    Maintenance = 8,
    Failover = 9,
}

impl EventKind {
    fn from_code(code: u64) -> Option<EventKind> {
        match code {
            1 => Some(EventKind::Admission),
            2 => Some(EventKind::Shed),
            3 => Some(EventKind::Checkpoint),
            4 => Some(EventKind::SlowDelta),
            5 => Some(EventKind::RecoveryStep),
            6 => Some(EventKind::Panic),
            7 => Some(EventKind::Shutdown),
            8 => Some(EventKind::Maintenance),
            9 => Some(EventKind::Failover),
            _ => None,
        }
    }

    /// The `"event"` string in dumps.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Admission => "admission",
            EventKind::Shed => "shed",
            EventKind::Checkpoint => "checkpoint",
            EventKind::SlowDelta => "slow_delta",
            EventKind::RecoveryStep => "recovery_step",
            EventKind::Panic => "panic",
            EventKind::Shutdown => "shutdown",
            EventKind::Maintenance => "maintenance",
            EventKind::Failover => "failover",
        }
    }

    /// JSON field names for the `a`/`b`/`c` payload; `None` = unused.
    fn field_names(self) -> [Option<&'static str>; 3] {
        match self {
            EventKind::Admission => [Some("req_kind"), Some("queue_wait_us"), None],
            EventKind::Shed => [Some("req_kind"), None, None],
            EventKind::Checkpoint => [Some("lsn"), None, None],
            EventKind::SlowDelta => [Some("user"), Some("total_us"), None],
            EventKind::RecoveryStep => [Some("step"), Some("value"), None],
            EventKind::Panic => [None, None, None],
            EventKind::Shutdown => [Some("drained"), None, None],
            EventKind::Maintenance => [Some("scanned"), Some("decayed"), Some("pruned")],
            EventKind::Failover => [Some("partition"), Some("epoch"), None],
        }
    }
}

/// Step codes for [`EventKind::RecoveryStep`] events.
pub mod recovery_step {
    /// `value` = records replayed from the WAL tail.
    pub const WAL_REPLAYED: u64 = 1;
    /// `value` = LSN the loaded snapshot covered (0 = cold start).
    pub const SNAPSHOT_LOADED: u64 = 2;
    /// `value` = torn-tail bytes truncated.
    pub const TAIL_TRUNCATED: u64 = 3;
}

/// One decoded event, in recording order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    pub seq: u64,
    pub kind: EventKind,
    /// Microseconds since the recorder was created.
    pub t_us: u64,
    pub a: u64,
    pub b: u64,
    pub c: u64,
}

/// `seq` 0 marks a never-written slot; live sequence numbers start at 1.
struct Slot {
    seq: AtomicU64,
    kind: AtomicU64,
    t_us: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            t_us: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
        }
    }
}

/// The ring buffer. Most code records through the process-wide
/// [`flightrec`]; standalone instances exist for tests.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Next sequence number to claim (starts at 1).
    head: AtomicU64,
    epoch: Instant,
}

/// Ring capacity of the process-wide recorder: large enough to hold a few
/// seconds of admissions at smoke-test rates, small enough (~200 KiB) to
/// be irrelevant to the memory budget.
pub const GLOBAL_CAPACITY: usize = 4096;

impl FlightRecorder {
    /// A recorder holding the most recent `capacity.max(1)` events.
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        let mut slots = Vec::with_capacity(capacity);
        for _ in 0..capacity {
            slots.push(Slot::empty());
        }
        FlightRecorder {
            slots: slots.into_boxed_slice(),
            head: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }

    /// Record one event. Lock-free and allocation-free: one relaxed RMW
    /// to claim a sequence number, then plain stores into the claimed
    /// slot, publishing with a release store of the sequence.
    #[inline]
    pub fn record(&self, kind: EventKind, a: u64, b: u64, c: u64) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq as usize) % self.slots.len()];
        let t_us = self.epoch.elapsed().as_micros();
        let t_us = if t_us > u64::MAX as u128 {
            u64::MAX
        } else {
            t_us as u64
        };
        // Invalidate first so a reader that catches us mid-write sees the
        // seq change across its two loads and discards the slot.
        slot.seq.store(0, Ordering::Release);
        slot.kind.store(kind as u64, Ordering::Relaxed);
        slot.t_us.store(t_us, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.c.store(c, Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
    }

    /// Snapshot the ring's stable contents, oldest first. Slots being
    /// concurrently overwritten are skipped.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let before = slot.seq.load(Ordering::Acquire);
            if before == 0 {
                continue;
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let t_us = slot.t_us.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            let c = slot.c.load(Ordering::Relaxed);
            let after = slot.seq.load(Ordering::Acquire);
            if before != after {
                continue; // torn: a writer got between our two loads
            }
            let Some(kind) = EventKind::from_code(kind) else {
                continue;
            };
            out.push(Event {
                seq: before,
                kind,
                t_us,
                a,
                b,
                c,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Write the ring as JSON-lines; returns the number of events written.
    pub fn dump_jsonl(&self, w: &mut dyn Write) -> io::Result<u64> {
        let mut written = 0u64;
        for event in self.events() {
            let mut line = format!(
                "{{\"seq\":{},\"t_us\":{},\"event\":\"{}\"",
                event.seq,
                event.t_us,
                event.kind.name()
            );
            let names = event.kind.field_names();
            for (name, value) in names.iter().zip([event.a, event.b, event.c]) {
                if let Some(name) = name {
                    line.push_str(&format!(",\"{name}\":{value}"));
                }
            }
            line.push('}');
            writeln!(w, "{line}")?;
            written += 1;
        }
        Ok(written)
    }

    /// Dump to a file (truncating any previous dump); returns the number
    /// of events written.
    pub fn dump_to_path(&self, path: &Path) -> io::Result<u64> {
        let mut file = io::BufWriter::new(std::fs::File::create(path)?);
        let written = self.dump_jsonl(&mut file)?;
        file.flush()?;
        Ok(written)
    }
}

/// The process-wide flight recorder ([`GLOBAL_CAPACITY`] slots).
pub fn flightrec() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| FlightRecorder::new(GLOBAL_CAPACITY))
}

/// Chain a panic hook that records a [`EventKind::Panic`] event and dumps
/// the process-wide recorder to `path` before the previous hook runs.
pub fn install_panic_dump(path: &Path) {
    let path = path.to_path_buf();
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        flightrec().record(EventKind::Panic, 0, 0, 0);
        let _ = flightrec().dump_to_path(&path);
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_wraps_and_keeps_the_newest() {
        let rec = FlightRecorder::new(8);
        for i in 0..20u64 {
            rec.record(EventKind::Admission, i, 0, 0);
        }
        let events = rec.events();
        assert_eq!(events.len(), 8, "capacity bounds the snapshot");
        // Sequences start at 1, so records 13..=20 survive.
        assert_eq!(events.first().map(|e| e.a), Some(12));
        assert_eq!(events.last().map(|e| e.a), Some(19));
        let mut prev = 0;
        for e in &events {
            assert!(e.seq > prev, "events sorted by seq");
            prev = e.seq;
        }
    }

    #[test]
    fn dump_is_json_lines_with_kind_specific_fields() {
        let rec = FlightRecorder::new(16);
        rec.record(EventKind::Shed, 1, 0, 0);
        rec.record(EventKind::Checkpoint, 42, 0, 0);
        rec.record(EventKind::SlowDelta, 7, 1500, 0);
        let mut buf = Vec::new();
        let written = rec.dump_jsonl(&mut buf).unwrap();
        assert_eq!(written, 3);
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"shed\"") && lines[0].contains("\"req_kind\":1"));
        assert!(lines[1].contains("\"event\":\"checkpoint\"") && lines[1].contains("\"lsn\":42"));
        assert!(
            lines[2].contains("\"event\":\"slow_delta\"")
                && lines[2].contains("\"user\":7")
                && lines[2].contains("\"total_us\":1500")
        );
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn concurrent_recording_never_produces_garbage_kinds() {
        let rec = std::sync::Arc::new(FlightRecorder::new(32));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        rec.record(EventKind::Admission, t, i, 0);
                    }
                })
            })
            .collect();
        for _ in 0..200 {
            for e in rec.events() {
                assert!(e.seq > 0);
                assert_eq!(e.kind, EventKind::Admission);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(rec.events().len(), 32);
    }

    #[test]
    fn panic_hook_dumps_the_global_ring() {
        let path =
            std::env::temp_dir().join(format!("adcast-obs-panictest-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        install_panic_dump(&path);
        flightrec().record(EventKind::RecoveryStep, recovery_step::WAL_REPLAYED, 5, 0);
        let _ = std::thread::Builder::new()
            .name("panicker".to_string())
            .spawn(|| panic!("deliberate test panic"))
            .unwrap()
            .join();
        let dump = std::fs::read_to_string(&path).expect("panic hook wrote the dump");
        assert!(dump.contains("\"event\":\"panic\""), "{dump}");
        assert!(dump.contains("\"event\":\"recovery_step\""), "{dump}");
        let _ = std::fs::remove_file(&path);
    }
}
