//! The partition map: which node serves which slice of the user space.
//!
//! Users are partitioned by `user.index() % num_partitions` — the same
//! modulo every layer (router, loadgen twin feeding, sim scenarios)
//! computes independently, so there is no map-distribution protocol to
//! get wrong. Campaign state is *not* partitioned: every control-plane
//! mutation (submit/pause/impression/maintain) is broadcast to all
//! partitions in one serialized order, so each node holds the full ad
//! store and recommendations depend only on the node's own users.

use adcast_graph::UserId;

/// One partition's serving pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionNodes {
    /// Address of the current primary.
    pub primary: String,
    /// Address of the follower (promotion target), when one exists.
    pub follower: Option<String>,
}

/// The full cluster layout the router serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionMap {
    partitions: Vec<PartitionNodes>,
}

impl PartitionMap {
    /// Build a map from per-partition serving pairs, partition order.
    ///
    /// # Errors
    ///
    /// When `partitions` is empty or has more than `u16::MAX` entries
    /// (the wire header carries partition ids as `u16`).
    pub fn new(partitions: Vec<PartitionNodes>) -> Result<PartitionMap, String> {
        if partitions.is_empty() {
            return Err("partition map needs at least one partition".into());
        }
        if partitions.len() > usize::from(u16::MAX) {
            return Err(format!(
                "{} partitions exceed the u16 wire header",
                partitions.len()
            ));
        }
        Ok(PartitionMap { partitions })
    }

    /// Parse CLI partition specs, one per partition, each
    /// `primary_addr` or `primary_addr,follower_addr`.
    ///
    /// # Errors
    ///
    /// A description of the malformed spec.
    pub fn parse(specs: &[String]) -> Result<PartitionMap, String> {
        let mut partitions = Vec::with_capacity(specs.len());
        for spec in specs {
            let mut parts = spec.split(',').map(str::trim);
            let primary = parts
                .next()
                .filter(|a| !a.is_empty())
                .ok_or_else(|| format!("empty partition spec {spec:?}"))?;
            let follower = parts.next().filter(|a| !a.is_empty());
            if parts.next().is_some() {
                return Err(format!(
                    "partition spec {spec:?} has more than two addresses"
                ));
            }
            partitions.push(PartitionNodes {
                primary: primary.to_string(),
                follower: follower.map(str::to_string),
            });
        }
        PartitionMap::new(partitions)
    }

    /// Number of partitions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// A map is never empty ([`PartitionMap::new`] refuses that).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The partition that owns `user`.
    #[must_use]
    pub fn partition_of(&self, user: UserId) -> u16 {
        // len() <= u16::MAX is a construction invariant.
        (user.index() % self.partitions.len()) as u16
    }

    /// The serving pair for `partition` (None when out of range).
    #[must_use]
    pub fn nodes(&self, partition: u16) -> Option<&PartitionNodes> {
        self.partitions.get(usize::from(partition))
    }

    /// Iterate `(partition, serving pair)` in partition order.
    pub fn iter(&self) -> impl Iterator<Item = (u16, &PartitionNodes)> {
        self.partitions
            .iter()
            .enumerate()
            .map(|(i, n)| (i as u16, n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_pairs_and_singletons() {
        let map = PartitionMap::parse(&[
            "127.0.0.1:7001,127.0.0.1:7101".to_string(),
            "127.0.0.1:7002".to_string(),
        ])
        .unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(
            map.nodes(0).unwrap().follower.as_deref(),
            Some("127.0.0.1:7101")
        );
        assert_eq!(map.nodes(1).unwrap().follower, None);
        assert!(map.nodes(2).is_none());
    }

    #[test]
    fn parse_rejects_junk() {
        assert!(PartitionMap::parse(&[]).is_err());
        assert!(PartitionMap::parse(&[String::new()]).is_err());
        assert!(PartitionMap::parse(&["a,b,c".to_string()]).is_err());
    }

    #[test]
    fn partitioning_is_modulo_user_index() {
        let map =
            PartitionMap::parse(&["a".to_string(), "b".to_string(), "c".to_string()]).unwrap();
        assert_eq!(map.partition_of(UserId(0)), 0);
        assert_eq!(map.partition_of(UserId(4)), 1);
        assert_eq!(map.partition_of(UserId(11)), 2);
    }
}
