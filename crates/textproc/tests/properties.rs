//! Randomized property tests for the text substrate invariants.
//!
//! Formerly a proptest suite; the offline build environment has no
//! proptest, so the same properties are exercised with a seeded
//! [`SmallRng`] harness (fixed seeds → fully deterministic CI, several
//! hundred cases per property — more than the proptest default of 256).

use adcast_text::dictionary::TermId;
use adcast_text::normalize::normalize;
use adcast_text::pipeline::TextPipeline;
use adcast_text::sparse::SparseVector;
use adcast_text::stemmer::stem;
use adcast_text::tokenizer::{Tokenizer, TokenizerConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 300;

fn rand_pairs(rng: &mut SmallRng) -> Vec<(u32, f32)> {
    let n = rng.gen_range(0..32usize);
    (0..n)
        .map(|_| (rng.gen_range(0..64u32), rng.gen_range(-10.0f32..10.0)))
        .collect()
}

fn sv(pairs: &[(u32, f32)]) -> SparseVector {
    SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
}

fn rand_word(rng: &mut SmallRng, min: usize, max: usize) -> String {
    let n = rng.gen_range(min..=max);
    (0..n)
        .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
        .collect()
}

/// Printable-ish text: ASCII, whitespace, punctuation, and a sprinkle of
/// multi-byte unicode (the old proptest strategy was `\PC{0,n}`).
fn rand_text(rng: &mut SmallRng, max: usize) -> String {
    const POOL: &[char] = &[
        'a', 'b', 'c', 'z', 'E', 'Q', '0', '7', ' ', ' ', '\t', '.', ',', '!', '#', '@', '-', '_',
        '\'', '"', '/', ':', 'é', 'ü', 'ß', 'α', 'Ж', '中', '文', '🎯', '🚀', '½',
    ];
    let n = rng.gen_range(0..=max);
    (0..n).map(|_| POOL[rng.gen_range(0..POOL.len())]).collect()
}

#[test]
fn sparse_invariants_hold() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0001);
    for _ in 0..CASES {
        let v = sv(&rand_pairs(&mut rng));
        let entries: Vec<(TermId, f32)> = v.iter().collect();
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "sorted, unique");
        }
        for &(_, w) in &entries {
            assert!(w != 0.0 && w.is_finite());
        }
    }
}

#[test]
fn dot_is_commutative() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0002);
    for _ in 0..CASES {
        let (a, b) = (sv(&rand_pairs(&mut rng)), sv(&rand_pairs(&mut rng)));
        let ab = a.dot(&b);
        let ba = b.dot(&a);
        assert!((ab - ba).abs() <= 1e-4 * (1.0 + ab.abs()));
    }
}

#[test]
fn dot_matches_bruteforce() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0003);
    for _ in 0..CASES {
        let (a, b) = (sv(&rand_pairs(&mut rng)), sv(&rand_pairs(&mut rng)));
        let brute: f32 = a.iter().map(|(t, w)| w * b.get(t)).sum();
        assert!((a.dot(&b) - brute).abs() <= 1e-3);
    }
}

#[test]
fn dot_matches_bruteforce_skewed_lengths() {
    // The galloping path: one operand much shorter than the other.
    let mut rng = SmallRng::seed_from_u64(0x5EED_0013);
    for _ in 0..CASES {
        let short_n = rng.gen_range(0..6usize);
        let long_n = rng.gen_range(64..400usize);
        let short = sv(&(0..short_n)
            .map(|_| (rng.gen_range(0..2_000u32), rng.gen_range(-2.0f32..2.0)))
            .collect::<Vec<_>>());
        let long = sv(&(0..long_n)
            .map(|_| (rng.gen_range(0..2_000u32), rng.gen_range(-2.0f32..2.0)))
            .collect::<Vec<_>>());
        let brute: f32 = short.iter().map(|(t, w)| w * long.get(t)).sum();
        assert!((short.dot(&long) - brute).abs() <= 1e-3, "short·long");
        assert!((long.dot(&short) - brute).abs() <= 1e-3, "long·short");
    }
}

#[test]
fn cosine_is_bounded() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0004);
    for _ in 0..CASES {
        let c = sv(&rand_pairs(&mut rng)).cosine(&sv(&rand_pairs(&mut rng)));
        assert!(
            (-1.0 - 1e-4..=1.0 + 1e-4).contains(&c),
            "cosine {c} out of range"
        );
    }
}

#[test]
fn axpy_matches_pointwise() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0005);
    for _ in 0..CASES {
        let (mut a_vec, b_vec) = (sv(&rand_pairs(&mut rng)), sv(&rand_pairs(&mut rng)));
        let alpha = rng.gen_range(-4.0f32..4.0);
        let expect: Vec<f32> = (0..64)
            .map(|t| a_vec.get(TermId(t)) + alpha * b_vec.get(TermId(t)))
            .collect();
        a_vec.axpy(alpha, &b_vec);
        for t in 0..64u32 {
            let got = a_vec.get(TermId(t));
            assert!(
                (got - expect[t as usize]).abs() <= 1e-3,
                "term {t}: got {got}, expect {}",
                expect[t as usize]
            );
        }
    }
}

#[test]
fn delta_plus_old_recovers_new() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0006);
    for _ in 0..CASES {
        let (new, old) = (sv(&rand_pairs(&mut rng)), sv(&rand_pairs(&mut rng)));
        let mut rebuilt = old.clone();
        rebuilt.axpy(1.0, &new.delta_from(&old));
        for t in 0..64u32 {
            assert!((rebuilt.get(TermId(t)) - new.get(TermId(t))).abs() <= 1e-3);
        }
    }
}

#[test]
fn normalized_has_unit_norm() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0007);
    let mut nonempty = 0;
    for _ in 0..CASES {
        let v = sv(&rand_pairs(&mut rng));
        if v.is_empty() {
            continue;
        }
        nonempty += 1;
        assert!((v.normalized().norm() - 1.0).abs() < 1e-4);
    }
    assert!(
        nonempty > CASES / 2,
        "generator produced too many empty vectors"
    );
}

// Note: Porter stemming is famously NOT idempotent (e.g. a final -y
// exposed by step 5a turns into -i on a second pass), so we assert the
// weaker property that iterated stemming reaches a fixed point fast.
#[test]
fn stemmer_converges_quickly() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0008);
    'case: for _ in 0..CASES {
        let word = rand_word(&mut rng, 1, 20);
        let mut cur = word.clone();
        for _ in 0..3 {
            let next = stem(&cur);
            if next == cur {
                continue 'case;
            }
            cur = next;
        }
        assert_eq!(
            stem(&cur),
            cur,
            "no fixed point within 3 iterations from {word}"
        );
    }
}

#[test]
fn stemmer_never_grows_much() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_0009);
    for _ in 0..CASES {
        // Porter can grow a word by at most one char (e.g. "at" -> "ate"
        // restoration after -ing removal), never more.
        let word = rand_word(&mut rng, 3, 24);
        let s = stem(&word);
        assert!(s.len() <= word.len() + 1);
        assert!(!s.is_empty());
    }
}

#[test]
fn normalize_is_idempotent() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_000A);
    for _ in 0..CASES {
        let text = rand_text(&mut rng, 80);
        let once = normalize(&text);
        assert_eq!(normalize(&once), once);
    }
}

#[test]
fn tokenizer_never_panics_and_respects_lengths() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_000B);
    for _ in 0..CASES {
        let text = rand_text(&mut rng, 200);
        let cfg = TokenizerConfig {
            keep_urls: true,
            keep_numbers: true,
            ..Default::default()
        };
        let min = cfg.min_token_len;
        let max = cfg.max_token_len;
        for tok in Tokenizer::new(cfg).tokenize(&text) {
            let n = tok.text.chars().count();
            assert!(n >= min && n <= max, "token {:?} length {n}", tok.text);
        }
    }
}

#[test]
fn pipeline_vectors_are_normalized() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_000C);
    let mut p = TextPipeline::standard();
    for _ in 0..CASES {
        let v = p.index_document(&rand_text(&mut rng, 120));
        if !v.is_empty() {
            assert!((v.norm() - 1.0).abs() < 1e-4);
        }
    }
}

#[test]
fn pipeline_deterministic() {
    let mut rng = SmallRng::seed_from_u64(0x5EED_000D);
    let mut p1 = TextPipeline::standard();
    let mut p2 = TextPipeline::standard();
    for _ in 0..CASES {
        let text = rand_text(&mut rng, 120);
        assert_eq!(p1.index_document(&text), p2.index_document(&text));
    }
}
