//! Prometheus text-format exposition: the writer behind `GET /metrics`
//! and a small validating parser used by tests, `check.sh`, and the
//! loadgen's end-of-run scrape.
//!
//! The writer emits version 0.0.4 text format: `# HELP` / `# TYPE` per
//! family, single samples for counters and gauges, and cumulative
//! `_bucket{le="..."}` / `_sum` / `_count` series for histograms. Only
//! non-empty buckets are written (the fixed layout has 1024 of them, a
//! live histogram populates a handful), with `le` upper edges taken from
//! the shared log-bucket layout in `adcast_metrics::histogram`.

use std::fmt::Write as _;

use adcast_metrics::histogram::{bucket_floor, NUM_BUCKETS};

use crate::registry::{Handle, Registry};

/// Render every family in `reg` as Prometheus text format. Entries
/// sharing a name (distinct labelsets) are grouped under one `# HELP` /
/// `# TYPE` header, in first-registration order.
#[must_use]
pub fn write_exposition(reg: &Registry) -> String {
    let mut out = String::new();
    let families = reg.families.lock().unwrap_or_else(|e| e.into_inner());
    let mut names: Vec<&str> = Vec::new();
    for family in families.iter() {
        if !names.contains(&family.name) {
            names.push(family.name);
        }
    }
    for name in names {
        let group: Vec<_> = families.iter().filter(|f| f.name == name).collect();
        let _ = writeln!(out, "# HELP {name} {}", escape_help(group[0].help));
        let _ = writeln!(out, "# TYPE {name} {}", group[0].kind().as_str());
        for family in group {
            write_family_samples(&mut out, name, &family.labels, &family.handle);
        }
    }
    out
}

/// The sample lines of one labelset of a family.
pub(crate) fn write_family_samples(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    handle: &Handle,
) {
    let labelset = render_labels(labels);
    match handle {
        Handle::Counter(c) => {
            let _ = writeln!(out, "{name}{labelset} {}", c.get());
        }
        Handle::Gauge(g) => {
            let _ = writeln!(out, "{name}{labelset} {}", g.get());
        }
        Handle::Hist(h) => {
            let buckets = h.snapshot_buckets();
            let mut cumulative = 0u64;
            for (b, &count) in buckets.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                cumulative += count;
                // The top bucket has no finite upper edge; it is
                // covered by +Inf alone.
                if b + 1 < NUM_BUCKETS {
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cumulative}",
                        render_labels_plus(labels, "le", &bucket_floor(b + 1).to_string())
                    );
                }
            }
            // `cumulative` (not `h.count()`) keeps the exposition
            // internally consistent under concurrent recording.
            let _ = writeln!(
                out,
                "{name}_bucket{} {cumulative}",
                render_labels_plus(labels, "le", "+Inf")
            );
            let _ = writeln!(out, "{name}_sum{labelset} {}", h.sum());
            let _ = writeln!(out, "{name}_count{labelset} {cumulative}");
        }
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value per the text format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`. The order matters — backslashes first.
#[must_use]
pub fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Render a labelset as `{k="v",...}` (empty string for no labels).
#[must_use]
pub fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label_value(v));
    }
    out.push('}');
    out
}

/// [`render_labels`] with one extra pair appended (the `le` bucket edge).
fn render_labels_plus(labels: &[(String, String)], key: &str, value: &str) -> String {
    let mut all: Vec<(String, String)> = labels.to_vec();
    all.push((key.to_string(), value.to_string()));
    render_labels(&all)
}

/// One sample line from a parsed exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The value of a label, if present.
    #[must_use]
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// One `# TYPE`-announced family and its samples.
#[derive(Debug, Clone)]
pub struct ParsedFamily {
    pub name: String,
    pub kind: String,
    pub help: Option<String>,
    pub samples: Vec<Sample>,
}

impl ParsedFamily {
    /// `(le, cumulative_count)` pairs of a histogram family, in emitted
    /// order, with `+Inf` mapped to `f64::INFINITY`.
    #[must_use]
    pub fn buckets(&self) -> Vec<(f64, f64)> {
        let bucket_name = format!("{}_bucket", self.name);
        self.samples
            .iter()
            .filter(|s| s.name == bucket_name)
            .filter_map(|s| {
                let le = s.label("le")?;
                let le = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse().ok()?
                };
                Some((le, s.value))
            })
            .collect()
    }

    /// A single-sample value (`_count`, `_sum`, or the family itself).
    #[must_use]
    pub fn sample_value(&self, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.is_empty())
            .map(|s| s.value)
    }
}

/// Find a family by name in a parsed exposition.
#[must_use]
pub fn find_family<'a>(families: &'a [ParsedFamily], name: &str) -> Option<&'a ParsedFamily> {
    families.iter().find(|f| f.name == name)
}

/// Quantile estimate (`q ∈ [0,1]`) from a histogram family's cumulative
/// buckets: the upper edge of the first bucket whose cumulative count
/// reaches the target rank. Returns `None` when the family has no
/// observations or no buckets.
#[must_use]
pub fn histogram_quantile(family: &ParsedFamily, q: f64) -> Option<f64> {
    let buckets = family.buckets();
    let total = buckets.last().map(|&(_, c)| c)?;
    if total <= 0.0 {
        return None;
    }
    let target = (q * total).ceil().clamp(1.0, total);
    for &(le, cumulative) in &buckets {
        if cumulative >= target {
            return Some(le);
        }
    }
    Some(f64::INFINITY)
}

/// Parse and validate a text-format exposition. Enforces the rules our
/// writer (and any well-formed Prometheus endpoint) must satisfy:
///
/// * every sample belongs to a family announced by a prior `# TYPE` line,
/// * `# TYPE` kinds are legal and appear at most once per family,
/// * counter and gauge families carry exactly one unlabelled sample whose
///   name equals the family name (counters additionally non-negative),
/// * histogram families carry only `_bucket` / `_sum` / `_count` samples,
///   with `le` values strictly ascending, cumulative counts
///   non-decreasing, a `+Inf` bucket present, and `_count` equal to it,
/// * every value parses as a float.
pub fn parse_exposition(text: &str) -> Result<Vec<ParsedFamily>, String> {
    let mut families: Vec<ParsedFamily> = Vec::new();
    let mut pending_help: Option<(String, String)> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest
                .split_once(' ')
                .map(|(n, h)| (n.to_string(), h.to_string()))
                .unwrap_or_else(|| (rest.to_string(), String::new()));
            pending_help = Some((name, help));
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| format!("line {line_no}: TYPE without kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {line_no}: unknown TYPE kind {kind:?}"));
            }
            if families.iter().any(|f| f.name == name) {
                return Err(format!("line {line_no}: duplicate TYPE for {name}"));
            }
            let help = match pending_help.take() {
                Some((help_name, help)) if help_name == name => Some(help),
                _ => None,
            };
            families.push(ParsedFamily {
                name: name.to_string(),
                kind: kind.to_string(),
                help,
                samples: Vec::new(),
            });
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        let sample = parse_sample(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let family = families
            .iter_mut()
            .rev()
            .find(|f| {
                sample.name == f.name
                    || (f.kind == "histogram"
                        && [
                            format!("{}_bucket", f.name),
                            format!("{}_sum", f.name),
                            format!("{}_count", f.name),
                        ]
                        .contains(&sample.name))
            })
            .ok_or_else(|| {
                format!(
                    "line {line_no}: sample {} has no preceding TYPE",
                    sample.name
                )
            })?;
        family.samples.push(sample);
    }
    for family in &families {
        validate_family(family)?;
    }
    Ok(families)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    // A quoted label value may contain spaces and escaped quotes, so the
    // line cannot be token-split; lex the labelset explicitly instead.
    let (name, labels, rest) = match line.find('{') {
        None => {
            let (name, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| "sample without value".to_string())?;
            (name.to_string(), Vec::new(), value)
        }
        Some(brace) => {
            let name = line[..brace].to_string();
            let (labels, after) = parse_labelset(&line[brace..])?;
            (name, labels, &line[brace + after..])
        }
    };
    let value = rest.trim();
    let value: f64 = value
        .parse()
        .map_err(|_| format!("bad sample value {value:?}"))?;
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.starts_with(|c: char| c.is_ascii_digit())
    {
        return Err(format!("illegal metric name {name:?}"));
    }
    Ok(Sample {
        name,
        labels,
        value,
    })
}

/// Lex a `{k="v",...}` labelset (escape-aware). `input` starts at the
/// opening brace; returns the pairs (values unescaped) and the byte
/// length consumed, closing brace included.
fn parse_labelset(input: &str) -> Result<(Vec<(String, String)>, usize), String> {
    let bytes = input.as_bytes();
    debug_assert_eq!(bytes.first(), Some(&b'{'));
    let mut labels = Vec::new();
    let mut i = 1;
    loop {
        if i >= bytes.len() {
            return Err("unterminated label set".to_string());
        }
        if bytes[i] == b'}' {
            return Ok((labels, i + 1));
        }
        // Key runs up to '='.
        let key_start = i;
        while i < bytes.len() && bytes[i] != b'=' && bytes[i] != b'}' {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b'=' {
            return Err(format!(
                "bad label {:?}",
                &input[key_start..i.min(input.len())]
            ));
        }
        let key = input[key_start..i].to_string();
        if key.is_empty() {
            return Err("empty label name".to_string());
        }
        i += 1; // '='
        if i >= bytes.len() || bytes[i] != b'"' {
            return Err(format!("unquoted label value for {key:?}"));
        }
        i += 1; // opening quote
        let mut value = String::new();
        loop {
            match bytes.get(i) {
                None => return Err("unterminated label value".to_string()),
                Some(b'"') => {
                    i += 1;
                    break;
                }
                Some(b'\\') => {
                    match bytes.get(i + 1) {
                        Some(b'\\') => value.push('\\'),
                        Some(b'"') => value.push('"'),
                        Some(b'n') => value.push('\n'),
                        other => {
                            return Err(format!(
                                "bad escape \\{} in label {key:?}",
                                other.map(|&c| c as char).unwrap_or('∅')
                            ))
                        }
                    }
                    i += 2;
                }
                Some(_) => {
                    // Advance one UTF-8 scalar, not one byte.
                    let ch = input[i..].chars().next().unwrap();
                    value.push(ch);
                    i += ch.len_utf8();
                }
            }
        }
        labels.push((key, value));
        match bytes.get(i) {
            Some(b',') => i += 1,
            Some(b'}') => {}
            _ => return Err("expected ',' or '}' after label value".to_string()),
        }
    }
}

/// The non-`le` labels of a sample, in emitted order — the grouping key
/// for federated expositions where one name carries many labelsets.
fn group_key(sample: &Sample) -> Vec<(String, String)> {
    sample
        .labels
        .iter()
        .filter(|(k, _)| k != "le")
        .cloned()
        .collect()
}

fn validate_family(family: &ParsedFamily) -> Result<(), String> {
    let name = &family.name;
    match family.kind.as_str() {
        "counter" | "gauge" => {
            if family.samples.is_empty() {
                return Err(format!("{name}: family without samples"));
            }
            let mut seen: Vec<&[(String, String)]> = Vec::new();
            for sample in &family.samples {
                if sample.name != *name {
                    return Err(format!("{name}: unexpected sample {:?}", sample.name));
                }
                if seen.contains(&sample.labels.as_slice()) {
                    return Err(format!(
                        "{name}: duplicate sample for labels {:?}",
                        sample.labels
                    ));
                }
                seen.push(&sample.labels);
                if family.kind == "counter" && sample.value < 0.0 {
                    return Err(format!("{name}: negative counter value {}", sample.value));
                }
            }
        }
        "histogram" => {
            // A federated exposition carries one bucket ladder per origin
            // node under the same name: validate each labelset's ladder
            // independently.
            let mut keys: Vec<Vec<(String, String)>> = Vec::new();
            for sample in &family.samples {
                let key = group_key(sample);
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
            if keys.is_empty() {
                return Err(format!("{name}: histogram without buckets"));
            }
            for key in keys {
                validate_hist_group(family, &key)?;
            }
        }
        _ => {}
    }
    Ok(())
}

/// Validate one labelset's bucket ladder of a histogram family.
fn validate_hist_group(family: &ParsedFamily, key: &[(String, String)]) -> Result<(), String> {
    let name = &family.name;
    let in_group = |s: &&Sample| group_key(s) == key;
    let bucket_name = format!("{name}_bucket");
    let buckets: Vec<(f64, f64)> = family
        .samples
        .iter()
        .filter(in_group)
        .filter(|s| s.name == bucket_name)
        .filter_map(|s| {
            let le = s.label("le")?;
            let le = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().ok()?
            };
            Some((le, s.value))
        })
        .collect();
    let Some(&(last_le, inf_count)) = buckets.last() else {
        return Err(format!("{name}{key:?}: histogram without buckets"));
    };
    if !last_le.is_infinite() {
        return Err(format!("{name}{key:?}: missing le=\"+Inf\" bucket"));
    }
    for pair in buckets.windows(2) {
        if pair[1].0 <= pair[0].0 {
            return Err(format!("{name}{key:?}: bucket le values not ascending"));
        }
        if pair[1].1 < pair[0].1 {
            return Err(format!("{name}{key:?}: cumulative bucket counts decrease"));
        }
    }
    let scalar = |suffix: &str| {
        family
            .samples
            .iter()
            .filter(in_group)
            .find(|s| s.name == format!("{name}{suffix}"))
            .map(|s| s.value)
    };
    let count = scalar("_count").ok_or_else(|| format!("{name}{key:?}: missing _count"))?;
    scalar("_sum").ok_or_else(|| format!("{name}{key:?}: missing _sum"))?;
    if (count - inf_count).abs() > f64::EPSILON {
        return Err(format!(
            "{name}{key:?}: _count {count} != +Inf bucket {inf_count}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        let c = reg.counter("adcast_test_rpcs_total", "RPCs served.");
        c.add(5);
        let g = reg.gauge("adcast_test_reader_threads", "Live reader threads.");
        g.set(3);
        let h = reg.hist("adcast_test_apply_ns", "Engine apply latency.");
        for v in [100u64, 200, 5_000, 123_456, 10_000_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn every_emitted_family_validates() {
        let reg = sample_registry();
        let text = reg.expose();
        let families = parse_exposition(&text).expect("writer output must parse");
        assert_eq!(families.len(), 3);
        for f in &families {
            assert!(f.help.is_some(), "{}: HELP missing", f.name);
        }
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = sample_registry();
        let families = parse_exposition(&reg.expose()).unwrap();
        let c = find_family(&families, "adcast_test_rpcs_total").unwrap();
        assert_eq!(c.kind, "counter");
        assert_eq!(c.sample_value("adcast_test_rpcs_total"), Some(5.0));
        let g = find_family(&families, "adcast_test_reader_threads").unwrap();
        assert_eq!(g.kind, "gauge");
        assert_eq!(g.sample_value("adcast_test_reader_threads"), Some(3.0));
    }

    #[test]
    fn histogram_roundtrip_and_quantiles() {
        let reg = sample_registry();
        let families = parse_exposition(&reg.expose()).unwrap();
        let h = find_family(&families, "adcast_test_apply_ns").unwrap();
        assert_eq!(h.kind, "histogram");
        assert_eq!(h.sample_value("adcast_test_apply_ns_count"), Some(5.0));
        assert_eq!(
            h.sample_value("adcast_test_apply_ns_sum"),
            Some((100 + 200 + 5_000 + 123_456 + 10_000_000) as f64)
        );
        let p50 = histogram_quantile(h, 0.5).unwrap();
        assert!((4_000.0..=6_000.0).contains(&p50), "p50 {p50}");
        let p99 = histogram_quantile(h, 0.99).unwrap();
        assert!(p99 >= 10_000_000.0, "p99 {p99}");
    }

    #[test]
    fn empty_histogram_still_validates() {
        let reg = Registry::new();
        reg.hist("adcast_test_empty_ns", "Never recorded.");
        let families = parse_exposition(&reg.expose()).unwrap();
        let h = find_family(&families, "adcast_test_empty_ns").unwrap();
        assert_eq!(h.sample_value("adcast_test_empty_ns_count"), Some(0.0));
        assert_eq!(histogram_quantile(h, 0.99), None);
    }

    #[test]
    fn malformed_expositions_are_rejected() {
        for (case, text) in [
            ("sample without TYPE", "adcast_x_total 1\n"),
            ("bad kind", "# TYPE adcast_x_total banana\nadcast_x_total 1\n"),
            ("bad value", "# TYPE adcast_x_total counter\nadcast_x_total one\n"),
            (
                "negative counter",
                "# TYPE adcast_x_total counter\nadcast_x_total -1\n",
            ),
            (
                "duplicate TYPE",
                "# TYPE adcast_x gauge\nadcast_x 1\n# TYPE adcast_x gauge\n",
            ),
            (
                "missing +Inf",
                "# TYPE adcast_h histogram\nadcast_h_bucket{le=\"10\"} 1\nadcast_h_sum 1\nadcast_h_count 1\n",
            ),
            (
                "count mismatch",
                "# TYPE adcast_h histogram\nadcast_h_bucket{le=\"+Inf\"} 2\nadcast_h_sum 1\nadcast_h_count 1\n",
            ),
            (
                "non-ascending buckets",
                "# TYPE adcast_h histogram\nadcast_h_bucket{le=\"10\"} 1\nadcast_h_bucket{le=\"5\"} 2\nadcast_h_bucket{le=\"+Inf\"} 2\nadcast_h_sum 1\nadcast_h_count 2\n",
            ),
            (
                "decreasing cumulative",
                "# TYPE adcast_h histogram\nadcast_h_bucket{le=\"10\"} 3\nadcast_h_bucket{le=\"20\"} 2\nadcast_h_bucket{le=\"+Inf\"} 2\nadcast_h_sum 1\nadcast_h_count 2\n",
            ),
        ] {
            assert!(parse_exposition(text).is_err(), "accepted {case}:\n{text}");
        }
    }

    #[test]
    fn help_lines_are_escaped() {
        let reg = Registry::new();
        reg.counter("adcast_test_esc_total", "line\nbreak\\slash");
        let text = reg.expose();
        assert!(text.contains("line\\nbreak\\\\slash"), "{text}");
        parse_exposition(&text).unwrap();
    }

    #[test]
    fn label_values_round_trip_through_escaping() {
        // Property-style: a deterministic LCG draws label values from a
        // charset biased toward the three escape-relevant characters plus
        // multi-byte UTF-8, and every one must survive emit → parse.
        const CHARSET: &[char] = &[
            '"', '\\', '\n', 'a', 'Z', '0', ':', ' ', ',', '=', '{', '}', 'é', '→',
        ];
        let mut state = 0xADCA57u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for case in 0..200 {
            let len = next() % 12;
            let value: String = (0..len).map(|_| CHARSET[next() % CHARSET.len()]).collect();
            let labels = vec![("node".to_string(), value.clone())];
            let line = format!("adcast_test_rt{} {}\n", render_labels(&labels), case);
            let text = format!("# TYPE adcast_test_rt gauge\n{line}");
            let families = parse_exposition(&text)
                .unwrap_or_else(|e| panic!("case {case} value {value:?}: {e}\n{text}"));
            let sample = &families[0].samples[0];
            assert_eq!(
                sample.label("node"),
                Some(value.as_str()),
                "case {case} mangled {value:?} via\n{text}"
            );
        }
        // The canonical tricky trio, explicitly.
        let labels = vec![("node".to_string(), "a\"b\\c\nd".to_string())];
        let text = format!(
            "# TYPE adcast_x gauge\nadcast_x{} 1\n",
            render_labels(&labels)
        );
        let families = parse_exposition(&text).unwrap();
        assert_eq!(families[0].samples[0].label("node"), Some("a\"b\\c\nd"));
    }

    #[test]
    fn federated_shape_validates_per_labelset() {
        // Two nodes' ladders under one histogram name, plus labeled
        // counters — the shape the router's federated /metrics emits.
        let text = "\
# TYPE adcast_net_rpcs_total counter
adcast_net_rpcs_total{node=\"a:1\",partition=\"0\",role=\"primary\"} 5
adcast_net_rpcs_total{node=\"b:1\",partition=\"1\",role=\"primary\"} 7
# TYPE adcast_h_ns histogram
adcast_h_ns_bucket{node=\"a:1\",le=\"10\"} 1
adcast_h_ns_bucket{node=\"a:1\",le=\"+Inf\"} 2
adcast_h_ns_sum{node=\"a:1\"} 12
adcast_h_ns_count{node=\"a:1\"} 2
adcast_h_ns_bucket{node=\"b:1\",le=\"+Inf\"} 3
adcast_h_ns_sum{node=\"b:1\"} 30
adcast_h_ns_count{node=\"b:1\"} 3
";
        let families = parse_exposition(text).expect("federated shape must validate");
        let c = find_family(&families, "adcast_net_rpcs_total").unwrap();
        assert_eq!(c.samples.len(), 2);
        assert_eq!(c.samples[1].label("node"), Some("b:1"));
        // A broken ladder in ONE labelset still fails.
        let broken = text.replace(
            "adcast_h_ns_count{node=\"b:1\"} 3",
            "adcast_h_ns_count{node=\"b:1\"} 4",
        );
        assert!(parse_exposition(&broken).is_err());
        // Duplicate labelsets on a counter fail.
        let dup =
            "# TYPE adcast_c_total counter\nadcast_c_total{n=\"x\"} 1\nadcast_c_total{n=\"x\"} 2\n";
        assert!(parse_exposition(dup).is_err());
    }
}
