//! `adcast-loadgen` — closed-loop load generator for a running
//! `adcast-serve` instance.
//!
//! ```text
//! adcast-loadgen --addr HOST:PORT [--conns N] [--messages N] [--users N]
//!                [--smoke] [--no-shutdown] [--obs-addr HOST:PORT]
//!                [--twin-check] [--trace-sample N]
//! ```
//!
//! `--trace-sample N` mirrors the router's sampling flag: the run ends
//! by fetching the sampled traces from `--obs-addr` (the router's
//! federated obs port stitches them cross-node) and printing per-hop
//! p50/p99 next to the client RTT report. A sampling run that yields no
//! trace is a hard error — the trace pipeline, not the workload, broke.
//!
//! `--twin-check` is the cluster consistency mode: instead of the
//! closed-loop load run, it replays the workload through the target
//! (typically `adcast-router`) **and** through an in-process
//! single-node twin applying the identical records, then sweeps every
//! user and asserts the served recommendations are bit-identical —
//! same ads, same scores, same order. Divergence (a routing bug, a
//! broadcast-order bug, a replication bug) is a hard error.
//!
//! With `--obs-addr` (the server's observability listener), the run ends
//! with a validating `/metrics` + `/healthz` scrape and prints the
//! server-side stage latency percentiles and the blocked-index prune
//! ratio next to the client RTTs — a malformed exposition, missing stage
//! histograms, or missing `adcast_index_*` families is a hard error.
//!
//! Replays the deterministic synthetic workload over real sockets: one
//! thread per connection, one request outstanding each (offered load =
//! connection count). Prints achieved throughput, RTT percentiles, and
//! the shed count, then asks the server to shut down (unless
//! `--no-shutdown`). `--smoke` shrinks the workload to a seconds-scale
//! sanity pass and is what `scripts/check.sh` drives.
//!
//! **The server must be sized for the workload**: start `adcast-serve`
//! with `--users` at least as large as the value used here (defaults
//! match).

use std::process::ExitCode;
use std::sync::Arc;

use adcast::ads::AdStore;
use adcast::core::{EngineConfig, ShardedDriver};
use adcast::durability::{apply_record, ApplyEffect, WalRecord};
use adcast::graph::UserId;
use adcast::net::loadgen::{run, LoadgenConfig};
use adcast::net::synth::{self, SynthConfig};
use adcast::net::{Client, ClientConfig};

fn main() -> ExitCode {
    match drive(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|e| format!("{name}: {e}")),
    }
}

fn drive(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: adcast-loadgen --addr HOST:PORT [--conns N] [--messages N] [--users N] \
             [--smoke] [--no-shutdown] [--obs-addr HOST:PORT] [--twin-check] [--trace-sample N]"
        );
        return Ok(());
    }
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .ok_or("--addr HOST:PORT is required")?;
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut synth_config = if smoke {
        SynthConfig::smoke()
    } else {
        SynthConfig {
            num_users: 4_000,
            num_ads: 2_000,
            messages: 20_000,
            batch_size: 500,
            msgs_per_sec: 200.0,
            seed: 0xADCA57,
        }
    };
    if let Some(users) = flag(args, "--users")? {
        synth_config.num_users = users as u32;
    }
    if let Some(messages) = flag(args, "--messages")? {
        synth_config.messages = messages;
    }
    let conns = flag(args, "--conns")?.unwrap_or(2) as usize;
    let obs_addr = args
        .iter()
        .position(|a| a == "--obs-addr")
        .and_then(|i| args.get(i + 1))
        .cloned();

    eprintln!(
        "building workload: {} users, {} ads, {} messages…",
        synth_config.num_users, synth_config.num_ads, synth_config.messages
    );
    let trace_sample = flag(args, "--trace-sample")?.unwrap_or(0);
    if trace_sample > 0 && obs_addr.is_none() {
        return Err("--trace-sample needs --obs-addr (the trace fetch target)".into());
    }
    if args.iter().any(|a| a == "--twin-check") {
        twin_check(&addr, &synth_config)?;
        // The twin run routed every RPC through the target, so with
        // sampling on the obs endpoint must hold stitched traces.
        if trace_sample > 0 {
            let obs = obs_addr.as_deref().expect("checked above");
            let traces = adcast::net::loadgen::scrape_traces(obs)
                .map_err(|e| e.to_string())?
                .ok_or("trace sampling enabled but the obs endpoint holds no sampled trace")?;
            print_traces(&traces);
        }
        if !args.iter().any(|a| a == "--no-shutdown") {
            let mut client = Client::connect(addr.as_str(), &ClientConfig::default())
                .map_err(|e| e.to_string())?;
            client.shutdown().map_err(|e| e.to_string())?;
            eprintln!("server acknowledged shutdown");
        }
        return Ok(());
    }
    let workload = Arc::new(synth::build(&synth_config));
    let config = LoadgenConfig {
        connections: conns,
        obs_addr,
        trace_sample,
        ..LoadgenConfig::new(addr.clone())
    };
    let report = run(&config, &workload).map_err(|e| e.to_string())?;

    println!(
        "responses={} accepted={} deltas_per_sec={:.0} recommends={} sheds={} shed_rate={:.4} \
         reconnects={}",
        report.responses,
        report.deltas_accepted,
        report.deltas_per_sec(),
        report.recommends,
        report.sheds,
        report.shed_rate(),
        report.reconnects
    );
    println!(
        "rtt_us p50={:.1} p95={:.1} p99={:.1}",
        report.rtt.p50() as f64 / 1e3,
        report.rtt.p95() as f64 / 1e3,
        report.rtt.p99() as f64 / 1e3
    );
    println!(
        "server: deltas={} recommends={} rpcs={} shed={} connections={}",
        report.server.deltas,
        report.server.recommends,
        report.server.rpcs,
        report.server.shed,
        report.server.connections
    );
    // All zero when the server runs without --data-dir.
    println!(
        "durability: wal_records={} wal_fsyncs={} snapshots_written={} \
         recovered_records={} recovered_truncated_bytes={}",
        report.server.wal_records,
        report.server.wal_fsyncs,
        report.server.snapshots_written,
        report.server.recovered_records,
        report.server.recovered_truncated_bytes
    );

    if let Some(obs) = &report.obs {
        if !obs.healthy {
            return Err("obs scrape: /healthz did not answer 200".into());
        }
        if obs.stages.is_empty() {
            return Err("obs scrape: no stage histograms in /metrics".into());
        }
        for (name, p50, p99) in &obs.stages {
            println!(
                "server stage {name} p50_us={:.1} p99_us={:.1}",
                *p50 as f64 / 1e3,
                *p99 as f64 / 1e3
            );
        }
        let index = obs
            .index
            .as_ref()
            .ok_or("obs scrape: blocked-index families (adcast_index_*) missing from /metrics")?;
        println!(
            "server index prune_ratio={:.2}% blocks_scanned={} blocks_skipped={} last_query_bp={}",
            index.prune_ratio() * 100.0,
            index.blocks_scanned,
            index.blocks_skipped,
            index.prune_ratio_bp
        );
        // Scripts grep this exact shape.
        println!(
            "obs: families={} bytes={} healthz=ok",
            obs.families, obs.bytes
        );
    }

    if let Some(traces) = &report.traces {
        print_traces(traces);
    }

    if !args.iter().any(|a| a == "--no-shutdown") {
        let mut client =
            Client::connect(addr.as_str(), &ClientConfig::default()).map_err(|e| e.to_string())?;
        client.shutdown().map_err(|e| e.to_string())?;
        eprintln!("server acknowledged shutdown");
    }
    if report.responses == 0 {
        return Err("no responses received".into());
    }
    Ok(())
}

fn print_traces(traces: &adcast::net::loadgen::TraceScrape) {
    for (hop, spans, p50, p99) in &traces.hops {
        println!(
            "trace hop {hop} spans={spans} p50_us={:.1} p99_us={:.1}",
            *p50 as f64 / 1e3,
            *p99 as f64 / 1e3
        );
    }
    // Scripts grep this exact shape.
    println!(
        "trace: traces={} best_id={:016x} best_spans={} best_nodes={}",
        traces.traces, traces.best.0, traces.best.1, traces.best.2
    );
}

/// The cluster consistency check: replay the workload through the
/// target and through an in-process single-node twin (same `apply`
/// path the server uses), then assert every user's served
/// recommendations are bit-identical — ads, scores, and order.
fn twin_check(addr: &str, synth_config: &SynthConfig) -> Result<(), String> {
    let workload = synth::build(synth_config);
    let engine_config = EngineConfig::default();
    let mut client = Client::connect(addr, &ClientConfig::default()).map_err(|e| e.to_string())?;
    let mut store = AdStore::new();
    let mut driver = ShardedDriver::new(workload.num_users, 2, engine_config.clone());

    // Campaigns in workload order: through the wire and into the twin.
    // Id agreement proves the cluster's broadcast kept one global
    // submission order on every partition.
    for spec in &workload.campaigns {
        let remote = client
            .submit_campaign(spec.clone())
            .map_err(|e| e.to_string())?;
        let sub = spec.clone().try_into_submission()?;
        let effect = apply_record(&mut store, &mut driver, WalRecord::Submit(sub))?;
        let ApplyEffect::Submitted { ad } = effect else {
            return Err("twin submit produced a non-submit effect".to_string());
        };
        if remote != ad {
            return Err(format!(
                "campaign id diverges: server assigned {}, twin {}",
                remote.0, ad.0
            ));
        }
    }

    let mut deltas = 0u64;
    for batch in &workload.batches {
        deltas += batch.len() as u64;
        let accepted = client.ingest(batch.clone()).map_err(|e| e.to_string())?;
        if u64::from(accepted) != batch.len() as u64 {
            return Err(format!(
                "server accepted {accepted} of {} deltas",
                batch.len()
            ));
        }
        apply_record(
            &mut store,
            &mut driver,
            WalRecord::IngestBatch(batch.clone()),
        )?;
    }
    eprintln!(
        "twin fed: {} campaigns, {deltas} deltas; sweeping {} users…",
        workload.campaigns.len(),
        workload.num_users
    );

    let k = u16::try_from(engine_config.k).unwrap_or(u16::MAX);
    let mut served = 0u64;
    for u in 0..workload.num_users {
        let user = UserId(u);
        let home = workload.homes[user.index()];
        let remote = client
            .recommend(user, workload.end_time, home, k)
            .map_err(|e| e.to_string())?;
        let local = driver.recommend(&store, user, workload.end_time, home, engine_config.k);
        if remote != local {
            return Err(format!(
                "user {u}: served recommendations diverge from the twin \
                 (remote {} result(s), local {})",
                remote.len(),
                local.len()
            ));
        }
        served += remote.len() as u64;
    }
    // Scripts grep this exact shape.
    println!(
        "twin check: users={} served={served} bit-identical",
        workload.num_users
    );
    Ok(())
}
