//! Topic-structured, impact-skewed synthetic campaigns for the
//! index-scaling measurements (E15 and the `index` section of
//! `perf_summary`).
//!
//! The vocabulary is partitioned into a **fixed** number of topics; every
//! campaign draws (nearly) all of a single topic's terms. Because the
//! term space stays put while the corpus grows, posting lists get longer
//! in direct proportion to |A| — exactly the regime where an exhaustive
//! walk degrades linearly and an impact-ordered blocked index must prune
//! to stay flat.
//!
//! Weights are `quality × jitter`: each campaign has one skewed quality
//! factor (`u⁴`, so a few strong campaigns and a long light tail) that
//! multiplies every term weight. Quality correlating across an ad's terms
//! is what makes impact ordering effective (the head of every posting
//! list is the same handful of strong campaigns) and mirrors how a
//! CTR/quality multiplier scales a real campaign's keyword weights.

use std::sync::Arc;
use std::time::Instant;

use adcast_ads::{AdStore, AdSubmission, Budget, Targeting};
use adcast_core::{EngineConfig, IndexScanEngine, RecommendationEngine};
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_metrics::LatencyHistogram;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::{LocationId, Message, MessageId};
use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Fixed topic count: lists grow with |A|, the term space does not.
pub const TOPICS: u32 = 1024;
/// Terms per topic (vocabulary = `TOPICS × TERMS_PER_TOPIC`).
pub const TERMS_PER_TOPIC: u32 = 12;
/// The measured user's interest topic (the bulk of their feed). A
/// focused context keeps the frontier bound realizable by a single ad —
/// Σ ctx·block_max over one topic's cursors is a sum some campaign can
/// actually attain, so the stop rule fires as soon as the impact heads
/// are exhausted.
pub const INTEREST_TOPIC: u32 = 0;

fn topic_term(rng: &mut SmallRng, topic: u32) -> TermId {
    TermId(topic * TERMS_PER_TOPIC + rng.gen_range(0..TERMS_PER_TOPIC))
}

/// One topic-structured campaign: its topic's full term set, weights
/// `quality × U(0.95, 1.0)` with `quality = u⁴`. Tight per-term jitter
/// keeps `Σ ctx·block_max` close to a score some campaign actually
/// attains, which is what lets the block-max stop rule fire early.
fn submission(rng: &mut SmallRng, topic: u32) -> AdSubmission {
    let quality: f32 = {
        let u: f32 = rng.gen_range(0.05f32..1.0);
        u * u * u * u
    };
    AdSubmission {
        vector: SparseVector::from_pairs((0..TERMS_PER_TOPIC).map(|t| {
            (
                TermId(topic * TERMS_PER_TOPIC + t),
                (quality * rng.gen_range(0.95f32..1.0)).max(1e-6),
            )
        })),
        bid: rng.gen_range(0.5f32..2.5),
        targeting: Targeting::everywhere(),
        budget: Budget::unlimited(),
        topic_hint: None,
    }
}

/// Build a store of `num_ads` campaigns spread uniformly over the fixed
/// topic space.
pub fn build_store(num_ads: u32, seed: u64) -> AdStore {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut store = AdStore::new();
    for _ in 0..num_ads {
        let topic = rng.gen_range(0..TOPICS);
        store.submit(submission(&mut rng, topic)).expect("valid ad");
    }
    store
}

/// Warm user 0's context with a sliding-window feed over the interest
/// topics plus light off-interest noise, and return the serve time to
/// query at. The context shape (a few heavy topics, a tail of weak
/// residue terms) is identical at every corpus size, so latency sweeps
/// measure index scaling and nothing else.
pub fn warm_context(engine: &mut IndexScanEngine, store: &AdStore) -> Timestamp {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut live: Vec<Arc<Message>> = Vec::new();
    let messages = 16u64;
    for i in 0..messages {
        // 2 in 3 messages are on-interest; the rest light noise topics.
        // The noise matters for the scaling shape: at a small corpus the
        // k-th threshold is weak, so the noise lists are walked too (the
        // pruned path degenerates to near-exhaustive, as it must); at a
        // large corpus the interest heads push the threshold far above
        // any noise bound and the same lists are skipped outright.
        let (topic, terms, lo, hi) = if i % 3 != 2 {
            (INTEREST_TOPIC, 4, 0.4f32, 1.0f32)
        } else {
            (rng.gen_range(1..TOPICS), 2, 0.1, 0.3)
        };
        let vector = SparseVector::from_pairs((0..terms).map(|_| {
            let t = topic_term(&mut rng, topic);
            (t, rng.gen_range(lo..hi))
        }));
        let msg = Arc::new(Message {
            id: MessageId(i),
            author: UserId(0),
            ts: Timestamp::from_secs(i + 1),
            location: LocationId(0),
            vector,
        });
        let evicted = if live.len() >= 8 {
            vec![live.remove(0)]
        } else {
            vec![]
        };
        live.push(msg.clone());
        engine.on_feed_delta(
            store,
            UserId(0),
            &FeedDelta {
                entered: Some(msg),
                evicted,
            },
        );
    }
    Timestamp::from_secs(messages + 1)
}

/// The engine configuration every index-scaling measurement uses: no
/// decay (stable latencies across the iteration loop).
pub fn bench_config() -> EngineConfig {
    EngineConfig {
        half_life: None,
        ..EngineConfig::default()
    }
}

/// Time `f` over `iters` calls and return the latency histogram.
pub fn measure(iters: u32, mut f: impl FnMut()) -> LatencyHistogram {
    let mut hist = LatencyHistogram::new();
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        hist.record_duration(t0.elapsed());
    }
    hist
}

/// [`measure`] repeated `runs` times, keeping the run with the lowest
/// p99. Tail percentiles of a single run conflate the code under test
/// with scheduler preemption bursts; the best-of-runs tail is the
/// reproducible one (any run free of an unlucky burst lands on it).
pub fn measure_best(runs: u32, iters: u32, mut f: impl FnMut()) -> LatencyHistogram {
    let mut best: Option<LatencyHistogram> = None;
    for _ in 0..runs.max(1) {
        let hist = measure(iters, &mut f);
        if best.as_ref().is_none_or(|b| hist.p99() < b.p99()) {
            best = Some(hist);
        }
    }
    best.expect("at least one run")
}

/// The block counters the pruned evaluator exports; reading them around
/// a measurement loop yields the prune ratio for exactly that loop.
pub struct PruneCounters {
    scanned: adcast_obs::Counter,
    skipped: adcast_obs::Counter,
}

impl PruneCounters {
    /// Resolve the registry handles (register-or-fetch: the engine owns
    /// the canonical registration).
    pub fn resolve() -> Self {
        let reg = adcast_obs::registry();
        PruneCounters {
            scanned: reg.counter(
                "adcast_index_blocks_scanned_total",
                "Posting blocks walked by the blocked index evaluators.",
            ),
            skipped: reg.counter(
                "adcast_index_blocks_skipped_total",
                "Posting blocks pruned by the block-max upper bound.",
            ),
        }
    }

    /// Current `(scanned, skipped)` totals.
    #[must_use]
    pub fn read(&self) -> (u64, u64) {
        (self.scanned.get(), self.skipped.get())
    }

    /// Prune ratio over the window since `before = read()`.
    #[must_use]
    pub fn ratio_since(&self, before: (u64, u64)) -> f64 {
        let scanned = self.scanned.get() - before.0;
        let skipped = self.skipped.get() - before.1;
        let total = scanned + skipped;
        if total == 0 {
            0.0
        } else {
            skipped as f64 / total as f64
        }
    }
}
