//! Geographic model: a 2-D cell grid over [`LocationId`]s.
//!
//! The flat `LocationId` space the rest of the system uses is given
//! geometry here: cells form a `width × height` grid (city-block
//! granularity), distances are Euclidean in cell units, and radius
//! queries expand a center cell into the set of nearby cells — which is
//! exactly what radius-targeted campaigns feed into
//! `Targeting::in_locations`.
//!
//! [`CityModel`] clusters users' home cells around a few city centers
//! (Box–Muller Gaussians — no `rand_distr` offline), replacing the
//! uniform home-cell assignment for geo experiments.

use rand::Rng;

use crate::event::LocationId;

/// A rectangular grid of location cells, row-major.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeoGrid {
    width: u16,
    height: u16,
}

impl GeoGrid {
    /// A `width × height` grid.
    ///
    /// # Panics
    ///
    /// Panics on empty grids or grids exceeding the `u16` cell-id space.
    pub fn new(width: u16, height: u16) -> Self {
        assert!(width > 0 && height > 0, "empty grid");
        assert!(
            (width as u32) * (height as u32) <= u16::MAX as u32 + 1,
            "grid exceeds the LocationId space"
        );
        GeoGrid { width, height }
    }

    /// Grid width in cells.
    pub fn width(&self) -> u16 {
        self.width
    }

    /// Grid height in cells.
    pub fn height(&self) -> u16 {
        self.height
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The cell at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn cell(&self, x: u16, y: u16) -> LocationId {
        assert!(
            x < self.width && y < self.height,
            "({x},{y}) outside {self:?}"
        );
        LocationId(y * self.width + x)
    }

    /// The `(x, y)` coordinates of a cell.
    pub fn coords(&self, cell: LocationId) -> (u16, u16) {
        debug_assert!(
            (cell.0 as usize) < self.num_cells(),
            "{cell:?} outside {self:?}"
        );
        (cell.0 % self.width, cell.0 / self.width)
    }

    /// Euclidean distance between cell centers, in cell units.
    pub fn distance(&self, a: LocationId, b: LocationId) -> f64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = f64::from(ax) - f64::from(bx);
        let dy = f64::from(ay) - f64::from(by);
        (dx * dx + dy * dy).sqrt()
    }

    /// All cells within `radius` (inclusive) of `center`, sorted by id.
    pub fn cells_within(&self, center: LocationId, radius: f64) -> Vec<LocationId> {
        assert!(radius >= 0.0, "negative radius");
        let (cx, cy) = self.coords(center);
        let r = radius.ceil() as i32;
        let mut out = Vec::new();
        for dy in -r..=r {
            for dx in -r..=r {
                let x = cx as i32 + dx;
                let y = cy as i32 + dy;
                if x < 0 || y < 0 || x >= self.width as i32 || y >= self.height as i32 {
                    continue;
                }
                let cell = self.cell(x as u16, y as u16);
                if self.distance(center, cell) <= radius {
                    out.push(cell);
                }
            }
        }
        out
    }

    /// A uniformly random cell.
    pub fn random_cell<R: Rng + ?Sized>(&self, rng: &mut R) -> LocationId {
        LocationId(rng.gen_range(0..self.num_cells() as u16))
    }
}

/// Users' homes clustered around city centers.
#[derive(Debug, Clone)]
pub struct CityModel {
    grid: GeoGrid,
    /// `(x, y, spread)` per city, in cell units.
    cities: Vec<(f64, f64, f64)>,
    /// Relative population weight per city (normalized on construction).
    weights: Vec<f64>,
}

impl CityModel {
    /// Cities at the given centers with Gaussian spread and population
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics on an empty city list or non-positive spreads/weights.
    pub fn new(grid: GeoGrid, cities: Vec<(f64, f64, f64)>, weights: Vec<f64>) -> Self {
        assert!(!cities.is_empty(), "need at least one city");
        assert_eq!(cities.len(), weights.len(), "one weight per city");
        assert!(
            cities.iter().all(|&(_, _, s)| s > 0.0),
            "spreads must be positive"
        );
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let total: f64 = weights.iter().sum();
        let weights = weights.into_iter().map(|w| w / total).collect();
        CityModel {
            grid,
            cities,
            weights,
        }
    }

    /// A default three-city layout on the given grid: one metropolis and
    /// two towns.
    pub fn three_cities(grid: GeoGrid) -> Self {
        let w = f64::from(grid.width());
        let h = f64::from(grid.height());
        CityModel::new(
            grid,
            vec![
                (w * 0.3, h * 0.3, w * 0.08), // metropolis
                (w * 0.75, h * 0.6, w * 0.05),
                (w * 0.2, h * 0.8, w * 0.04),
            ],
            vec![3.0, 1.0, 0.6],
        )
    }

    /// The grid.
    pub fn grid(&self) -> GeoGrid {
        self.grid
    }

    /// Which city a user drawn uniformly in `[0,1)` belongs to.
    fn pick_city<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let mut u: f64 = rng.gen();
        for (i, &w) in self.weights.iter().enumerate() {
            if u < w {
                return i;
            }
            u -= w;
        }
        self.weights.len() - 1
    }

    /// Draw a home cell: Gaussian around the chosen city center, clamped
    /// to the grid.
    pub fn sample_home<R: Rng + ?Sized>(&self, rng: &mut R) -> LocationId {
        let (cx, cy, spread) = self.cities[self.pick_city(rng)];
        let (gx, gy) = gaussian_pair(rng);
        let x = (cx + gx * spread)
            .round()
            .clamp(0.0, f64::from(self.grid.width() - 1));
        let y = (cy + gy * spread)
            .round()
            .clamp(0.0, f64::from(self.grid.height() - 1));
        self.grid.cell(x as u16, y as u16)
    }

    /// The nearest city center's cell (for targeting anchors).
    pub fn city_center(&self, city: usize) -> LocationId {
        let (x, y, _) = self.cities[city];
        self.grid.cell(
            (x.round() as u16).min(self.grid.width() - 1),
            (y.round() as u16).min(self.grid.height() - 1),
        )
    }

    /// Number of cities.
    pub fn num_cities(&self) -> usize {
        self.cities.len()
    }
}

/// One standard-normal pair via Box–Muller.
fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cell_coords_roundtrip() {
        let g = GeoGrid::new(16, 8);
        assert_eq!(g.num_cells(), 128);
        for y in 0..8 {
            for x in 0..16 {
                let c = g.cell(x, y);
                assert_eq!(g.coords(c), (x, y));
            }
        }
    }

    #[test]
    fn distances() {
        let g = GeoGrid::new(10, 10);
        let a = g.cell(0, 0);
        assert_eq!(g.distance(a, a), 0.0);
        assert_eq!(g.distance(a, g.cell(3, 4)), 5.0);
        assert_eq!(g.distance(g.cell(3, 4), a), 5.0);
    }

    #[test]
    fn radius_queries() {
        let g = GeoGrid::new(10, 10);
        let center = g.cell(5, 5);
        let r0 = g.cells_within(center, 0.0);
        assert_eq!(r0, vec![center]);
        let r1 = g.cells_within(center, 1.0);
        assert_eq!(r1.len(), 5, "von Neumann neighbourhood at radius 1");
        let r15 = g.cells_within(center, 1.5);
        assert_eq!(r15.len(), 9, "Moore neighbourhood at radius 1.5");
        for &c in &r15 {
            assert!(g.distance(center, c) <= 1.5);
        }
    }

    #[test]
    fn radius_clips_at_borders() {
        let g = GeoGrid::new(10, 10);
        let corner = g.cell(0, 0);
        let cells = g.cells_within(corner, 1.0);
        assert_eq!(cells.len(), 3, "corner has only 2 in-grid neighbours");
    }

    #[test]
    fn big_radius_covers_everything() {
        let g = GeoGrid::new(6, 6);
        assert_eq!(g.cells_within(g.cell(3, 3), 100.0).len(), 36);
    }

    #[test]
    fn city_homes_cluster() {
        let grid = GeoGrid::new(100, 100);
        let model = CityModel::three_cities(grid);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut near_any_city = 0;
        const N: usize = 2000;
        for _ in 0..N {
            let home = model.sample_home(&mut rng);
            let nearest = (0..model.num_cities())
                .map(|c| grid.distance(home, model.city_center(c)))
                .fold(f64::INFINITY, f64::min);
            if nearest <= 20.0 {
                near_any_city += 1;
            }
        }
        let frac = near_any_city as f64 / N as f64;
        assert!(frac > 0.9, "homes should cluster near cities, got {frac}");
    }

    #[test]
    fn city_weights_skew_population() {
        let grid = GeoGrid::new(100, 100);
        let model = CityModel::three_cities(grid);
        let mut rng = SmallRng::seed_from_u64(2);
        let metro = model.city_center(0);
        let town = model.city_center(2);
        let (mut near_metro, mut near_town) = (0, 0);
        for _ in 0..3000 {
            let home = model.sample_home(&mut rng);
            if grid.distance(home, metro) < 15.0 {
                near_metro += 1;
            }
            if grid.distance(home, town) < 15.0 {
                near_town += 1;
            }
        }
        assert!(
            near_metro > 2 * near_town,
            "metropolis ({near_metro}) should out-populate the town ({near_town})"
        );
    }

    #[test]
    fn gaussian_pair_is_standard_normal_ish() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        const N: usize = 20_000;
        for _ in 0..N / 2 {
            let (a, b) = gaussian_pair(&mut rng);
            sum += a + b;
            sumsq += a * a + b * b;
        }
        let mean = sum / N as f64;
        let var = sumsq / N as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "variance {var}");
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn empty_grid_panics() {
        let _ = GeoGrid::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "LocationId space")]
    fn oversized_grid_panics() {
        let _ = GeoGrid::new(1000, 1000);
    }
}
