#!/usr/bin/env bash
# Opt-in deep checking for the concurrency- and allocation-sensitive tests:
#
#   scripts/sanitize.sh miri    # Miri interprets the pool/zero-alloc tests
#   scripts/sanitize.sh tsan    # ThreadSanitizer over the same tests
#   scripts/sanitize.sh asan    # AddressSanitizer over the same tests
#   scripts/sanitize.sh         # all of the above, in that order
#
# Every mode needs a nightly toolchain (Miri additionally needs the miri
# component; the sanitizers need rust-src for -Zbuild-std). None of that is
# guaranteed in the offline container, so ABSENCE IS NOT FAILURE: each mode
# prints why it is skipped and the script exits 0. adcast-lint's static
# `no-alloc-steady-state` / `unsafe-needs-safety` rules (scripts/check.sh)
# remain the always-on line of defense; this script is the dynamic
# counterpart for machines that have the tooling.
set -euo pipefail
cd "$(dirname "$0")/.."

# The tests worth the (large) sanitizer slowdown: the sharded pool's
# equivalence-vs-sequential property, the steady-state allocation gauge
# (needs debug-stats for the counting global allocator), the cluster
# partition-map unit tests, and the replication apply-path unit tests
# (`replica_append` ordering, fencing, LSN gaps — the code the
# `ack-ladder` lint pins statically). Each entry is a full flag group
# including its package.
TARGETS=(
  "-p adcast-core --test pool_equivalence"
  "-p adcast-core --features debug-stats --test zero_alloc"
  "-p adcast-cluster --lib"
  "-p adcast-net --lib replication"
)

target_list() {
  printf '%s\n' "${TARGETS[@]}" | sed 's/.*-p \([a-z-]*\).*/\1/' \
    | sort -u | paste -sd, -
}

have_nightly() {
  command -v rustup >/dev/null 2>&1 || return 1
  rustup toolchain list 2>/dev/null | grep -q nightly
}

run_miri() {
  if ! have_nightly; then
    echo "miri: skipped (no rustup nightly toolchain in this environment)"
    return 0
  fi
  if ! rustup component list --toolchain nightly 2>/dev/null \
      | grep -q 'miri.*(installed)'; then
    echo "miri: skipped (nightly is present but the miri component is not)"
    return 0
  fi
  echo "== miri: $(target_list) =="
  # The replication tests write WAL files to a temp dir and spawn shard
  # workers; Miri needs host file-system access for that.
  export MIRIFLAGS="${MIRIFLAGS:--Zmiri-disable-isolation}"
  for t in "${TARGETS[@]}"; do
    # shellcheck disable=SC2086  # $t is a flag group, word-splitting intended
    cargo +nightly miri test $t
  done
}

run_sanitizer() {
  local san="$1" flag="$2"
  if ! have_nightly; then
    echo "$san: skipped (no rustup nightly toolchain in this environment)"
    return 0
  fi
  if ! rustup component list --toolchain nightly 2>/dev/null \
      | grep -q 'rust-src.*(installed)'; then
    echo "$san: skipped (nightly lacks rust-src; -Zbuild-std needs it)"
    return 0
  fi
  local target
  target=$(rustc -vV | awk '/^host:/{print $2}')
  echo "== $san: $(target_list) =="
  for t in "${TARGETS[@]}"; do
    # shellcheck disable=SC2086  # $t is a flag group, word-splitting intended
    RUSTFLAGS="-Zsanitizer=$flag" cargo +nightly test -Zbuild-std \
      --target "$target" $t
  done
}

mode="${1:-all}"
case "$mode" in
  miri) run_miri ;;
  tsan) run_sanitizer tsan thread ;;
  asan) run_sanitizer asan address ;;
  all)
    run_miri
    run_sanitizer tsan thread
    run_sanitizer asan address
    ;;
  *)
    echo "usage: scripts/sanitize.sh [miri|tsan|asan|all]" >&2
    exit 2
    ;;
esac
echo "sanitize: done (modes that lacked tooling were skipped, not failed)"
