//! Machine-readable performance snapshot → `results/bench_summary.json`.
//!
//! Measures the three numbers every perf PR must not regress — incremental
//! deltas/sec, recommend p50/p99 latency, resident memory — plus the
//! sharded-pool throughput and the sparse-kernel micro timings, and writes
//! them through [`adcast_bench::BenchSummary`] so successive PRs leave a
//! comparable trajectory. Scale via `ADCAST_SCALE` (`quick` | `paper`).

use std::sync::Arc;
use std::time::Instant;

use adcast_ads::{AdStore, AdSubmission, Budget, Targeting};
use adcast_bench::{BenchSummary, Scale};
use adcast_core::driver::ShardedDriver;
use adcast_core::{DriverConfig, EngineConfig, IncrementalEngine, RecommendationEngine};
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_metrics::LatencyHistogram;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::{LocationId, Message, MessageId};
use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn random_vector(rng: &mut SmallRng, terms: usize, vocab: u32) -> SparseVector {
    SparseVector::from_pairs(
        (0..terms).map(|_| (TermId(rng.gen_range(0..vocab)), rng.gen_range(0.05f32..1.0))),
    )
}

fn build_store(rng: &mut SmallRng, num_ads: u32, vocab: u32) -> AdStore {
    let mut store = AdStore::new();
    for _ in 0..num_ads {
        store
            .submit(AdSubmission {
                vector: random_vector(rng, 8, vocab),
                bid: 1.0,
                targeting: Targeting::everywhere(),
                budget: Budget::unlimited(),
                topic_hint: None,
            })
            .expect("valid ad");
    }
    store
}

/// A per-user sliding-window delta stream in arrival order.
fn build_workload(
    rng: &mut SmallRng,
    num_users: u32,
    n: u64,
    vocab: u32,
    window: usize,
) -> Vec<(UserId, FeedDelta)> {
    let mut windows: Vec<Vec<Arc<Message>>> = (0..num_users).map(|_| Vec::new()).collect();
    (0..n)
        .map(|i| {
            let user = UserId(rng.gen_range(0..num_users));
            let msg = Arc::new(Message {
                id: MessageId(i),
                author: user,
                ts: Timestamp::from_secs(i / 64),
                location: LocationId(0),
                vector: random_vector(rng, 3, vocab),
            });
            let w = &mut windows[user.index()];
            let evicted = if w.len() >= window {
                vec![w.remove(0)]
            } else {
                vec![]
            };
            w.push(msg.clone());
            (
                user,
                FeedDelta {
                    entered: Some(msg),
                    evicted,
                },
            )
        })
        .collect()
}

fn time_per_iter(iters: u64, mut f: impl FnMut()) -> f64 {
    let started = Instant::now();
    for _ in 0..iters {
        f();
    }
    started.elapsed().as_secs_f64() / iters as f64
}

fn main() {
    let scale = Scale::from_env();
    let num_users = scale.pick(2_000u32, 10_000);
    let num_ads = scale.pick(5_000u32, 30_000);
    let warm = scale.pick(20_000u64, 100_000);
    let measured = scale.pick(20_000u64, 200_000);
    let vocab = 20_000u32;

    let mut rng = SmallRng::seed_from_u64(0xBE7C);
    let store = build_store(&mut rng, num_ads, vocab);
    let workload = build_workload(&mut rng, num_users, warm + measured, vocab, 16);
    let mut summary = BenchSummary::new();

    // --- Incremental engine: deltas/sec, recommend p50/p99, memory. ---
    let mut engine = IncrementalEngine::new(num_users, EngineConfig::default());
    for (u, d) in &workload[..warm as usize] {
        engine.on_feed_delta(&store, *u, d);
    }
    let started = Instant::now();
    for (u, d) in &workload[warm as usize..] {
        engine.on_feed_delta(&store, *u, d);
    }
    let deltas_per_sec = measured as f64 / started.elapsed().as_secs_f64().max(1e-9);

    let mut hist = LatencyHistogram::new();
    let now = Timestamp::from_secs((warm + measured) / 64 + 1);
    for i in 0..scale.pick(5_000u32, 20_000) {
        let u = UserId(i % num_users);
        let t0 = Instant::now();
        let recs = engine.recommend(&store, u, now, LocationId(0), 10);
        hist.record_duration(t0.elapsed());
        std::hint::black_box(recs.len());
    }
    summary.metric("incremental", "deltas_per_sec", deltas_per_sec);
    summary.metric("incremental", "recommend_p50_ns", hist.p50() as f64);
    summary.metric("incremental", "recommend_p99_ns", hist.p99() as f64);
    summary.metric("incremental", "memory_bytes", engine.memory_bytes() as f64);
    println!(
        "incremental: {:.0} deltas/s, recommend p50 {} ns / p99 {} ns, {} bytes",
        deltas_per_sec,
        hist.p50(),
        hist.p99(),
        engine.memory_bytes()
    );

    // --- Sharded pool: batch throughput and resident memory by shards. ---
    let batch_size = 1_000usize;
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for shards in [1usize, 2, 4, 8] {
        if shards > available * 2 {
            break;
        }
        let mut driver = ShardedDriver::with_config(
            num_users,
            DriverConfig {
                num_shards: shards,
                engine: EngineConfig::default(),
            },
        );
        let started = Instant::now();
        for batch in workload.chunks(batch_size) {
            driver
                .process_batch(&store, batch.to_vec())
                .expect("pool alive");
        }
        let rate = workload.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
        let section = format!("pool_{shards}_shards");
        summary.metric(&section, "deltas_per_sec", rate);
        summary.metric(&section, "memory_bytes", driver.memory_bytes() as f64);
        println!(
            "{section}: {rate:.0} deltas/s, {} bytes",
            driver.memory_bytes()
        );
    }

    // --- Serving layer: loopback loadgen RTT and achieved throughput. ---
    {
        let driver = ShardedDriver::new(
            scale.pick(400u32, 4_000),
            2.min(available),
            EngineConfig::default(),
        );
        let server = adcast_net::Server::start(
            "127.0.0.1:0",
            adcast_net::ServerConfig::default(),
            AdStore::new(),
            driver,
        )
        .expect("bind loopback");
        let synth_cfg = adcast_net::synth::SynthConfig {
            num_users: scale.pick(400u32, 4_000),
            num_ads: scale.pick(300usize, 2_000),
            messages: scale.pick(1_500u64, 20_000),
            batch_size: scale.pick(200usize, 500),
            msgs_per_sec: 200.0,
            seed: 0xADCA57,
        };
        let synth_workload = Arc::new(adcast_net::synth::build(&synth_cfg));
        let config = adcast_net::LoadgenConfig {
            connections: 2.min(available),
            ..adcast_net::LoadgenConfig::new(server.addr().to_string())
        };
        let report = adcast_net::loadgen::run(&config, &synth_workload).expect("loadgen run");
        summary.metric("serving", "deltas_per_sec", report.deltas_per_sec());
        summary.metric("serving", "rtt_p50_ns", report.rtt.p50() as f64);
        summary.metric("serving", "rtt_p99_ns", report.rtt.p99() as f64);
        summary.metric("serving", "shed_rate", report.shed_rate());
        println!(
            "serving: {:.0} deltas/s over {} conns, rtt p50 {} ns / p99 {} ns, shed rate {:.4}",
            report.deltas_per_sec(),
            report.connections,
            report.rtt.p50(),
            report.rtt.p99(),
            report.shed_rate()
        );
        server.shutdown();
        server.join();
    }

    // --- Durability: the fsync tax on ingest + the recovery replay rate. ---
    {
        use adcast_durability::{
            apply_record, recover, Durability, DurabilityOptions, FsyncPolicy, WalOptions,
            WalRecord,
        };

        let deltas = scale.pick(10_000usize, 50_000);
        let slice = &workload[..deltas.min(workload.len())];
        let mut always_dir = None;
        for policy in [FsyncPolicy::Off, FsyncPolicy::Always] {
            let dir = std::env::temp_dir().join(format!(
                "adcast-perf-durability-{}-{policy}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let wal = WalOptions {
                fsync: policy,
                ..WalOptions::default()
            };
            let recovered =
                recover(&dir, num_users, 2, EngineConfig::default(), wal).expect("cold start");
            let mut wal_store = AdStore::new();
            let mut driver = ShardedDriver::new(num_users, 2, EngineConfig::default());
            let mut durability = Durability::new(
                &dir,
                recovered.wal,
                DurabilityOptions {
                    wal,
                    ..DurabilityOptions::default()
                },
                recovered.report,
            );
            let started = Instant::now();
            for batch in slice.chunks(500) {
                let record = WalRecord::IngestBatch(batch.to_vec());
                durability.log(&record).expect("log batch");
                durability.commit().expect("commit batch");
                apply_record(&mut wal_store, &mut driver, record).expect("apply batch");
            }
            let rate = slice.len() as f64 / started.elapsed().as_secs_f64().max(1e-9);
            summary.metric(
                "durability",
                &format!("deltas_per_sec_fsync_{policy}"),
                rate,
            );
            println!("durability fsync={policy}: {rate:.0} deltas/s");
            drop(durability);
            if policy == FsyncPolicy::Always {
                always_dir = Some(dir);
            } else {
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
        if let Some(dir) = always_dir {
            let started = Instant::now();
            let recovered = recover(
                &dir,
                num_users,
                2,
                EngineConfig::default(),
                WalOptions::default(),
            )
            .expect("recover");
            let secs = started.elapsed().as_secs_f64().max(1e-9);
            let replayed = recovered.report.replayed_records;
            // Each replayed record is one 500-delta batch; deltas/sec is
            // the comparable unit against the ingest rates above.
            summary.metric(
                "durability",
                "recover_deltas_per_sec",
                slice.len() as f64 / secs,
            );
            summary.metric("durability", "recover_ms", secs * 1e3);
            println!(
                "durability recovery: {replayed} records ({} deltas) in {:.1} ms",
                slice.len(),
                secs * 1e3
            );
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    // --- Cluster: the same loadgen through a 2-partition router fleet,
    // so routed throughput and the router hop's RTT tax travel with the
    // single-node serving numbers. The split metric is the smaller
    // partition's share of applied deltas (0.5 = perfectly balanced). ---
    {
        use adcast_cluster::{PartitionMap, Router, RouterConfig};
        use adcast_net::{ClientConfig, ClusterConfig, ClusterState};

        let num_users = scale.pick(400u32, 4_000);
        let mut nodes = Vec::new();
        let mut specs = Vec::new();
        for p in 0..2u16 {
            let server = adcast_net::Server::start_cluster(
                "127.0.0.1:0",
                adcast_net::ServerConfig::default(),
                AdStore::new(),
                ShardedDriver::new(num_users, 1, EngineConfig::default()),
                None,
                ClusterConfig {
                    state: ClusterState::primary(p, 0),
                    ..ClusterConfig::default()
                },
            )
            .expect("bind cluster node");
            specs.push(server.addr().to_string());
            nodes.push(server);
        }
        let map = PartitionMap::parse(&specs).expect("partition map");
        // Head sampling on (every 64th client RPC) so the tracing section
        // below can count real stitched traces out of this run.
        let router = Router::start(
            "127.0.0.1:0",
            &map,
            RouterConfig {
                trace_sample: 64,
                trace_seed: 0xADCA57,
                ..RouterConfig::default()
            },
        )
        .expect("bind router");
        let synth_cfg = adcast_net::synth::SynthConfig {
            num_users,
            num_ads: scale.pick(300usize, 2_000),
            messages: scale.pick(1_500u64, 20_000),
            batch_size: scale.pick(200usize, 500),
            msgs_per_sec: 200.0,
            seed: 0xADCA57,
        };
        let synth_workload = Arc::new(adcast_net::synth::build(&synth_cfg));
        let config = adcast_net::LoadgenConfig {
            connections: 2.min(available),
            ..adcast_net::LoadgenConfig::new(router.addr().to_string())
        };
        let report = adcast_net::loadgen::run(&config, &synth_workload).expect("routed loadgen");
        let per_node: Vec<u64> = nodes
            .iter()
            .map(|node| {
                adcast_net::Client::connect(node.addr().to_string(), &ClientConfig::default())
                    .and_then(|mut c| c.stats())
                    .map(|s| s.deltas)
                    .unwrap_or(0)
            })
            .collect();
        let total: u64 = per_node.iter().sum();
        let min_share = per_node
            .iter()
            .map(|&n| n as f64 / total.max(1) as f64)
            .fold(1.0f64, f64::min);
        assert!(
            min_share >= 0.3,
            "2-partition split {per_node:?} is unbalanced"
        );
        summary.metric("cluster", "partitions", 2.0);
        summary.metric("cluster", "deltas_per_sec", report.deltas_per_sec());
        summary.metric("cluster", "rtt_p50_ns", report.rtt.p50() as f64);
        summary.metric("cluster", "rtt_p99_ns", report.rtt.p99() as f64);
        summary.metric("cluster", "shed_rate", report.shed_rate());
        summary.metric("cluster", "min_partition_share", min_share);
        println!(
            "cluster: {:.0} deltas/s through the router over 2 partitions \
             (split {per_node:?}), rtt p50 {} ns / p99 {} ns",
            report.deltas_per_sec(),
            report.rtt.p50(),
            report.rtt.p99()
        );
        router.shutdown();
        router.join();
        for node in &nodes {
            node.shutdown();
        }
        for node in nodes {
            node.join();
        }
    }

    // --- Static analysis: rule and suppression counts, so pragma creep
    // shows up in the same trajectory as the perf numbers. ---
    {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let report = adcast_lint::lint_workspace(&root, None).expect("lint walk");
        summary.metric("lint", "rules", report.rule_count() as f64);
        summary.metric("lint", "suppressions", report.suppressions as f64);
        summary.metric("lint", "diagnostics", report.diagnostics.len() as f64);
        summary.metric("lint", "files_scanned", report.files_scanned as f64);
        println!(
            "lint: {} rule(s), {} suppression(s), {} diagnostic(s) over {} file(s)",
            report.rule_count(),
            report.suppressions,
            report.diagnostics.len(),
            report.files_scanned
        );
        // Acceptance gates: the v2 engine registers at least 12 rules, and
        // every pragma carries a non-empty reason (a reasonless allow() is
        // a `suppression` diagnostic, so any such diagnostic fails here).
        assert!(
            report.rule_count() >= 12,
            "lint engine regressed to {} rule(s); expected at least 12",
            report.rule_count()
        );
        let pragma_rot: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.rule == adcast_lint::SUPPRESSION_RULE)
            .collect();
        assert!(
            pragma_rot.is_empty(),
            "suppression pragmas without a reason (or suppressing nothing): {pragma_rot:?}"
        );
    }

    // --- Deterministic simulation: the smoke scenario (virtual time,
    // crash + twin check, WAL-logged maintenance) as a trajectory point,
    // so harness throughput and lifecycle counters travel with the perf
    // numbers. Nonzero decayed/pruned is an acceptance invariant. ---
    {
        use adcast_sim::{run, Fault, FaultAt, SimConfig};

        let mut cfg = SimConfig::smoke(0xADCA57);
        cfg.faults = vec![FaultAt {
            at_batch: 3,
            fault: Fault::Crash,
        }];
        let started = Instant::now();
        let outcome = run(cfg).expect("sim smoke scenario");
        let secs = started.elapsed().as_secs_f64().max(1e-9);
        let c = &outcome.counters;
        assert_eq!(c.crashes, c.twin_checks, "every crash must twin-check");
        assert!(c.maint_decayed > 0, "smoke scenario must decay idle users");
        assert!(
            c.maint_pruned > 0,
            "smoke scenario must prune ended flights"
        );
        summary.metric("sim", "deltas", c.deltas as f64);
        summary.metric("sim", "deltas_per_sec", c.deltas as f64 / secs);
        summary.metric("sim", "batches", c.batches as f64);
        summary.metric("sim", "sheds", c.sheds as f64);
        summary.metric("sim", "crashes", c.crashes as f64);
        summary.metric("sim", "twin_checks", c.twin_checks as f64);
        summary.metric("sim", "disk_bytes", c.disk_bytes as f64);
        summary.metric("sim", "wall_ms", secs * 1e3);
        summary.metric("maintenance", "passes", c.maint_passes as f64);
        summary.metric("maintenance", "scanned", c.maint_scanned as f64);
        summary.metric("maintenance", "decayed", c.maint_decayed as f64);
        summary.metric("maintenance", "pruned", c.maint_pruned as f64);
        println!(
            "sim: {} deltas ({:.0}/s) over {} batches in {:.0} ms, {} crash(es) twin-checked, \
             {} shed(s), {} disk bytes",
            c.deltas,
            c.deltas as f64 / secs,
            c.batches,
            secs * 1e3,
            c.crashes,
            c.sheds,
            c.disk_bytes
        );
        println!(
            "maintenance: {} pass(es), scanned {}, decayed {}, pruned {}",
            c.maint_passes, c.maint_scanned, c.maint_decayed, c.maint_pruned
        );
    }

    // --- Observability: per-record overhead and exposition size. The
    // registry is process-wide, so by now it holds every family the
    // engine, pool, serving, and durability runs above registered. ---
    {
        let reg = adcast_obs::registry();
        let iters = scale.pick(200_000u64, 1_000_000);
        let counter = reg.counter("bench_obs_counter_total", "perf_summary counter probe");
        let counter_ns = time_per_iter(iters, || {
            counter.add(std::hint::black_box(1));
        }) * 1e9;
        let hist = reg.hist("bench_obs_hist_ns", "perf_summary histogram probe");
        let mut v = 1u64;
        let record_ns = time_per_iter(iters, || {
            // Cheap LCG so every bucket regime is exercised, not one line.
            v = v.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            hist.record(std::hint::black_box(v >> 33));
        }) * 1e9;
        let rec = adcast_obs::FlightRecorder::new(4096);
        let flightrec_ns = time_per_iter(iters, || {
            rec.record(
                adcast_obs::EventKind::Admission,
                1,
                std::hint::black_box(250),
                0,
            );
        }) * 1e9;
        let exposition = reg.expose();
        summary.metric("obs", "counter_inc_ns", counter_ns);
        summary.metric("obs", "hist_record_ns", record_ns);
        summary.metric("obs", "flightrec_record_ns", flightrec_ns);
        summary.metric("obs", "metric_families", reg.len() as f64);
        summary.metric("obs", "exposition_bytes", exposition.len() as f64);
        println!(
            "obs: counter {counter_ns:.1} ns, hist record {record_ns:.1} ns, flightrec \
             {flightrec_ns:.1} ns, {} families, {} exposition bytes",
            reg.len(),
            exposition.len()
        );
    }

    // --- Tracing: the span-record hot path against its 100 ns budget,
    // the ring's resident size, and the sampled traces the cluster run
    // above (head sampling every 64th RPC) left in the process ring. ---
    {
        use adcast_obs::tracestore::{
            tracestore, SpanKind, TraceContext, TraceStore, TRACE_CAPACITY,
        };

        let store = TraceStore::new(TRACE_CAPACITY);
        let ctx = TraceContext {
            trace_id: 0xBEEF,
            parent_span_id: 0,
        };
        let iters = scale.pick(200_000u64, 1_000_000);
        let mut salt = 0u64;
        let span_record_ns = time_per_iter(iters, || {
            salt = salt.wrapping_add(1);
            store.record(std::hint::black_box(ctx), SpanKind::QueueWait, salt, 1, 250);
        }) * 1e9;
        assert!(
            span_record_ns <= 100.0,
            "span record {span_record_ns:.1} ns blows the 100 ns hot-path budget"
        );
        let sampled = tracestore().trace_ids().len();
        assert!(
            sampled > 0,
            "the routed run sampled every 64th RPC yet left no traces"
        );
        summary.metric("tracing", "span_record_ns", span_record_ns);
        summary.metric("tracing", "store_bytes", store.store_bytes() as f64);
        summary.metric("tracing", "sampled_traces", sampled as f64);
        println!(
            "tracing: span record {span_record_ns:.1} ns, {} ring bytes, {sampled} sampled \
             trace(s) from the routed run",
            store.store_bytes()
        );
    }

    // --- Blocked ad index: pruned vs exhaustive recommend at the E15
    // endpoints. Corpus sizes are fixed (10k and 1M ads — the scaling
    // claim is about those two points, so the trajectory stays comparable
    // across scales); ADCAST_SCALE only tunes the iteration counts. ---
    {
        use adcast_bench::indexsynth::{
            bench_config, build_store, measure_best, warm_context, PruneCounters,
        };
        use adcast_core::IndexScanEngine;

        let counters = PruneCounters::resolve();
        let iters = scale.pick(2_000u32, 5_000);
        let mut p99 = [0.0f64; 2];
        for (i, (num_ads, label)) in [(10_000u32, "10k"), (1_000_000, "1m")].iter().enumerate() {
            let index_store = build_store(*num_ads, 0xE15);
            let mut engine = IndexScanEngine::new(1, bench_config());
            let at = warm_context(&mut engine, &index_store);
            // Warm both paths (scratch capacities + accumulator pages).
            for _ in 0..20 {
                std::hint::black_box(engine.recommend(
                    &index_store,
                    UserId(0),
                    at,
                    LocationId(0),
                    10,
                ));
                std::hint::black_box(engine.recommend_exhaustive(
                    &index_store,
                    UserId(0),
                    at,
                    LocationId(0),
                    10,
                ));
            }
            let before = counters.read();
            let pruned = measure_best(5, iters, || {
                std::hint::black_box(engine.recommend(
                    &index_store,
                    UserId(0),
                    at,
                    LocationId(0),
                    10,
                ));
            });
            let prune_ratio = counters.ratio_since(before);
            let exhaustive = measure_best(5, iters / 10, || {
                std::hint::black_box(engine.recommend_exhaustive(
                    &index_store,
                    UserId(0),
                    at,
                    LocationId(0),
                    10,
                ));
            });
            p99[i] = pruned.p99() as f64;
            summary.metric(
                "index",
                &format!("pruned_p50_ns_{label}"),
                pruned.p50() as f64,
            );
            summary.metric(
                "index",
                &format!("pruned_p99_ns_{label}"),
                pruned.p99() as f64,
            );
            summary.metric(
                "index",
                &format!("exhaustive_p50_ns_{label}"),
                exhaustive.p50() as f64,
            );
            summary.metric(
                "index",
                &format!("exhaustive_p99_ns_{label}"),
                exhaustive.p99() as f64,
            );
            summary.metric("index", &format!("prune_ratio_{label}"), prune_ratio);
            println!(
                "index {label}: pruned p50 {} ns / p99 {} ns, exhaustive p99 {} ns, \
                 prune ratio {prune_ratio:.3}",
                pruned.p50(),
                pruned.p99(),
                exhaustive.p99()
            );
        }
        let growth = p99[1] / p99[0].max(1.0);
        summary.metric("index", "pruned_p99_growth_10k_to_1m", growth);
        println!("index: pruned p99 grows {growth:.2}x from 10k to 1M ads");
    }

    // --- Sparse kernels: the skewed-dot shape (ad 8 × context 512). ---
    let small = random_vector(&mut rng, 8, 50_000);
    let large = random_vector(&mut rng, 512, 50_000);
    let iters = scale.pick(200_000u64, 1_000_000);
    let merge_ns = time_per_iter(iters, || {
        std::hint::black_box(small.dot_merge(&large));
    }) * 1e9;
    let gallop_ns = time_per_iter(iters, || {
        std::hint::black_box(small.dot_gallop(&large));
    }) * 1e9;
    summary.metric("sparse_dot_8x512", "merge_ns", merge_ns);
    summary.metric("sparse_dot_8x512", "gallop_ns", gallop_ns);
    summary.metric(
        "sparse_dot_8x512",
        "gallop_speedup",
        merge_ns / gallop_ns.max(1e-9),
    );
    println!(
        "sparse dot 8x512: merge {merge_ns:.0} ns, gallop {gallop_ns:.0} ns ({:.1}x)",
        merge_ns / gallop_ns.max(1e-9)
    );

    summary.write();
}
