//! `adcast-serve` — stand up the TCP serving layer.
//!
//! ```text
//! adcast-serve [--addr HOST:PORT] [--users N] [--shards N] [--queue-depth N]
//!              [--data-dir PATH] [--fsync always|off|every=N]
//!              [--snapshot-every N] [--obs-addr HOST:PORT]
//!              [--partition N [--epoch N] [--role primary|follower]
//!               [--follower HOST:PORT]]
//! ```
//!
//! Binds the listener (port 0 picks an ephemeral port), prints
//! `listening on HOST:PORT` on stdout — scripts parse that line — and
//! serves until a client sends the Shutdown RPC. Without `--data-dir`
//! the engine state starts empty and dies with the process; with it,
//! every accepted mutation is written to a write-ahead log under PATH
//! before it is acknowledged, background snapshots are taken every
//! `--snapshot-every` WAL records, and startup recovers the pre-crash
//! state (latest valid snapshot + WAL tail replay) before the listener
//! binds. `--fsync` trades ingest throughput against the post-`kill -9`
//! loss window; see DESIGN.md §9.
//!
//! `--partition` joins the node to a cluster (requires `--data-dir`):
//! it serves one user partition behind `adcast-router` and only admits
//! partition-routed RPCs stamped with its partition and epoch. As a
//! `primary` with `--follower HOST:PORT` it ships every committed WAL
//! record to that follower and waits for the durability ack before
//! acking the client; as a `follower` it refuses client writes and
//! applies replicated records, ready for promotion. See DESIGN.md §14.
//!
//! `--obs-addr` additionally binds a plain-HTTP observability listener
//! serving `GET /metrics` (Prometheus text format) and `GET /healthz`;
//! the bound address is printed as `obs listening on HOST:PORT`. With
//! `--data-dir`, the in-memory flight recorder is dumped to
//! `PATH/flightrec.jsonl` on panic, on graceful shutdown, and on the
//! ObsDump RPC; see DESIGN.md §11.

use std::path::PathBuf;
use std::process::ExitCode;

use adcast::ads::AdStore;
use adcast::cluster::TcpSink;
use adcast::core::{EngineConfig, ShardedDriver};
use adcast::durability::{
    fs_backend, recover, Durability, DurabilityOptions, FsyncPolicy, WalOptions,
};
use adcast::net::client::ClientConfig;
use adcast::net::{ClusterConfig, ClusterState, ReplicaSetup, Server, ServerConfig};
use adcast::obs::flightrec::{recovery_step, EventKind};
use adcast::obs::{flightrec, install_panic_dump, ObsServer};

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|e| format!("{name}: {e}")),
    }
}

fn str_flag<'a>(args: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(String::as_str)
            .map(Some)
            .ok_or_else(|| format!("{name} needs a value")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: adcast-serve [--addr HOST:PORT] [--users N] [--shards N] \
             [--queue-depth N] [--data-dir PATH] [--fsync always|off|every=N] \
             [--snapshot-every N] [--obs-addr HOST:PORT] [--partition N \
             [--epoch N] [--role primary|follower] [--follower HOST:PORT]]"
        );
        return Ok(());
    }
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .map_or("127.0.0.1:0", String::as_str);
    let users = flag(args, "--users")?.unwrap_or(4_000) as u32;
    let shards = flag(args, "--shards")?.unwrap_or(2).max(1) as usize;
    let queue_depth = flag(args, "--queue-depth")?.unwrap_or(64) as usize;
    let data_dir = str_flag(args, "--data-dir")?.map(PathBuf::from);
    let fsync = match str_flag(args, "--fsync")? {
        Some(s) => FsyncPolicy::parse(s)?,
        None => FsyncPolicy::Always,
    };
    let snapshot_every = flag(args, "--snapshot-every")?.unwrap_or(10_000);
    let obs_addr = str_flag(args, "--obs-addr")?;
    let partition = flag(args, "--partition")?;
    let epoch = flag(args, "--epoch")?.unwrap_or(0);
    let role = str_flag(args, "--role")?.unwrap_or("primary");
    let follower_addr = str_flag(args, "--follower")?;
    if partition.is_none() && (follower_addr.is_some() || str_flag(args, "--role")?.is_some()) {
        return Err("--role/--follower need --partition (cluster mode)".into());
    }
    if partition.is_some() && data_dir.is_none() {
        return Err("cluster mode replicates WAL records; --partition needs --data-dir".into());
    }
    let partition = match partition {
        Some(p) => Some(
            u16::try_from(p).map_err(|_| format!("--partition {p} exceeds the u16 wire header"))?,
        ),
        None => None,
    };
    let state = match (partition, role) {
        (None, _) => ClusterState::standalone(),
        (Some(p), "primary") => ClusterState::primary(p, epoch),
        (Some(p), "follower") => {
            if follower_addr.is_some() {
                return Err("--follower names a primary's replication target; \
                            a --role follower node has none"
                    .into());
            }
            ClusterState::follower(p, epoch)
        }
        (Some(_), other) => return Err(format!("--role {other}: expected primary or follower")),
    };

    // The flight recorder survives a crash only if something dumps it:
    // with a data dir, wire the panic hook (and the server's shutdown /
    // ObsDump paths) to PATH/flightrec.jsonl.
    let flightrec_path = data_dir.as_ref().map(|dir| dir.join("flightrec.jsonl"));
    if let Some(path) = &flightrec_path {
        install_panic_dump(path);
    }

    let config = ServerConfig {
        queue_depth,
        flightrec_path,
        ..ServerConfig::default()
    };
    let engine_config = EngineConfig::default();

    let server = match data_dir {
        None => {
            let driver = ShardedDriver::new(users, shards, engine_config);
            Server::start(addr, config, AdStore::new(), driver)
        }
        Some(dir) => {
            let wal_options = WalOptions {
                fsync,
                ..WalOptions::default()
            };
            let recovered = recover(&dir, users, shards, engine_config.clone(), wal_options)
                .map_err(|e| format!("recover {}: {e}", dir.display()))?;
            let report = recovered.report;
            flightrec().record(
                EventKind::RecoveryStep,
                recovery_step::SNAPSHOT_LOADED,
                report.snapshot_lsn.unwrap_or(0),
                0,
            );
            flightrec().record(
                EventKind::RecoveryStep,
                recovery_step::WAL_REPLAYED,
                report.replayed_records,
                0,
            );
            flightrec().record(
                EventKind::RecoveryStep,
                recovery_step::TAIL_TRUNCATED,
                report.truncated_bytes,
                0,
            );
            match report.snapshot_lsn {
                Some(lsn) => eprintln!(
                    "recovered from snapshot at lsn {lsn} + {} wal record(s) \
                     ({} torn byte(s) truncated, {} corrupt snapshot(s) skipped)",
                    report.replayed_records, report.truncated_bytes, report.snapshots_skipped
                ),
                None if report.replayed_records > 0 => eprintln!(
                    "recovered from wal alone: {} record(s) replayed ({} torn byte(s) truncated)",
                    report.replayed_records, report.truncated_bytes
                ),
                None => eprintln!("cold start: {} is empty", dir.display()),
            }
            let options = DurabilityOptions {
                wal: wal_options,
                snapshot_every,
                ..DurabilityOptions::default()
            };
            let durability = Durability::new(&dir, recovered.wal, options, report);
            eprintln!(
                "durable mode: data dir {}, fsync {fsync}, snapshot every {snapshot_every} record(s)",
                dir.display()
            );
            match partition {
                None => Server::start_durable(
                    addr,
                    config,
                    recovered.store,
                    recovered.driver,
                    Some(durability),
                ),
                Some(p) => {
                    eprintln!(
                        "cluster mode: partition {p} epoch {epoch} role {role}{}",
                        follower_addr
                            .map(|f| format!(", replicating to {f}"))
                            .unwrap_or_default()
                    );
                    let sink = follower_addr.map(|f| {
                        Box::new(TcpSink::new(p, f, ClientConfig::default()))
                            as Box<dyn adcast::net::ReplicationSink>
                    });
                    let replica = Some(ReplicaSetup {
                        backend: fs_backend(&dir),
                        options,
                        engine: engine_config,
                    });
                    Server::start_cluster(
                        addr,
                        config,
                        recovered.store,
                        recovered.driver,
                        Some(durability),
                        ClusterConfig {
                            state,
                            sink,
                            replica,
                        },
                    )
                }
            }
        }
    }
    .map_err(|e| {
        let addr_in_use = matches!(
            &e,
            adcast::net::codec::NetError::Io(io) if io.kind() == std::io::ErrorKind::AddrInUse
        );
        if addr_in_use {
            format!(
                "bind {addr}: address already in use — another adcast-serve (or other \
                 process) owns this port; stop it or pick a different --addr"
            )
        } else {
            format!("bind {addr}: {e}")
        }
    })?;
    let obs_server = match obs_addr {
        None => None,
        Some(obs_addr) => Some(
            ObsServer::start(obs_addr, adcast::obs::registry())
                .map_err(|e| format!("bind obs {obs_addr}: {e}"))?,
        ),
    };
    // Scripts wait for this exact line to learn the ephemeral port.
    println!("listening on {}", server.addr());
    if let Some(obs) = &obs_server {
        // Scripts parse this line too (obs port 0 is also ephemeral).
        println!("obs listening on {}", obs.addr());
    }
    eprintln!("serving {users} users across {shards} shard(s), queue depth {queue_depth}");
    server.join();
    if let Some(obs) = obs_server {
        obs.stop();
    }
    eprintln!("shut down cleanly");
    Ok(())
}
