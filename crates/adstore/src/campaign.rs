//! Campaign lifecycle: an ad with a budget and a state machine.

use crate::ad::Ad;
use crate::budget::Budget;
use crate::ctr::CtrTracker;
use crate::pacing::PacingController;

/// Campaign lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignState {
    /// Eligible for serving.
    Active,
    /// Temporarily withheld by the advertiser; can resume.
    Paused,
    /// Budget drained; terminal.
    Exhausted,
    /// Removed by the advertiser; terminal.
    Removed,
}

impl CampaignState {
    /// Terminal states cannot transition anywhere.
    pub fn is_terminal(self) -> bool {
        matches!(self, CampaignState::Exhausted | CampaignState::Removed)
    }
}

/// An ad campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The ad creative.
    pub ad: Ad,
    /// Spend tracking.
    pub budget: Budget,
    /// Lifecycle state.
    state: CampaignState,
    /// Impressions served.
    pub impressions: u64,
    /// Smoothed click-through-rate statistics.
    pub ctr: CtrTracker,
    /// Optional flight pacing (campaigns without a flight serve unpaced).
    pub pacing: Option<PacingController>,
}

impl Campaign {
    /// A fresh active campaign.
    pub fn new(ad: Ad, budget: Budget) -> Self {
        let state = if budget.is_exhausted() {
            CampaignState::Exhausted
        } else {
            CampaignState::Active
        };
        Campaign {
            ad,
            budget,
            state,
            impressions: 0,
            ctr: CtrTracker::default(),
            pacing: None,
        }
    }

    /// Rebuild a campaign exactly as snapshotted, private state included.
    pub fn from_parts(
        ad: Ad,
        budget: Budget,
        state: CampaignState,
        impressions: u64,
        ctr: CtrTracker,
        pacing: Option<PacingController>,
    ) -> Self {
        Campaign {
            ad,
            budget,
            state,
            impressions,
            ctr,
            pacing,
        }
    }

    /// Current state.
    pub fn state(&self) -> CampaignState {
        self.state
    }

    /// Is the campaign eligible for serving?
    pub fn is_active(&self) -> bool {
        self.state == CampaignState::Active
    }

    /// Record one impression charged at `cost`. Returns the new state —
    /// [`CampaignState::Exhausted`] when this impression drained the
    /// budget or the charge could not be covered.
    pub fn record_impression(&mut self, cost: f64) -> CampaignState {
        debug_assert!(self.is_active(), "impressions only on active campaigns");
        if self.budget.try_charge(cost) {
            self.impressions += 1;
            if self.budget.is_exhausted() {
                self.state = CampaignState::Exhausted;
            }
        } else {
            self.state = CampaignState::Exhausted;
        }
        self.state
    }

    /// Pause an active campaign. Returns whether the transition happened.
    pub fn pause(&mut self) -> bool {
        if self.state == CampaignState::Active {
            self.state = CampaignState::Paused;
            true
        } else {
            false
        }
    }

    /// Resume a paused campaign.
    pub fn resume(&mut self) -> bool {
        if self.state == CampaignState::Paused {
            self.state = CampaignState::Active;
            true
        } else {
            false
        }
    }

    /// Remove the campaign (terminal).
    pub fn remove(&mut self) {
        if !self.state.is_terminal() {
            self.state = CampaignState::Removed;
        }
    }

    /// Expire an active campaign whose flight has ended or whose paced
    /// budget is drained (terminal). Returns whether the transition
    /// happened.
    pub fn expire(&mut self) -> bool {
        if self.state == CampaignState::Active {
            self.state = CampaignState::Exhausted;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ad::AdId;
    use crate::targeting::Targeting;
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;

    fn ad() -> Ad {
        Ad {
            id: AdId(0),
            vector: SparseVector::from_pairs([(TermId(0), 1.0)]),
            bid: 1.0,
            targeting: Targeting::everywhere(),
            topic_hint: None,
        }
    }

    #[test]
    fn impressions_drain_budget() {
        let mut c = Campaign::new(ad(), Budget::new(0.25));
        assert!(c.is_active());
        assert_eq!(c.record_impression(0.1), CampaignState::Active);
        assert_eq!(c.record_impression(0.1), CampaignState::Active);
        // Third charge does not fit: exhausted without charging.
        assert_eq!(c.record_impression(0.1), CampaignState::Exhausted);
        assert_eq!(c.impressions, 2);
        assert!(!c.is_active());
    }

    #[test]
    fn exact_drain_also_exhausts() {
        let mut c = Campaign::new(ad(), Budget::new(0.2));
        assert_eq!(c.record_impression(0.2), CampaignState::Exhausted);
        assert_eq!(c.impressions, 1, "the draining impression still served");
    }

    #[test]
    fn pause_resume_cycle() {
        let mut c = Campaign::new(ad(), Budget::unlimited());
        assert!(c.pause());
        assert!(!c.is_active());
        assert!(!c.pause(), "double pause is a no-op");
        assert!(c.resume());
        assert!(c.is_active());
        assert!(!c.resume());
    }

    #[test]
    fn terminal_states_stick() {
        let mut c = Campaign::new(ad(), Budget::unlimited());
        c.remove();
        assert_eq!(c.state(), CampaignState::Removed);
        assert!(!c.pause());
        assert!(!c.resume());
        c.remove();
        assert_eq!(c.state(), CampaignState::Removed);
        assert!(CampaignState::Removed.is_terminal());
        assert!(CampaignState::Exhausted.is_terminal());
        assert!(!CampaignState::Active.is_terminal());
    }

    #[test]
    fn zero_budget_campaign_starts_exhausted() {
        let c = Campaign::new(ad(), Budget::new(0.0));
        assert_eq!(c.state(), CampaignState::Exhausted);
    }
}
