//! Flash sale: a bursty stream and a time-boxed campaign.
//!
//! A flash-crowd event (modeled by the bursty Markov-modulated arrival
//! process) floods feeds with chatter about one topic. A retailer runs a
//! budget-capped flash-sale campaign on that topic. This example shows:
//!
//! * the incremental engine absorbing a burst (watch refreshes stay rare),
//! * budget pacing: the campaign drains and is automatically de-indexed,
//! * recommendations shifting back to evergreen ads once the sale dies.
//!
//! ```text
//! cargo run --release --example flash_sale
//! ```

use adcast::ads::{Budget, CampaignState};
use adcast::core::{Simulation, SimulationConfig};
use adcast::graph::UserId;
use adcast::stream::generator::WorkloadConfig;

fn main() {
    // Platform with modest defaults but a finite per-campaign budget.
    let config = SimulationConfig {
        workload: WorkloadConfig {
            num_users: 500,
            ..WorkloadConfig::default()
        },
        num_ads: 200,
        ad_budget: Some(25.0),
        bid_range: (1.0, 1.0),
        ..SimulationConfig::default()
    };
    let mut sim = Simulation::build(config);

    println!("── phase 1: normal traffic ──");
    sim.run(3_000);
    let users: Vec<UserId> = sim.graph().users().take(50).collect();
    serve_wave(&mut sim, &users, "steady state");

    println!("\n── phase 2: flash crowd (heavy serving pressure) ──");
    sim.run(3_000);
    // Every impression is charged; budgets start draining.
    for _ in 0..12 {
        for &u in &users {
            sim.recommend_and_charge(u, 2);
        }
    }
    let exhausted = sim
        .ad_topics()
        .iter()
        .filter(|&&(ad, _)| {
            sim.store().campaign(ad).map(|c| c.state()) == Some(CampaignState::Exhausted)
        })
        .count();
    println!(
        "{exhausted} campaigns exhausted their {} budget during the rush",
        Budget::new(25.0).remaining()
    );
    serve_wave(&mut sim, &users, "during the rush");

    println!("\n── phase 3: after the rush ──");
    sim.run(2_000);
    serve_wave(&mut sim, &users, "after the rush");

    let stats = sim.engine().stats();
    println!(
        "\nengine: {} deltas, {} refreshes ({:.4} per delta), {} fallbacks",
        stats.deltas,
        stats.refreshes,
        stats.refreshes as f64 / stats.deltas.max(1) as f64,
        stats.fallbacks
    );
    println!(
        "store: {}/{} campaigns still active",
        sim.store().num_active(),
        sim.store().num_total()
    );
}

fn serve_wave(sim: &mut Simulation, users: &[UserId], label: &str) {
    let mut served = 0usize;
    let mut sum_rel = 0.0f64;
    for &u in users {
        for rec in sim.recommend(u, 2) {
            served += 1;
            sum_rel += rec.relevance as f64;
        }
    }
    println!(
        "{label}: served {served} impressions across {} users (mean relevance {:.4})",
        users.len(),
        if served > 0 {
            sum_rel / served as f64
        } else {
            0.0
        }
    );
}
