//! Shared record-payload helpers.
//!
//! These encode the payload shapes that both durable storage (WAL +
//! snapshots) and the `adcast-net` wire codec need: sparse vectors, feed
//! deltas, time slots. They were originally private to the wire codec;
//! they live here so the two surfaces cannot drift apart, and they keep
//! the same contract as [`adcast_stream::trace`]: decoding never panics,
//! whatever bytes arrive — every malformation is a typed
//! [`TraceError`].

use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::event::TimeSlot;
use adcast_stream::trace::{get_message, put_message, TraceError};
use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Fail with `Truncated` instead of letting a `get_*` panic.
pub fn need(data: &Bytes, n: usize) -> Result<(), TraceError> {
    if data.remaining() < n {
        Err(TraceError::Truncated)
    } else {
        Ok(())
    }
}

/// Encode an ad/query vector: `nterms u16 | nterms × (term u32, w f32)`.
///
/// # Panics
///
/// Panics when the vector holds more than `u16::MAX` terms.
pub fn put_vector(buf: &mut BytesMut, v: &SparseVector) {
    let n = u16::try_from(v.len()).expect("vector larger than u16::MAX terms");
    buf.put_u16_le(n);
    for (t, w) in v.iter() {
        buf.put_u32_le(t.0);
        buf.put_f32_le(w);
    }
}

/// Decode a vector with the same validation the trace codec applies to
/// message vectors: finite non-zero weights, strictly sorted terms.
///
/// # Errors
///
/// Typed [`TraceError`] on truncation or invalid payloads; never panics.
pub fn get_vector(data: &mut Bytes) -> Result<SparseVector, TraceError> {
    need(data, 2)?;
    let n = data.get_u16_le() as usize;
    need(data, n * 8)?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let t = TermId(data.get_u32_le());
        let w = data.get_f32_le();
        if !w.is_finite() || w == 0.0 {
            return Err(TraceError::Corrupt("zero or non-finite weight"));
        }
        entries.push((t, w));
    }
    if entries.windows(2).any(|p| p[0].0 >= p[1].0) {
        return Err(TraceError::Corrupt("terms not strictly sorted"));
    }
    Ok(SparseVector::from_sorted(entries))
}

/// Encode a decayed-accumulator vector: `nterms u32 | pairs`.
///
/// Unlike [`put_vector`] this accepts any finite weight — forward-decay
/// accumulators legitimately hold tiny negative residuals after
/// evictions — and a u32 count, since user contexts are unbounded by the
/// u16 message-vector limit. Weights are carried as raw f32 bits, so a
/// snapshot restore is bit-exact.
pub fn put_context_vector(buf: &mut BytesMut, v: &SparseVector) {
    buf.put_u32_le(u32::try_from(v.len()).expect("context larger than u32::MAX terms"));
    for (t, w) in v.iter() {
        buf.put_u32_le(t.0);
        buf.put_f32_le(w);
    }
}

/// Decode a vector written by [`put_context_vector`].
///
/// # Errors
///
/// Typed [`TraceError`] on truncation, non-finite weights, or unsorted
/// terms; never panics.
pub fn get_context_vector(data: &mut Bytes) -> Result<SparseVector, TraceError> {
    need(data, 4)?;
    let n = data.get_u32_le() as usize;
    need(data, n.saturating_mul(8))?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let t = TermId(data.get_u32_le());
        let w = data.get_f32_le();
        if !w.is_finite() {
            return Err(TraceError::Corrupt("non-finite context weight"));
        }
        entries.push((t, w));
    }
    if entries.windows(2).any(|p| p[0].0 >= p[1].0) {
        return Err(TraceError::Corrupt("terms not strictly sorted"));
    }
    Ok(SparseVector::from_sorted(entries))
}

/// Encode one `(user, delta)` pair:
/// `user u32 | entered u8 | [message] | nevicted u16 | messages`.
///
/// # Panics
///
/// Panics when a delta evicts more than `u16::MAX` messages.
pub fn put_delta(buf: &mut BytesMut, user: UserId, delta: &FeedDelta) {
    buf.put_u32_le(user.0);
    match &delta.entered {
        Some(m) => {
            buf.put_u8(1);
            put_message(buf, m);
        }
        None => buf.put_u8(0),
    }
    let evicted = u16::try_from(delta.evicted.len()).expect("too many evictions in one delta");
    buf.put_u16_le(evicted);
    for m in &delta.evicted {
        put_message(buf, m);
    }
}

/// Decode a pair written by [`put_delta`].
///
/// # Errors
///
/// Typed [`TraceError`] on any malformation; never panics.
pub fn get_delta(data: &mut Bytes) -> Result<(UserId, FeedDelta), TraceError> {
    need(data, 5)?;
    let user = UserId(data.get_u32_le());
    let entered = match data.get_u8() {
        0 => None,
        1 => Some(get_message(data)?),
        _ => return Err(TraceError::Corrupt("bad entered flag")),
    };
    need(data, 2)?;
    let n = data.get_u16_le() as usize;
    let mut evicted = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        evicted.push(get_message(data)?);
    }
    Ok((user, FeedDelta { entered, evicted }))
}

/// Encode a time slot as one byte.
pub fn put_slot(buf: &mut BytesMut, slot: TimeSlot) {
    buf.put_u8(match slot {
        TimeSlot::Morning => 0,
        TimeSlot::Afternoon => 1,
        TimeSlot::Night => 2,
    });
}

/// Decode a time slot written by [`put_slot`].
///
/// # Errors
///
/// Typed [`TraceError`] on truncation or an unknown discriminant.
pub fn get_slot(data: &mut Bytes) -> Result<TimeSlot, TraceError> {
    need(data, 1)?;
    match data.get_u8() {
        0 => Ok(TimeSlot::Morning),
        1 => Ok(TimeSlot::Afternoon),
        2 => Ok(TimeSlot::Night),
        _ => Err(TraceError::Corrupt("bad time slot")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    #[test]
    fn context_vector_roundtrips_exact_bits() {
        // Negative and denormal residuals survive bit-exactly.
        let ctx = SparseVector::from_sorted(vec![
            (TermId(1), -1.5e-7),
            (TermId(4), 0.75),
            (TermId(9), f32::MIN_POSITIVE / 2.0),
        ]);
        let mut buf = BytesMut::new();
        put_context_vector(&mut buf, &ctx);
        let mut data = buf.freeze();
        let back = get_context_vector(&mut data).unwrap();
        assert_eq!(data.remaining(), 0);
        let (a, b) = (ctx.to_pairs(), back.to_pairs());
        assert_eq!(a.len(), b.len());
        for ((ta, wa), (tb, wb)) in a.into_iter().zip(b) {
            assert_eq!(ta, tb);
            assert_eq!(wa.to_bits(), wb.to_bits());
        }
    }

    #[test]
    fn context_vector_truncations_never_panic() {
        let ctx = v(&[(0, 1.0), (3, 2.0), (5, -0.5)]);
        let mut buf = BytesMut::new();
        put_context_vector(&mut buf, &ctx);
        let bytes = buf.freeze();
        for cut in 0..bytes.len() {
            let mut prefix = bytes.slice(0..cut);
            assert_eq!(
                get_context_vector(&mut prefix),
                Err(TraceError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn context_vector_rejects_nan_and_unsorted() {
        let mut buf = BytesMut::new();
        buf.put_u32_le(1);
        buf.put_u32_le(2);
        buf.put_f32_le(f32::NAN);
        assert!(matches!(
            get_context_vector(&mut buf.freeze()),
            Err(TraceError::Corrupt(_))
        ));
        let mut buf = BytesMut::new();
        buf.put_u32_le(2);
        buf.put_u32_le(9);
        buf.put_f32_le(1.0);
        buf.put_u32_le(3);
        buf.put_f32_le(1.0);
        assert!(matches!(
            get_context_vector(&mut buf.freeze()),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn ad_vector_keeps_trace_validation() {
        let mut buf = BytesMut::new();
        put_vector(&mut buf, &v(&[(1, 0.5), (7, 0.25)]));
        let back = get_vector(&mut buf.clone().freeze()).unwrap();
        assert_eq!(back, v(&[(1, 0.5), (7, 0.25)]));

        let mut zero = BytesMut::new();
        zero.put_u16_le(1);
        zero.put_u32_le(1);
        zero.put_f32_le(0.0);
        assert!(matches!(
            get_vector(&mut zero.freeze()),
            Err(TraceError::Corrupt(_))
        ));
    }
}
