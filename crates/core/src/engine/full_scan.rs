//! Baseline 1: score **every** active ad on every request.

use adcast_ads::AdStore;
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::LocationId;

use crate::config::EngineConfig;
use crate::context::UserContext;
use crate::engine::{EngineStats, Recommendation, RecommendationEngine};
use crate::topk::{top_k, Scored};

/// The exhaustive baseline. Exact by construction; O(|A|) per request.
#[derive(Debug)]
pub struct FullScanEngine {
    config: EngineConfig,
    contexts: Vec<UserContext>,
    stats: EngineStats,
}

impl FullScanEngine {
    /// One context per user.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn new(num_users: u32, config: EngineConfig) -> Self {
        config.validate().expect("invalid engine config");
        FullScanEngine {
            contexts: (0..num_users)
                .map(|_| UserContext::new(config.half_life))
                .collect(),
            config,
            stats: EngineStats::default(),
        }
    }

    /// Read access to a user's context (tests / inspection).
    pub fn context(&self, user: UserId) -> &UserContext {
        &self.contexts[user.index()]
    }
}

impl RecommendationEngine for FullScanEngine {
    fn on_feed_delta(&mut self, _store: &AdStore, user: UserId, delta: &FeedDelta) {
        self.stats.deltas += 1;
        let update = self.contexts[user.index()].apply(delta);
        if update.rescale.is_some() {
            self.stats.rebases += 1;
        }
    }

    fn recommend(
        &mut self,
        store: &AdStore,
        user: UserId,
        now: Timestamp,
        location: LocationId,
        k: usize,
    ) -> Vec<Recommendation> {
        self.stats.recommends += 1;
        let ctx = &self.contexts[user.index()];
        let true_ctx = ctx.materialize(now);
        let policy = self.config.scoring;
        let mut scored = Vec::new();
        for campaign in store.active_campaigns() {
            if !campaign.ad.targeting.matches(location, now) {
                continue;
            }
            self.stats.ads_scored += 1;
            let relevance = true_ctx.dot(&campaign.ad.vector);
            // Sub-threshold ads are never served (consistent across all
            // engines; see EngineConfig::min_relevance).
            if relevance <= self.config.min_relevance {
                continue;
            }
            scored.push((
                campaign.ad.id,
                relevance,
                policy.rank(relevance, campaign.ad.bid),
            ));
        }
        let top = top_k(
            scored
                .iter()
                .map(|&(ad, _, rank)| Scored { ad, score: rank }),
            k,
        );
        top.into_iter()
            .map(|s| {
                let relevance = scored
                    .iter()
                    .find(|&&(ad, _, _)| ad == s.ad)
                    .map(|&(_, rel, _)| rel)
                    .expect("top-k item came from scored");
                Recommendation {
                    ad: s.ad,
                    score: s.score,
                    relevance,
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "full-scan"
    }

    fn stats(&self) -> &EngineStats {
        &self.stats
    }

    fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self
                .contexts
                .iter()
                .map(|c| c.memory_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcast_ads::{AdSubmission, Budget, Targeting};
    use adcast_stream::event::{Message, MessageId, TimeSlot};
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;
    use std::sync::Arc;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    fn store_with_ads() -> AdStore {
        let mut s = AdStore::new();
        // ad0: term 1; ad1: term 2; ad2: term 1+2, afternoon-only.
        for (vec, targeting) in [
            (v(&[(1, 1.0)]), Targeting::everywhere()),
            (v(&[(2, 1.0)]), Targeting::everywhere()),
            (
                v(&[(1, 0.7), (2, 0.7)]),
                Targeting::everywhere().in_slots([TimeSlot::Afternoon]),
            ),
        ] {
            s.submit(AdSubmission {
                vector: vec,
                bid: 1.0,
                targeting,
                budget: Budget::unlimited(),
                topic_hint: None,
            })
            .unwrap();
        }
        s
    }

    fn feed(engine: &mut FullScanEngine, store: &AdStore, terms: &[(u32, f32)], secs: u64) {
        let m = Arc::new(Message {
            id: MessageId(secs),
            author: UserId(0),
            ts: Timestamp::from_secs(secs),
            location: LocationId(0),
            vector: v(terms),
        });
        engine.on_feed_delta(
            store,
            UserId(0),
            &FeedDelta {
                entered: Some(m),
                evicted: vec![],
            },
        );
    }

    fn afternoon() -> Timestamp {
        Timestamp::from_secs(15 * 3600)
    }

    fn morning() -> Timestamp {
        Timestamp::from_secs(9 * 3600)
    }

    #[test]
    fn ranks_by_context_overlap() {
        let store = store_with_ads();
        let mut e = FullScanEngine::new(
            1,
            EngineConfig {
                half_life: None,
                ..Default::default()
            },
        );
        feed(&mut e, &store, &[(1, 1.0)], 10);
        let recs = e.recommend(&store, UserId(0), morning(), LocationId(0), 2);
        assert_eq!(
            recs[0].ad,
            adcast_ads::AdId(0),
            "term-1 ad wins on a term-1 context"
        );
        assert!(recs[0].score > 0.0);
        assert!(
            (recs[0].score - recs[0].relevance).abs() < 1e-6,
            "λ=1: score == relevance"
        );
    }

    #[test]
    fn targeting_filters_by_slot() {
        let store = store_with_ads();
        let mut e = FullScanEngine::new(
            1,
            EngineConfig {
                half_life: None,
                ..Default::default()
            },
        );
        feed(&mut e, &store, &[(1, 1.0), (2, 1.0)], 10);
        let morning_recs = e.recommend(&store, UserId(0), morning(), LocationId(0), 3);
        assert!(
            morning_recs.iter().all(|r| r.ad != adcast_ads::AdId(2)),
            "afternoon-only ad must not serve in the morning"
        );
        let noon_recs = e.recommend(&store, UserId(0), afternoon(), LocationId(0), 3);
        assert_eq!(
            noon_recs[0].ad,
            adcast_ads::AdId(2),
            "blended ad wins when eligible"
        );
    }

    #[test]
    fn empty_context_serves_nothing() {
        let store = store_with_ads();
        let mut e = FullScanEngine::new(1, EngineConfig::default());
        let recs = e.recommend(&store, UserId(0), morning(), LocationId(0), 2);
        assert!(recs.is_empty(), "zero-relevance ads are never served");
    }

    #[test]
    fn stats_accumulate() {
        let store = store_with_ads();
        let mut e = FullScanEngine::new(
            1,
            EngineConfig {
                half_life: None,
                ..Default::default()
            },
        );
        feed(&mut e, &store, &[(1, 1.0)], 10);
        e.recommend(&store, UserId(0), morning(), LocationId(0), 2);
        assert_eq!(e.stats().deltas, 1);
        assert_eq!(e.stats().recommends, 1);
        assert_eq!(
            e.stats().ads_scored,
            2,
            "morning: the slot-targeted ad is filtered first"
        );
        assert!(e.memory_bytes() > 0);
        assert_eq!(e.name(), "full-scan");
    }
}
