#!/usr/bin/env bash
# The full local gate: everything CI runs, in the order that fails fastest.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo test (debug-stats: zero-alloc hot path) =="
cargo test -q -p adcast-core --features debug-stats

echo "All checks passed."
