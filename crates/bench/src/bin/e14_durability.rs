//! E14: durability cost and recovery speed.
//!
//! Part one prices the write-ahead log on the ingest hot path: the same
//! delta stream is applied through `log → commit → apply` under each
//! fsync policy, against a `none` baseline with no durability at all.
//! Expected shape: `off` rides the page cache and lands near the
//! baseline, `every=N` buys back most of the gap, and `always` pays one
//! fsync per batch — that gap is exactly what an acked-write-survives-
//! `kill -9` guarantee costs.
//!
//! Part two measures cold-start recovery as a function of WAL-tail
//! length (records written after the last snapshot — here, with no
//! snapshot at all): recovery replays every record through the same
//! `apply_record` path the live server uses, so the time is linear in
//! the tail and the `replayed` column proves nothing was skipped.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use adcast_ads::{AdStore, AdSubmission, Budget, Targeting};
use adcast_bench::{fmt, Report, Scale};
use adcast_core::{EngineConfig, ShardedDriver};
use adcast_durability::{
    apply_record, recover, Durability, DurabilityOptions, FsyncPolicy, WalOptions, WalRecord,
};
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::{LocationId, Message, MessageId};
use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const SHARDS: usize = 2;
const BATCH: usize = 100;
const VOCAB: u32 = 20_000;

fn tempdir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("adcast-e14-{}-{n}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create tempdir");
    dir
}

fn random_vector(rng: &mut SmallRng, terms: usize) -> SparseVector {
    SparseVector::from_pairs(
        (0..terms).map(|_| (TermId(rng.gen_range(0..VOCAB)), rng.gen_range(0.05f32..1.0))),
    )
}

fn submissions(rng: &mut SmallRng, num_ads: u32) -> Vec<AdSubmission> {
    (0..num_ads)
        .map(|_| AdSubmission {
            vector: random_vector(rng, 8),
            bid: 1.0,
            targeting: Targeting::everywhere(),
            budget: Budget::unlimited(),
            topic_hint: None,
        })
        .collect()
}

/// A per-user sliding-window delta stream, pre-chunked into the WAL
/// batches the server's group commit would see.
fn batches(rng: &mut SmallRng, num_users: u32, deltas: u64) -> Vec<Vec<(UserId, FeedDelta)>> {
    let mut windows: Vec<Vec<Arc<Message>>> = (0..num_users).map(|_| Vec::new()).collect();
    let stream: Vec<(UserId, FeedDelta)> = (0..deltas)
        .map(|i| {
            let user = UserId(rng.gen_range(0..num_users));
            let msg = Arc::new(Message {
                id: MessageId(i),
                author: user,
                ts: Timestamp::from_secs(i / 64),
                location: LocationId(0),
                vector: random_vector(rng, 3),
            });
            let w = &mut windows[user.index()];
            let evicted = if w.len() >= 16 {
                vec![w.remove(0)]
            } else {
                vec![]
            };
            w.push(msg.clone());
            (
                user,
                FeedDelta {
                    entered: Some(msg),
                    evicted,
                },
            )
        })
        .collect();
    stream.chunks(BATCH).map(<[_]>::to_vec).collect()
}

struct IngestOutcome {
    elapsed_ms: f64,
    deltas_per_sec: f64,
    wal_mb: f64,
    fsyncs: u64,
}

/// Apply the whole workload through `log → commit → apply` under one
/// fsync policy (`None` = no durability: the in-memory baseline).
fn run_ingest(
    fsync: Option<FsyncPolicy>,
    num_users: u32,
    ads: &[AdSubmission],
    work: &[Vec<(UserId, FeedDelta)>],
) -> IngestOutcome {
    let mut store = AdStore::new();
    let mut driver = ShardedDriver::new(num_users, SHARDS, EngineConfig::default());
    let (dir, mut durability) = match fsync {
        None => (None, None),
        Some(policy) => {
            let dir = tempdir("ingest");
            let wal = WalOptions {
                fsync: policy,
                ..WalOptions::default()
            };
            let recovered =
                recover(&dir, num_users, SHARDS, EngineConfig::default(), wal).expect("cold start");
            let d = Durability::new(
                &dir,
                recovered.wal,
                DurabilityOptions {
                    wal,
                    ..DurabilityOptions::default()
                },
                recovered.report,
            );
            (Some(dir), Some(d))
        }
    };
    // Campaigns go through the same logged path, outside the timer.
    for sub in ads {
        let record = WalRecord::Submit(sub.clone());
        if let Some(d) = durability.as_mut() {
            d.log(&record).expect("log submit");
            d.commit().expect("commit submit");
        }
        apply_record(&mut store, &mut driver, record).expect("apply submit");
    }

    let deltas: u64 = work.iter().map(|b| b.len() as u64).sum();
    let started = Instant::now();
    for batch in work {
        let record = WalRecord::IngestBatch(batch.clone());
        if let Some(d) = durability.as_mut() {
            d.log(&record).expect("log batch");
            d.commit().expect("commit batch");
        }
        apply_record(&mut store, &mut driver, record).expect("apply batch");
    }
    let secs = started.elapsed().as_secs_f64().max(1e-9);
    let counters = durability
        .as_ref()
        .map(Durability::counters)
        .unwrap_or_default();
    drop(durability);
    if let Some(dir) = dir {
        let _ = std::fs::remove_dir_all(dir);
    }
    IngestOutcome {
        elapsed_ms: secs * 1e3,
        deltas_per_sec: deltas as f64 / secs,
        wal_mb: counters.wal_bytes as f64 / (1 << 20) as f64,
        fsyncs: counters.wal_fsyncs,
    }
}

/// Write `ads.len() + tail` records with no snapshot, then time a cold
/// `recover()` that must replay all of them.
fn run_recovery(
    tail: usize,
    num_users: u32,
    ads: &[AdSubmission],
    work: &[Vec<(UserId, FeedDelta)>],
) -> (f64, u64) {
    let dir = tempdir("recover");
    // fsync=off: writing the fixture fast does not change what recovery
    // reads back.
    let wal = WalOptions {
        fsync: FsyncPolicy::Off,
        ..WalOptions::default()
    };
    {
        let mut store = AdStore::new();
        let mut driver = ShardedDriver::new(num_users, SHARDS, EngineConfig::default());
        let recovered =
            recover(&dir, num_users, SHARDS, EngineConfig::default(), wal).expect("cold start");
        let mut d = Durability::new(
            &dir,
            recovered.wal,
            DurabilityOptions {
                wal,
                ..DurabilityOptions::default()
            },
            recovered.report,
        );
        let mut logged = 0usize;
        let singles = work.iter().flatten();
        let records = ads
            .iter()
            .map(|sub| WalRecord::Submit(sub.clone()))
            .chain(singles.map(|(u, delta)| WalRecord::IngestBatch(vec![(*u, delta.clone())])));
        for record in records {
            if logged >= ads.len() + tail {
                break;
            }
            d.log(&record).expect("log");
            apply_record(&mut store, &mut driver, record).expect("apply");
            logged += 1;
        }
        d.commit().expect("final commit");
        assert_eq!(logged, ads.len() + tail, "workload too small for tail");
    }
    let started = Instant::now();
    let recovered =
        recover(&dir, num_users, SHARDS, EngineConfig::default(), wal).expect("recover");
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let replayed = recovered.report.replayed_records;
    let _ = std::fs::remove_dir_all(dir);
    (elapsed_ms, replayed)
}

fn main() {
    let scale = Scale::from_env();
    let num_users = scale.pick(1_000u32, 4_000);
    let num_ads = scale.pick(300u32, 1_000);
    let deltas = scale.pick(20_000u64, 100_000);

    let mut rng = SmallRng::seed_from_u64(0xE14);
    let ads = submissions(&mut rng, num_ads);
    let work = batches(&mut rng, num_users, deltas);
    println!(
        "workload: {num_users} users, {num_ads} campaigns, {deltas} deltas in {} batches of {BATCH}\n",
        work.len()
    );

    let mut report = Report::new(
        "E14",
        "durability: WAL cost on ingest, recovery time vs tail length",
        vec![
            "case",
            "fsync",
            "records",
            "elapsed_ms",
            "deltas_per_sec",
            "wal_mb",
            "fsyncs",
            "recover_ms",
            "replayed",
        ],
    );

    let policies: [(&str, Option<FsyncPolicy>); 5] = [
        ("baseline", None),
        ("wal", Some(FsyncPolicy::Off)),
        ("wal", Some(FsyncPolicy::EveryN(64))),
        ("wal", Some(FsyncPolicy::EveryN(8))),
        ("wal", Some(FsyncPolicy::Always)),
    ];
    for (case, policy) in policies {
        let out = run_ingest(policy, num_users, &ads, &work);
        report.row(vec![
            case.into(),
            policy.map_or("-".into(), |p| p.to_string()),
            work.len().to_string(),
            fmt(out.elapsed_ms),
            fmt(out.deltas_per_sec),
            fmt(out.wal_mb),
            out.fsyncs.to_string(),
            "-".into(),
            "-".into(),
        ]);
    }

    for tail in scale.pick([1_000usize, 5_000, 10_000], [1_000, 5_000, 20_000]) {
        let (recover_ms, replayed) = run_recovery(tail, num_users, &ads, &work);
        report.row(vec![
            "recovery".into(),
            "off".into(),
            (num_ads as usize + tail).to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            fmt(recover_ms),
            replayed.to_string(),
        ]);
    }
    report.finish();
}
