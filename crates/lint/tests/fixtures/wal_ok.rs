// Fixture: the correct order — commit before apply — passes without a
// pragma. Linted under the server.rs rel path; never compiled.

fn log_apply(d: &mut Durability, store: &mut AdStore, record: WalRecord) -> Result<(), WireError> {
    d.log(&record).map_err(|_| WireError::Unavailable)?;
    d.commit().map_err(|_| WireError::Unavailable)?;
    apply_record(store, &record).map_err(|_| WireError::Unavailable)
}
