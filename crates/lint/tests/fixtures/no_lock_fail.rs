// Fixture: a `Mutex` field and a `.lock()` call in an obs record path must
// trip `no-lock-in-record`. Linted under a pretend obs rel path; never
// compiled.

struct Hist {
    state: std::sync::Mutex<Vec<u64>>,
}

impl Hist {
    fn record(&self, value: u64) {
        self.state.lock().push(value);
    }
}
