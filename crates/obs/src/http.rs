//! A minimal hand-rolled HTTP/1.1 listener for `GET /metrics`,
//! `GET /healthz`, `GET /readyz`, and the `GET /traces[/<id>]` span-tree
//! endpoints, plus the matching one-shot client the loadgen and
//! `check.sh` use in place of `curl`.
//!
//! This is deliberately not a web server: request parsing stops at the
//! request line, every response closes the connection, and the accept
//! loop polls a nonblocking listener so `stop()` takes effect within one
//! poll interval. Scrapes are rare (seconds apart) and tiny, so none of
//! this is performance-sensitive.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::registry::Registry;

const POLL_INTERVAL: Duration = Duration::from_millis(25);
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Largest request head we bother reading before answering.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// An HTTP response triple: status code, content type, body.
pub type HttpResponse = (u16, &'static str, String);

/// A pluggable route override. The router's obs port installs one to
/// replace `/metrics` with the federated exposition and `/traces` with
/// cross-node stitching; returning `None` falls through to the built-in
/// routes (which serve this process's registry, trace store, and
/// readiness mask).
pub trait Handler: Send + Sync + 'static {
    /// Handle `GET path`, or `None` to use the default route.
    fn handle(&self, path: &str) -> Option<HttpResponse>;
}

/// A running exposition endpoint. Dropping the handle leaves the thread
/// running until process exit; call [`ObsServer::stop`] for a clean join.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve `reg` until stopped.
    pub fn start(addr: &str, reg: &'static Registry) -> io::Result<ObsServer> {
        ObsServer::start_inner(addr, reg, None)
    }

    /// [`ObsServer::start`] with a route override consulted before the
    /// built-in routes.
    pub fn start_with(
        addr: &str,
        reg: &'static Registry,
        handler: Arc<dyn Handler>,
    ) -> io::Result<ObsServer> {
        ObsServer::start_inner(addr, reg, Some(handler))
    }

    fn start_inner(
        addr: &str,
        reg: &'static Registry,
        handler: Option<Arc<dyn Handler>>,
    ) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = thread::Builder::new()
            .name("adcast-obs-http".to_string())
            .spawn(move || accept_loop(&listener, reg, handler.as_deref(), &stop_flag))?;
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the listener thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    reg: &'static Registry,
    handler: Option<&dyn Handler>,
    stop: &AtomicBool,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => serve_connection(stream, reg, handler),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

fn status_line(code: u16) -> &'static str {
    match code {
        200 => "200 OK",
        404 => "404 Not Found",
        405 => "405 Method Not Allowed",
        502 => "502 Bad Gateway",
        503 => "503 Service Unavailable",
        _ => "500 Internal Server Error",
    }
}

const TEXT: &str = "text/plain; charset=utf-8";
const JSON: &str = "application/json; charset=utf-8";
/// The `/metrics` content type (Prometheus text format 0.0.4).
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// The built-in routes, shared by the listener and any [`Handler`] that
/// wants to fall back to them for paths it does not override.
#[must_use]
pub fn default_route(path: &str, reg: &Registry) -> HttpResponse {
    let trace_store = crate::tracestore::tracestore();
    match path {
        "/metrics" => (200, EXPOSITION_CONTENT_TYPE, reg.expose()),
        "/healthz" => (200, TEXT, "ok\n".to_string()),
        "/readyz" => {
            let ready = crate::ready::readiness();
            let code = if ready.ready() { 200 } else { 503 };
            (code, TEXT, ready.report())
        }
        "/traces" => (
            200,
            JSON,
            crate::tracestore::render_trace_list_json(&trace_store.trace_ids()),
        ),
        _ => {
            if let Some(id) = path
                .strip_prefix("/traces/")
                .and_then(|id| id.parse::<u64>().ok())
            {
                let spans = trace_store.trace(id);
                if spans.is_empty() {
                    return (404, TEXT, "trace not found\n".to_string());
                }
                return (
                    200,
                    JSON,
                    crate::tracestore::render_trace_json(id, &spans, None),
                );
            }
            (404, TEXT, "not found\n".to_string())
        }
    }
}

fn serve_connection(mut stream: TcpStream, reg: &Registry, handler: Option<&dyn Handler>) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (code, content_type, body) = if method != "GET" {
        (405, TEXT, "method not allowed\n".to_string())
    } else {
        match handler.and_then(|h| h.handle(path)) {
            Some(response) => response,
            None => default_route(path, reg),
        }
    };
    let response = format!(
        "HTTP/1.1 {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        status_line(code),
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Read up to the end of the request head and return the request line.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.lines().next().map(|l| l.to_string())
}

/// Fetch `path` from an HTTP/1.1 server at `addr` and return
/// `(status_code, body)`. The std-only stand-in for `curl` used by the
/// loadgen's `--obs-addr` scrape and the `check.sh` smoke.
pub fn http_get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body separator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn serves_metrics_healthz_and_404() {
        let c = registry().counter("adcast_test_http_total", "http test counter");
        c.add(3);
        let server = ObsServer::start("127.0.0.1:0", registry()).expect("bind");
        let addr = server.addr().to_string();

        let (status, body) = http_get(&addr, "/healthz").expect("healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, body) = http_get(&addr, "/metrics").expect("metrics");
        assert_eq!(status, 200);
        let families = crate::expo::parse_exposition(&body).expect("valid exposition");
        let f = crate::expo::find_family(&families, "adcast_test_http_total").expect("family");
        assert!(f.sample_value("adcast_test_http_total").unwrap() >= 3.0);

        let (status, _) = http_get(&addr, "/nope").expect("404 path");
        assert_eq!(status, 404);

        server.stop();
    }

    #[test]
    fn serves_readyz_and_traces() {
        use crate::ready::{readiness, UNREADY_CATCHING_UP};
        use crate::tracestore::{parse_trace_json, tracestore, SpanKind, TraceContext};

        let _guard = crate::ready::test_lock();
        let server = ObsServer::start("127.0.0.1:0", registry()).expect("bind");
        let addr = server.addr().to_string();

        let (status, body) = http_get(&addr, "/readyz").expect("readyz");
        assert_eq!((status, body.as_str()), (200, "ready\n"));
        readiness().set(UNREADY_CATCHING_UP, true);
        let (status, body) = http_get(&addr, "/readyz").expect("readyz unready");
        assert_eq!(status, 503);
        assert!(body.contains("catching_up"), "{body}");
        readiness().set(UNREADY_CATCHING_UP, false);

        let ctx = TraceContext {
            trace_id: 0xFEED_F00D,
            parent_span_id: 0,
        };
        tracestore().record(ctx, SpanKind::QueueWait, 0, 10, 5);
        tracestore().record(
            ctx.child(SpanKind::QueueWait, 0),
            SpanKind::WalCommit,
            0,
            20,
            7,
        );
        let (status, listing) = http_get(&addr, "/traces").expect("traces listing");
        assert_eq!(status, 200);
        assert!(
            listing.contains(&format!("\"trace_id\":{}", ctx.trace_id)),
            "{listing}"
        );
        let (status, body) =
            http_get(&addr, &format!("/traces/{}", ctx.trace_id)).expect("trace by id");
        assert_eq!(status, 200);
        let spans = parse_trace_json(&body);
        assert!(spans.len() >= 2, "{body}");
        let (status, _) = http_get(&addr, "/traces/1").expect("unknown trace");
        assert_eq!(status, 404);

        server.stop();
    }

    #[test]
    fn handler_overrides_and_falls_through() {
        struct Override;
        impl Handler for Override {
            fn handle(&self, path: &str) -> Option<HttpResponse> {
                (path == "/metrics")
                    .then(|| (200, EXPOSITION_CONTENT_TYPE, "# federated\n".to_string()))
            }
        }
        let server =
            ObsServer::start_with("127.0.0.1:0", registry(), Arc::new(Override)).expect("bind");
        let addr = server.addr().to_string();
        let (status, body) = http_get(&addr, "/metrics").expect("overridden metrics");
        assert_eq!((status, body.as_str()), (200, "# federated\n"));
        let (status, body) = http_get(&addr, "/healthz").expect("fallthrough healthz");
        assert_eq!((status, body.as_str()), (200, "ok\n"));
        server.stop();
    }
}
