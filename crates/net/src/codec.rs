//! Length-prefixed binary framing for the RPC types.
//!
//! Frame layout, all little-endian:
//!
//! ```text
//! len u32        — bytes after this prefix (0 and > MAX_FRAME rejected)
//! magic "ADCN" | version u16 | reserved u16     (shared header helpers)
//! kind u8 | request_id u64 | body…
//! ```
//!
//! The per-frame header and the message-record encoding are the same
//! helpers the trace codec uses ([`adcast_stream::trace`]), and the
//! vector/delta/slot body encoders are shared with the WAL codec
//! ([`adcast_durability::codec`]), so every wire surface shares one set
//! of malformed-input guards: decoding never panics, whatever a peer
//! sends — truncation, bad magic/version, zero-length or oversized
//! frames, and corrupt payloads all come back as typed errors.

use std::io::{self, Read, Write};

use adcast_ads::AdId;
use adcast_core::Recommendation;
use adcast_durability::codec::{get_delta, get_slot, get_vector, put_delta, put_slot, put_vector};
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::LocationId;
use adcast_stream::trace::{check_stream_header, put_stream_header, TraceError};
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::protocol::{
    CampaignSpec, NodeRole, Request, Response, ServerStats, TraceContext, WireError,
};

/// Per-frame magic (the trace stream uses `ADCT`).
pub const MAGIC: &[u8; 4] = b"ADCN";
/// Wire protocol version. v2 added Impression/Checkpoint RPCs and the
/// durability counters in the Stats reply; v3 added the ObsDump RPC; v4
/// added the Maintain RPC (lifecycle maintenance passes); v5 added the
/// cluster surface — the `Routed` partition/epoch envelope, WAL
/// replication (`ReplAppend`/`InstallSnapshot`), `Promote`,
/// `ClusterStatus`, and the stale-epoch/wrong-partition/LSN-gap error
/// codes; v6 added the 16-byte distributed-tracing context
/// (`trace_id` + `parent_span_id`, all-zero when unsampled) after the
/// epoch in `Routed` and `ReplAppend`.
pub const VERSION: u16 = 6;
/// Upper bound on a frame body; larger declared lengths are rejected
/// before any allocation, so a malformed peer cannot OOM the server.
pub const MAX_FRAME: usize = 64 << 20;

/// Encode/transport failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// Transport failure.
    Io(io::Error),
    /// Malformed frame or payload (shared trace-codec error).
    Decode(TraceError),
    /// A frame declared an impossible length.
    BadFrame(&'static str),
    /// The connection closed mid-frame.
    UnexpectedEof,
    /// The server went away mid-RPC (broken pipe / connection reset):
    /// the request's fate is unknown. Reconnect and decide per-RPC
    /// whether to retry (idempotent reads yes; writes get at-least-once
    /// semantics).
    Disconnected,
    /// A response arrived for a different request id.
    IdMismatch {
        /// Id the client sent.
        expected: u64,
        /// Id the server echoed.
        got: u64,
    },
    /// The server answered with a typed wire error.
    Remote(WireError),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io: {e}"),
            NetError::Decode(e) => write!(f, "decode: {e}"),
            NetError::BadFrame(what) => write!(f, "bad frame: {what}"),
            NetError::UnexpectedEof => write!(f, "connection closed mid-frame"),
            NetError::Disconnected => write!(f, "server disconnected mid-rpc"),
            NetError::IdMismatch { expected, got } => {
                write!(f, "response id {got} does not match request id {expected}")
            }
            NetError::Remote(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<TraceError> for NetError {
    fn from(e: TraceError) -> Self {
        NetError::Decode(e)
    }
}

// Request body kinds. `pub(crate)` so the server's flight-recorder
// events can tag admissions/sheds with the wire kind code.
pub(crate) const K_INGEST: u8 = 1;
pub(crate) const K_RECOMMEND: u8 = 2;
pub(crate) const K_SUBMIT: u8 = 3;
pub(crate) const K_PAUSE: u8 = 4;
pub(crate) const K_STATS: u8 = 5;
pub(crate) const K_SHUTDOWN: u8 = 6;
pub(crate) const K_IMPRESSION: u8 = 7;
pub(crate) const K_CHECKPOINT: u8 = 8;
pub(crate) const K_OBS_DUMP: u8 = 9;
pub(crate) const K_MAINTAIN: u8 = 10;
pub(crate) const K_ROUTED: u8 = 11;
pub(crate) const K_REPL_APPEND: u8 = 12;
pub(crate) const K_PROMOTE: u8 = 13;
pub(crate) const K_INSTALL_SNAPSHOT: u8 = 14;
pub(crate) const K_CLUSTER_STATUS: u8 = 15;
// Response body kinds.
const K_INGESTED: u8 = 0x81;
const K_RECOMMENDATIONS: u8 = 0x82;
const K_ACCEPTED: u8 = 0x83;
const K_PAUSED: u8 = 0x84;
const K_STATS_REPLY: u8 = 0x85;
const K_SHUTDOWN_ACK: u8 = 0x86;
const K_IMPRESSION_ACK: u8 = 0x87;
const K_CHECKPOINTED: u8 = 0x88;
const K_OBS_DUMPED: u8 = 0x89;
const K_MAINTAINED: u8 = 0x8A;
const K_REPL_ACK: u8 = 0x8B;
const K_PROMOTED: u8 = 0x8C;
const K_SNAPSHOT_INSTALLED: u8 = 0x8D;
const K_CLUSTER_STATUS_REPLY: u8 = 0x8E;
const K_ERROR: u8 = 0xFF;
// Error codes inside K_ERROR.
const E_OVERLOADED: u8 = 1;
const E_UNAVAILABLE: u8 = 2;
const E_SHUTTING_DOWN: u8 = 3;
const E_BAD_REQUEST: u8 = 4;
const E_UNKNOWN_CAMPAIGN: u8 = 5;
const E_STALE_EPOCH: u8 = 6;
const E_WRONG_PARTITION: u8 = 7;
const E_LSN_GAP: u8 = 8;
const E_NOT_PRIMARY: u8 = 9;

/// Fail with `Truncated` instead of letting a `get_*` panic.
fn need(data: &Bytes, n: usize) -> Result<(), NetError> {
    adcast_durability::codec::need(data, n).map_err(NetError::from)
}

/// The 16 trace-context bytes (wire v6): trace id, then parent span id.
fn put_trace(body: &mut BytesMut, trace: &TraceContext) {
    body.put_u64_le(trace.trace_id);
    body.put_u64_le(trace.parent_span_id);
}

fn get_trace(data: &mut Bytes) -> Result<TraceContext, NetError> {
    need(data, 16)?;
    Ok(TraceContext {
        trace_id: data.get_u64_le(),
        parent_span_id: data.get_u64_le(),
    })
}

/// Frame up one request: length prefix, header, kind, id, body.
pub fn encode_request(id: u64, req: &Request) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    put_stream_header(&mut body, MAGIC, VERSION);
    put_request(&mut body, id, req);
    prefix_len(body)
}

/// Write `kind | id | payload` for one request (recursing once for the
/// inner request of a [`Request::Routed`] envelope).
fn put_request(body: &mut BytesMut, id: u64, req: &Request) {
    match req {
        Request::Ingest { deltas } => {
            body.put_u8(K_INGEST);
            body.put_u64_le(id);
            // adcast-lint: allow(no-panic-hot-path) -- encode side of our
            // own client; a >4-billion-delta batch cannot be built (the
            // frame would blow MAX_FRAME long before the count overflows).
            body.put_u32_le(u32::try_from(deltas.len()).expect("batch too large"));
            for (user, delta) in deltas {
                put_delta(body, *user, delta);
            }
        }
        Request::Recommend {
            user,
            now,
            location,
            k,
        } => {
            body.put_u8(K_RECOMMEND);
            body.put_u64_le(id);
            body.put_u32_le(user.0);
            body.put_u64_le(now.micros());
            body.put_u16_le(location.0);
            body.put_u16_le(*k);
        }
        Request::SubmitCampaign(spec) => {
            body.put_u8(K_SUBMIT);
            body.put_u64_le(id);
            put_vector(body, &spec.vector);
            body.put_f32_le(spec.bid);
            // adcast-lint: allow(no-panic-hot-path) -- LocationId is u16,
            // so a spec cannot name more than 65536 distinct locations.
            body.put_u16_le(u16::try_from(spec.locations.len()).expect("too many locations"));
            for loc in &spec.locations {
                body.put_u16_le(loc.0);
            }
            // adcast-lint: allow(no-panic-hot-path) -- `TimeSlot` has a
            // handful of variants; a spec can never carry 256 slots.
            body.put_u8(u8::try_from(spec.slots.len()).expect("too many slots"));
            for slot in &spec.slots {
                put_slot(body, *slot);
            }
            match spec.budget {
                Some(b) => {
                    body.put_u8(1);
                    body.put_f64_le(b);
                }
                None => body.put_u8(0),
            }
            match spec.topic_hint {
                Some(t) => {
                    body.put_u8(1);
                    body.put_u32_le(t);
                }
                None => body.put_u8(0),
            }
        }
        Request::PauseCampaign { ad } => {
            body.put_u8(K_PAUSE);
            body.put_u64_le(id);
            body.put_u32_le(ad.0);
        }
        Request::Impression {
            ad,
            cost,
            clicked,
            now,
        } => {
            body.put_u8(K_IMPRESSION);
            body.put_u64_le(id);
            body.put_u32_le(ad.0);
            body.put_f64_le(*cost);
            body.put_u8(u8::from(*clicked));
            body.put_u64_le(now.micros());
        }
        Request::Maintain { now, idle_for } => {
            body.put_u8(K_MAINTAIN);
            body.put_u64_le(id);
            body.put_u64_le(now.micros());
            body.put_u64_le(idle_for.micros());
        }
        Request::Checkpoint => {
            body.put_u8(K_CHECKPOINT);
            body.put_u64_le(id);
        }
        Request::ObsDump => {
            body.put_u8(K_OBS_DUMP);
            body.put_u64_le(id);
        }
        Request::Stats => {
            body.put_u8(K_STATS);
            body.put_u64_le(id);
        }
        Request::Shutdown => {
            body.put_u8(K_SHUTDOWN);
            body.put_u64_le(id);
        }
        Request::Routed {
            partition,
            epoch,
            trace,
            inner,
        } => {
            body.put_u8(K_ROUTED);
            body.put_u64_le(id);
            body.put_u16_le(*partition);
            body.put_u64_le(*epoch);
            put_trace(body, trace);
            put_request(body, id, inner);
        }
        Request::ReplAppend {
            partition,
            epoch,
            trace,
            entries,
        } => {
            body.put_u8(K_REPL_APPEND);
            body.put_u64_le(id);
            body.put_u16_le(*partition);
            body.put_u64_le(*epoch);
            put_trace(body, trace);
            // adcast-lint: allow(no-panic-hot-path) -- a batch of 4
            // billion records would blow MAX_FRAME long before the
            // count overflows u32.
            body.put_u32_le(u32::try_from(entries.len()).expect("too many entries"));
            for (lsn, record) in entries {
                body.put_u64_le(*lsn);
                // adcast-lint: allow(no-panic-hot-path) -- a single WAL
                // record is itself bounded by the WAL's frame limit,
                // far below u32::MAX.
                body.put_u32_le(u32::try_from(record.len()).expect("record too large"));
                body.put_slice(record);
            }
        }
        Request::InstallSnapshot {
            partition,
            epoch,
            snapshot,
        } => {
            body.put_u8(K_INSTALL_SNAPSHOT);
            body.put_u64_le(id);
            body.put_u16_le(*partition);
            body.put_u64_le(*epoch);
            // adcast-lint: allow(no-panic-hot-path) -- snapshot transfer
            // is a rare catch-up path and EngineSetSnapshot::decode
            // bounds the image at 1 GiB; u32 holds 4 GiB.
            body.put_u32_le(u32::try_from(snapshot.len()).expect("snapshot too large"));
            body.put_slice(snapshot);
        }
        Request::Promote { partition, epoch } => {
            body.put_u8(K_PROMOTE);
            body.put_u64_le(id);
            body.put_u16_le(*partition);
            body.put_u64_le(*epoch);
        }
        Request::ClusterStatus => {
            body.put_u8(K_CLUSTER_STATUS);
            body.put_u64_le(id);
        }
    }
}

/// Frame up one response.
pub fn encode_response(id: u64, resp: &Response) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    put_stream_header(&mut body, MAGIC, VERSION);
    match resp {
        Response::Ingested { accepted } => {
            body.put_u8(K_INGESTED);
            body.put_u64_le(id);
            body.put_u32_le(*accepted);
        }
        Response::Recommendations(recs) => {
            body.put_u8(K_RECOMMENDATIONS);
            body.put_u64_le(id);
            // adcast-lint: allow(no-panic-hot-path) -- the request's k is
            // u16 and the engine returns at most k recommendations.
            body.put_u16_le(u16::try_from(recs.len()).expect("too many recommendations"));
            for r in recs {
                body.put_u32_le(r.ad.0);
                body.put_f32_le(r.score);
                body.put_f32_le(r.relevance);
            }
        }
        Response::CampaignAccepted { ad } => {
            body.put_u8(K_ACCEPTED);
            body.put_u64_le(id);
            body.put_u32_le(ad.0);
        }
        Response::CampaignPaused { ad } => {
            body.put_u8(K_PAUSED);
            body.put_u64_le(id);
            body.put_u32_le(ad.0);
        }
        Response::ImpressionRecorded { ad, exhausted } => {
            body.put_u8(K_IMPRESSION_ACK);
            body.put_u64_le(id);
            body.put_u32_le(ad.0);
            body.put_u8(u8::from(*exhausted));
        }
        Response::Maintained {
            scanned,
            decayed,
            pruned,
        } => {
            body.put_u8(K_MAINTAINED);
            body.put_u64_le(id);
            body.put_u64_le(*scanned);
            body.put_u64_le(*decayed);
            body.put_u64_le(*pruned);
        }
        Response::Checkpointed { lsn } => {
            body.put_u8(K_CHECKPOINTED);
            body.put_u64_le(id);
            body.put_u64_le(*lsn);
        }
        Response::ObsDumped { events } => {
            body.put_u8(K_OBS_DUMPED);
            body.put_u64_le(id);
            body.put_u64_le(*events);
        }
        Response::Stats(s) => {
            body.put_u8(K_STATS_REPLY);
            body.put_u64_le(id);
            for v in [
                s.deltas,
                s.recommends,
                s.active_campaigns,
                s.rpcs,
                s.shed,
                s.connections,
                s.queue_capacity,
                s.ingest_p50_ns,
                s.ingest_p99_ns,
                s.recommend_p50_ns,
                s.recommend_p99_ns,
                s.wal_records,
                s.wal_bytes,
                s.wal_fsyncs,
                s.snapshots_written,
                s.recovered_records,
                s.recovered_truncated_bytes,
            ] {
                body.put_u64_le(v);
            }
        }
        Response::ShutdownAck => {
            body.put_u8(K_SHUTDOWN_ACK);
            body.put_u64_le(id);
        }
        Response::ReplAck { durable_lsn } => {
            body.put_u8(K_REPL_ACK);
            body.put_u64_le(id);
            body.put_u64_le(*durable_lsn);
        }
        Response::SnapshotInstalled { next_lsn } => {
            body.put_u8(K_SNAPSHOT_INSTALLED);
            body.put_u64_le(id);
            body.put_u64_le(*next_lsn);
        }
        Response::Promoted { epoch, next_lsn } => {
            body.put_u8(K_PROMOTED);
            body.put_u64_le(id);
            body.put_u64_le(*epoch);
            body.put_u64_le(*next_lsn);
        }
        Response::ClusterStatusReply {
            role,
            partition,
            epoch,
            durable_lsn,
            fenced,
            degraded,
        } => {
            body.put_u8(K_CLUSTER_STATUS_REPLY);
            body.put_u64_le(id);
            body.put_u8(match role {
                NodeRole::Standalone => 0,
                NodeRole::Primary => 1,
                NodeRole::Follower => 2,
            });
            body.put_u16_le(*partition);
            body.put_u64_le(*epoch);
            body.put_u64_le(*durable_lsn);
            body.put_u8(u8::from(*fenced) | (u8::from(*degraded) << 1));
        }
        Response::Error(e) => {
            body.put_u8(K_ERROR);
            body.put_u64_le(id);
            match e {
                WireError::Overloaded => body.put_u8(E_OVERLOADED),
                WireError::Unavailable => body.put_u8(E_UNAVAILABLE),
                WireError::ShuttingDown => body.put_u8(E_SHUTTING_DOWN),
                WireError::BadRequest(why) => {
                    body.put_u8(E_BAD_REQUEST);
                    let bytes = why.as_bytes();
                    let n = bytes.len().min(u16::MAX as usize);
                    body.put_u16_le(n as u16);
                    body.put_slice(&bytes[..n]);
                }
                WireError::UnknownCampaign(ad) => {
                    body.put_u8(E_UNKNOWN_CAMPAIGN);
                    body.put_u32_le(ad.0);
                }
                WireError::StaleEpoch { current } => {
                    body.put_u8(E_STALE_EPOCH);
                    body.put_u64_le(*current);
                }
                WireError::WrongPartition { expected } => {
                    body.put_u8(E_WRONG_PARTITION);
                    body.put_u16_le(*expected);
                }
                WireError::LsnGap { expected } => {
                    body.put_u8(E_LSN_GAP);
                    body.put_u64_le(*expected);
                }
                WireError::NotPrimary => body.put_u8(E_NOT_PRIMARY),
            }
        }
    }
    prefix_len(body)
}

fn prefix_len(body: BytesMut) -> Bytes {
    let body = body.freeze();
    let mut framed = BytesMut::with_capacity(4 + body.len());
    // adcast-lint: allow(no-panic-hot-path) -- bodies we encode are bounded
    // far below u32::MAX (decode enforces MAX_FRAME = 64 MiB on the way in).
    framed.put_u32_le(u32::try_from(body.len()).expect("frame too large"));
    framed.put_slice(&body);
    framed.freeze()
}

/// Check header and pull `(kind, id)` off a frame body.
fn open_frame(data: &mut Bytes) -> Result<(u8, u64), NetError> {
    check_stream_header(data, MAGIC, VERSION)?;
    need(data, 9)?;
    let kind = data.get_u8();
    let id = data.get_u64_le();
    Ok((kind, id))
}

/// Decode a request frame body (everything after the length prefix).
///
/// # Errors
///
/// Typed [`NetError`] on any malformation; never panics.
pub fn decode_request(mut data: Bytes) -> Result<(u64, Request), NetError> {
    check_stream_header(&mut data, MAGIC, VERSION)?;
    take_request(&mut data, true)
}

/// Read `kind | id | payload` for one request. `allow_routed` is false
/// for the inner request of a [`Request::Routed`] envelope, so nesting
/// depth is capped at one.
fn take_request(data: &mut Bytes, allow_routed: bool) -> Result<(u64, Request), NetError> {
    need(data, 9)?;
    let kind = data.get_u8();
    let id = data.get_u64_le();
    let req = match kind {
        K_INGEST => {
            need(data, 4)?;
            let n = data.get_u32_le() as usize;
            let mut deltas = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                deltas.push(get_delta(data)?);
            }
            Request::Ingest { deltas }
        }
        K_RECOMMEND => {
            need(data, 16)?;
            Request::Recommend {
                user: UserId(data.get_u32_le()),
                now: Timestamp(data.get_u64_le()),
                location: LocationId(data.get_u16_le()),
                k: data.get_u16_le(),
            }
        }
        K_SUBMIT => {
            let vector = get_vector(data)?;
            need(data, 6)?;
            let bid = data.get_f32_le();
            let nloc = data.get_u16_le() as usize;
            need(data, nloc * 2)?;
            let locations = (0..nloc).map(|_| LocationId(data.get_u16_le())).collect();
            need(data, 1)?;
            let nslots = data.get_u8() as usize;
            let mut slots = Vec::with_capacity(nslots);
            for _ in 0..nslots {
                slots.push(get_slot(data)?);
            }
            need(data, 1)?;
            let budget = match data.get_u8() {
                0 => None,
                _ => {
                    need(data, 8)?;
                    Some(data.get_f64_le())
                }
            };
            need(data, 1)?;
            let topic_hint = match data.get_u8() {
                0 => None,
                _ => {
                    need(data, 4)?;
                    Some(data.get_u32_le())
                }
            };
            Request::SubmitCampaign(CampaignSpec {
                vector,
                bid,
                locations,
                slots,
                budget,
                topic_hint,
            })
        }
        K_PAUSE => {
            need(data, 4)?;
            Request::PauseCampaign {
                ad: AdId(data.get_u32_le()),
            }
        }
        K_IMPRESSION => {
            need(data, 4 + 8 + 1 + 8)?;
            let ad = AdId(data.get_u32_le());
            let cost = data.get_f64_le();
            if !cost.is_finite() || cost < 0.0 {
                return Err(TraceError::Corrupt("negative or non-finite impression cost").into());
            }
            let clicked = match data.get_u8() {
                0 => false,
                1 => true,
                _ => return Err(TraceError::Corrupt("bad clicked flag").into()),
            };
            Request::Impression {
                ad,
                cost,
                clicked,
                now: Timestamp(data.get_u64_le()),
            }
        }
        K_MAINTAIN => {
            need(data, 16)?;
            Request::Maintain {
                now: Timestamp(data.get_u64_le()),
                idle_for: adcast_stream::clock::Duration(data.get_u64_le()),
            }
        }
        K_CHECKPOINT => Request::Checkpoint,
        K_OBS_DUMP => Request::ObsDump,
        K_STATS => Request::Stats,
        K_SHUTDOWN => Request::Shutdown,
        K_ROUTED => {
            if !allow_routed {
                return Err(TraceError::Corrupt("nested routed envelope").into());
            }
            need(data, 10)?;
            let partition = data.get_u16_le();
            let epoch = data.get_u64_le();
            let trace = get_trace(data)?;
            let (inner_id, inner) = take_request(data, false)?;
            if inner_id != id {
                return Err(TraceError::Corrupt("routed inner id mismatch").into());
            }
            Request::Routed {
                partition,
                epoch,
                trace,
                inner: Box::new(inner),
            }
        }
        K_REPL_APPEND => {
            need(data, 10)?;
            let partition = data.get_u16_le();
            let epoch = data.get_u64_le();
            let trace = get_trace(data)?;
            need(data, 4)?;
            let n = data.get_u32_le() as usize;
            let mut entries = Vec::with_capacity(n.min(65_536));
            for _ in 0..n {
                need(data, 12)?;
                let lsn = data.get_u64_le();
                let len = data.get_u32_le() as usize;
                need(data, len)?;
                entries.push((lsn, data.split_to(len)));
            }
            Request::ReplAppend {
                partition,
                epoch,
                trace,
                entries,
            }
        }
        K_INSTALL_SNAPSHOT => {
            need(data, 14)?;
            let partition = data.get_u16_le();
            let epoch = data.get_u64_le();
            let len = data.get_u32_le() as usize;
            need(data, len)?;
            Request::InstallSnapshot {
                partition,
                epoch,
                snapshot: data.split_to(len),
            }
        }
        K_PROMOTE => {
            need(data, 10)?;
            Request::Promote {
                partition: data.get_u16_le(),
                epoch: data.get_u64_le(),
            }
        }
        K_CLUSTER_STATUS => Request::ClusterStatus,
        _ => return Err(TraceError::Corrupt("unknown request kind").into()),
    };
    Ok((id, req))
}

/// Decode a response frame body (everything after the length prefix).
///
/// # Errors
///
/// Typed [`NetError`] on any malformation; never panics.
pub fn decode_response(mut data: Bytes) -> Result<(u64, Response), NetError> {
    let (kind, id) = open_frame(&mut data)?;
    let resp = match kind {
        K_INGESTED => {
            need(&data, 4)?;
            Response::Ingested {
                accepted: data.get_u32_le(),
            }
        }
        K_RECOMMENDATIONS => {
            need(&data, 2)?;
            let n = data.get_u16_le() as usize;
            need(&data, n * 12)?;
            let recs = (0..n)
                .map(|_| Recommendation {
                    ad: AdId(data.get_u32_le()),
                    score: data.get_f32_le(),
                    relevance: data.get_f32_le(),
                })
                .collect();
            Response::Recommendations(recs)
        }
        K_ACCEPTED => {
            need(&data, 4)?;
            Response::CampaignAccepted {
                ad: AdId(data.get_u32_le()),
            }
        }
        K_PAUSED => {
            need(&data, 4)?;
            Response::CampaignPaused {
                ad: AdId(data.get_u32_le()),
            }
        }
        K_IMPRESSION_ACK => {
            need(&data, 5)?;
            let ad = AdId(data.get_u32_le());
            let exhausted = match data.get_u8() {
                0 => false,
                1 => true,
                _ => return Err(TraceError::Corrupt("bad exhausted flag").into()),
            };
            Response::ImpressionRecorded { ad, exhausted }
        }
        K_MAINTAINED => {
            need(&data, 24)?;
            Response::Maintained {
                scanned: data.get_u64_le(),
                decayed: data.get_u64_le(),
                pruned: data.get_u64_le(),
            }
        }
        K_CHECKPOINTED => {
            need(&data, 8)?;
            Response::Checkpointed {
                lsn: data.get_u64_le(),
            }
        }
        K_OBS_DUMPED => {
            need(&data, 8)?;
            Response::ObsDumped {
                events: data.get_u64_le(),
            }
        }
        K_STATS_REPLY => {
            need(&data, 17 * 8)?;
            Response::Stats(ServerStats {
                deltas: data.get_u64_le(),
                recommends: data.get_u64_le(),
                active_campaigns: data.get_u64_le(),
                rpcs: data.get_u64_le(),
                shed: data.get_u64_le(),
                connections: data.get_u64_le(),
                queue_capacity: data.get_u64_le(),
                ingest_p50_ns: data.get_u64_le(),
                ingest_p99_ns: data.get_u64_le(),
                recommend_p50_ns: data.get_u64_le(),
                recommend_p99_ns: data.get_u64_le(),
                wal_records: data.get_u64_le(),
                wal_bytes: data.get_u64_le(),
                wal_fsyncs: data.get_u64_le(),
                snapshots_written: data.get_u64_le(),
                recovered_records: data.get_u64_le(),
                recovered_truncated_bytes: data.get_u64_le(),
            })
        }
        K_SHUTDOWN_ACK => Response::ShutdownAck,
        K_REPL_ACK => {
            need(&data, 8)?;
            Response::ReplAck {
                durable_lsn: data.get_u64_le(),
            }
        }
        K_SNAPSHOT_INSTALLED => {
            need(&data, 8)?;
            Response::SnapshotInstalled {
                next_lsn: data.get_u64_le(),
            }
        }
        K_PROMOTED => {
            need(&data, 16)?;
            Response::Promoted {
                epoch: data.get_u64_le(),
                next_lsn: data.get_u64_le(),
            }
        }
        K_CLUSTER_STATUS_REPLY => {
            need(&data, 1 + 2 + 8 + 8 + 1)?;
            let role = match data.get_u8() {
                0 => NodeRole::Standalone,
                1 => NodeRole::Primary,
                2 => NodeRole::Follower,
                _ => return Err(TraceError::Corrupt("unknown cluster role").into()),
            };
            let partition = data.get_u16_le();
            let epoch = data.get_u64_le();
            let durable_lsn = data.get_u64_le();
            let flags = data.get_u8();
            if flags & !0b11 != 0 {
                return Err(TraceError::Corrupt("bad cluster status flags").into());
            }
            Response::ClusterStatusReply {
                role,
                partition,
                epoch,
                durable_lsn,
                fenced: flags & 1 != 0,
                degraded: flags & 2 != 0,
            }
        }
        K_ERROR => {
            need(&data, 1)?;
            let err = match data.get_u8() {
                E_OVERLOADED => WireError::Overloaded,
                E_UNAVAILABLE => WireError::Unavailable,
                E_SHUTTING_DOWN => WireError::ShuttingDown,
                E_BAD_REQUEST => {
                    need(&data, 2)?;
                    let n = data.get_u16_le() as usize;
                    need(&data, n)?;
                    let mut bytes = vec![0u8; n];
                    data.copy_to_slice(&mut bytes);
                    WireError::BadRequest(String::from_utf8_lossy(&bytes).into_owned())
                }
                E_UNKNOWN_CAMPAIGN => {
                    need(&data, 4)?;
                    WireError::UnknownCampaign(AdId(data.get_u32_le()))
                }
                E_STALE_EPOCH => {
                    need(&data, 8)?;
                    WireError::StaleEpoch {
                        current: data.get_u64_le(),
                    }
                }
                E_WRONG_PARTITION => {
                    need(&data, 2)?;
                    WireError::WrongPartition {
                        expected: data.get_u16_le(),
                    }
                }
                E_LSN_GAP => {
                    need(&data, 8)?;
                    WireError::LsnGap {
                        expected: data.get_u64_le(),
                    }
                }
                E_NOT_PRIMARY => WireError::NotPrimary,
                _ => return Err(TraceError::Corrupt("unknown error code").into()),
            };
            Response::Error(err)
        }
        _ => return Err(TraceError::Corrupt("unknown response kind").into()),
    };
    Ok((id, resp))
}

/// Write one pre-encoded frame to the transport.
///
/// # Errors
///
/// [`NetError::Io`] on transport failures.
pub fn write_frame(w: &mut impl Write, frame: &Bytes) -> Result<(), NetError> {
    w.write_all(frame)?;
    w.flush()?;
    Ok(())
}

/// Read one frame body from the transport.
///
/// Returns `Ok(None)` on a clean EOF at a frame boundary. A zero or
/// oversized declared length is a [`NetError::BadFrame`]; an EOF inside a
/// frame is [`NetError::UnexpectedEof`]. Timeouts surface as
/// [`NetError::Io`] with the platform's `WouldBlock`/`TimedOut` kind.
///
/// # Errors
///
/// See above; never panics.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Bytes>, NetError> {
    let mut len_bytes = [0u8; 4];
    // A clean close before the first length byte is a graceful end of
    // stream, not an error.
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(NetError::UnexpectedEof)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len == 0 {
        return Err(NetError::BadFrame("zero-length frame"));
    }
    if len > MAX_FRAME {
        return Err(NetError::BadFrame("frame exceeds MAX_FRAME"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            NetError::UnexpectedEof
        } else {
            NetError::Io(e)
        }
    })?;
    Ok(Some(Bytes::from(body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcast_feed::FeedDelta;
    use adcast_stream::event::{Message, MessageId, TimeSlot};
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;
    use std::sync::Arc;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    fn msg(i: u64) -> Arc<Message> {
        Arc::new(Message {
            id: MessageId(i),
            author: UserId(3),
            ts: Timestamp::from_secs(i),
            location: LocationId(2),
            vector: v(&[(1, 0.5), (7, 0.25)]),
        })
    }

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Ingest {
                deltas: vec![
                    (
                        UserId(1),
                        FeedDelta {
                            entered: Some(msg(10)),
                            evicted: vec![msg(2), msg(3)],
                        },
                    ),
                    (
                        UserId(2),
                        FeedDelta {
                            entered: None,
                            evicted: vec![msg(1)],
                        },
                    ),
                ],
            },
            Request::Recommend {
                user: UserId(9),
                now: Timestamp::from_secs(55),
                location: LocationId(4),
                k: 10,
            },
            Request::SubmitCampaign(CampaignSpec {
                vector: v(&[(0, 1.0), (5, 0.5)]),
                bid: 2.5,
                locations: vec![LocationId(1), LocationId(8)],
                slots: vec![TimeSlot::Morning, TimeSlot::Night],
                budget: Some(99.5),
                topic_hint: Some(3),
            }),
            Request::SubmitCampaign(CampaignSpec::unrestricted(v(&[(2, 0.7)]), 1.0)),
            Request::PauseCampaign { ad: AdId(12) },
            Request::Impression {
                ad: AdId(4),
                cost: 0.25,
                clicked: true,
                now: Timestamp::from_secs(91),
            },
            Request::Impression {
                ad: AdId(0),
                cost: 0.0,
                clicked: false,
                now: Timestamp::from_secs(0),
            },
            Request::Maintain {
                now: Timestamp::from_secs(3600),
                idle_for: adcast_stream::clock::Duration::from_secs(1800),
            },
            Request::Checkpoint,
            Request::ObsDump,
            Request::Stats,
            Request::Shutdown,
            Request::Routed {
                partition: 3,
                epoch: 7,
                trace: TraceContext {
                    trace_id: 0xDEAD_BEEF_0042,
                    parent_span_id: 0x1234_5678,
                },
                inner: Box::new(Request::Recommend {
                    user: UserId(42),
                    now: Timestamp::from_secs(9),
                    location: LocationId(1),
                    k: 5,
                }),
            },
            Request::Routed {
                partition: 0,
                epoch: 1,
                trace: TraceContext::NONE,
                inner: Box::new(Request::Ingest {
                    deltas: vec![(
                        UserId(4),
                        FeedDelta {
                            entered: Some(msg(5)),
                            evicted: vec![],
                        },
                    )],
                }),
            },
            Request::ReplAppend {
                partition: 1,
                epoch: 2,
                trace: TraceContext {
                    trace_id: 7,
                    parent_span_id: 9,
                },
                entries: vec![
                    (7, Bytes::from_static(&[1, 2, 3, 4])),
                    (8, Bytes::from_static(&[9])),
                ],
            },
            Request::ReplAppend {
                partition: 0,
                epoch: 1,
                trace: TraceContext::NONE,
                entries: vec![],
            },
            Request::InstallSnapshot {
                partition: 2,
                epoch: 4,
                snapshot: Bytes::from_static(b"ADSSxxxx"),
            },
            Request::Promote {
                partition: 1,
                epoch: 3,
            },
            Request::ClusterStatus,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Ingested { accepted: 7 },
            Response::Recommendations(vec![
                Recommendation {
                    ad: AdId(4),
                    score: 0.75,
                    relevance: 0.5,
                },
                Recommendation {
                    ad: AdId(9),
                    score: 0.25,
                    relevance: 0.25,
                },
            ]),
            Response::Recommendations(vec![]),
            Response::CampaignAccepted { ad: AdId(3) },
            Response::CampaignPaused { ad: AdId(3) },
            Response::ImpressionRecorded {
                ad: AdId(6),
                exhausted: true,
            },
            Response::ImpressionRecorded {
                ad: AdId(1),
                exhausted: false,
            },
            Response::Maintained {
                scanned: 1_000_000,
                decayed: 4_321,
                pruned: 12,
            },
            Response::Checkpointed { lsn: 12_345 },
            Response::ObsDumped { events: 4096 },
            Response::Stats(ServerStats {
                deltas: 100,
                recommends: 50,
                active_campaigns: 7,
                rpcs: 160,
                shed: 4,
                connections: 2,
                queue_capacity: 64,
                ingest_p50_ns: 1_000,
                ingest_p99_ns: 9_000,
                recommend_p50_ns: 700,
                recommend_p99_ns: 8_000,
                wal_records: 1_234,
                wal_bytes: 99_000,
                wal_fsyncs: 321,
                snapshots_written: 3,
                recovered_records: 17,
                recovered_truncated_bytes: 41,
            }),
            Response::ShutdownAck,
            Response::ReplAck { durable_lsn: 41 },
            Response::SnapshotInstalled { next_lsn: 42 },
            Response::Promoted {
                epoch: 3,
                next_lsn: 77,
            },
            Response::ClusterStatusReply {
                role: NodeRole::Primary,
                partition: 1,
                epoch: 3,
                durable_lsn: 76,
                fenced: false,
                degraded: true,
            },
            Response::ClusterStatusReply {
                role: NodeRole::Follower,
                partition: 0,
                epoch: 2,
                durable_lsn: 12,
                fenced: true,
                degraded: false,
            },
            Response::Error(WireError::Overloaded),
            Response::Error(WireError::Unavailable),
            Response::Error(WireError::ShuttingDown),
            Response::Error(WireError::BadRequest("user 7 out of range".into())),
            Response::Error(WireError::UnknownCampaign(AdId(5))),
            Response::Error(WireError::StaleEpoch { current: 4 }),
            Response::Error(WireError::WrongPartition { expected: 2 }),
            Response::Error(WireError::LsnGap { expected: 9 }),
            Response::Error(WireError::NotPrimary),
        ]
    }

    fn body_of(frame: &Bytes) -> Bytes {
        frame.slice(4..)
    }

    #[test]
    fn requests_roundtrip() {
        for (i, req) in sample_requests().into_iter().enumerate() {
            let id = 1000 + i as u64;
            let frame = encode_request(id, &req);
            let (got_id, got) = decode_request(body_of(&frame)).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(got, req, "request {i}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        for (i, resp) in sample_responses().into_iter().enumerate() {
            let id = 2000 + i as u64;
            let frame = encode_response(id, &resp);
            let (got_id, got) = decode_response(body_of(&frame)).unwrap();
            assert_eq!(got_id, id);
            assert_eq!(got, resp, "response {i}");
        }
    }

    #[test]
    fn frames_roundtrip_through_io() {
        let mut wire = Vec::new();
        let reqs = sample_requests();
        for (i, req) in reqs.iter().enumerate() {
            write_frame(&mut wire, &encode_request(i as u64, req)).unwrap();
        }
        let mut cursor = io::Cursor::new(wire);
        for (i, req) in reqs.iter().enumerate() {
            let body = read_frame(&mut cursor).unwrap().expect("frame present");
            let (id, got) = decode_request(body).unwrap();
            assert_eq!(id, i as u64);
            assert_eq!(&got, req);
        }
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn zero_length_frame_rejected() {
        let mut cursor = io::Cursor::new(vec![0u8, 0, 0, 0]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::BadFrame("zero-length frame"))
        ));
    }

    #[test]
    fn oversized_frame_rejected_before_allocation() {
        let mut wire = Vec::from(u32::MAX.to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut cursor = io::Cursor::new(wire);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::BadFrame("frame exceeds MAX_FRAME"))
        ));
    }

    #[test]
    fn eof_mid_frame_detected() {
        // Inside the length prefix…
        let mut cursor = io::Cursor::new(vec![5u8, 0]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::UnexpectedEof)
        ));
        // …and inside the body.
        let mut cursor = io::Cursor::new(vec![5u8, 0, 0, 0, 1, 2]);
        assert!(matches!(
            read_frame(&mut cursor),
            Err(NetError::UnexpectedEof)
        ));
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let frame = encode_request(1, &Request::Stats);
        let mut corrupted = frame.slice(4..).to_vec();
        corrupted[0] = b'X';
        let err = decode_request(Bytes::from(corrupted)).unwrap_err();
        assert!(
            matches!(err, NetError::Decode(TraceError::BadMagic)),
            "{err}"
        );

        let mut wrong_version = frame.slice(4..).to_vec();
        wrong_version[4] = 9;
        let err = decode_request(Bytes::from(wrong_version)).unwrap_err();
        assert!(
            matches!(err, NetError::Decode(TraceError::BadVersion(9))),
            "{err}"
        );
    }

    #[test]
    fn truncated_bodies_never_panic() {
        // Every proper prefix of every sample frame must fail with a typed
        // error — this sweeps each decoder's bounds checks.
        for req in sample_requests() {
            let body = body_of(&encode_request(7, &req));
            for cut in 0..body.len() {
                assert!(
                    decode_request(body.slice(0..cut)).is_err(),
                    "{req:?} cut at {cut}"
                );
            }
        }
        for resp in sample_responses() {
            let body = body_of(&encode_response(7, &resp));
            for cut in 0..body.len() {
                assert!(
                    decode_response(body.slice(0..cut)).is_err(),
                    "{resp:?} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn corrupt_ingest_payload_rejected() {
        let req = Request::Ingest {
            deltas: vec![(
                UserId(1),
                FeedDelta {
                    entered: Some(msg(1)),
                    evicted: vec![],
                },
            )],
        };
        let mut bytes = body_of(&encode_request(1, &req)).to_vec();
        // The entered flag sits after header(8) + kind(1) + id(8) +
        // count(4) + user(4); corrupt it.
        bytes[8 + 1 + 8 + 4 + 4] = 7;
        let err = decode_request(Bytes::from(bytes)).unwrap_err();
        assert!(
            matches!(err, NetError::Decode(TraceError::Corrupt(_))),
            "{err}"
        );
    }

    #[test]
    fn bad_impression_cost_rejected() {
        for bad in [f64::NAN, f64::INFINITY, -0.5] {
            let mut body = BytesMut::new();
            put_stream_header(&mut body, MAGIC, VERSION);
            body.put_u8(K_IMPRESSION);
            body.put_u64_le(1);
            body.put_u32_le(3);
            body.put_f64_le(bad);
            body.put_u8(0);
            body.put_u64_le(0);
            let err = decode_request(body.freeze()).unwrap_err();
            assert!(
                matches!(err, NetError::Decode(TraceError::Corrupt(_))),
                "cost {bad}: {err}"
            );
        }
    }

    #[test]
    fn nested_routed_envelope_rejected() {
        let inner = Request::Routed {
            partition: 1,
            epoch: 2,
            trace: TraceContext::NONE,
            inner: Box::new(Request::Stats),
        };
        let outer = Request::Routed {
            partition: 1,
            epoch: 2,
            trace: TraceContext::NONE,
            inner: Box::new(inner),
        };
        let err = decode_request(body_of(&encode_request(1, &outer))).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Decode(TraceError::Corrupt("nested routed envelope"))
            ),
            "{err}"
        );
    }

    #[test]
    fn routed_inner_id_mismatch_rejected() {
        // Splice an inner frame with a different id into a routed
        // envelope: the decoder must refuse rather than silently
        // re-associate the response stream.
        let mut body = BytesMut::new();
        put_stream_header(&mut body, MAGIC, VERSION);
        body.put_u8(K_ROUTED);
        body.put_u64_le(1);
        body.put_u16_le(0);
        body.put_u64_le(1);
        put_trace(&mut body, &TraceContext::NONE);
        put_request(&mut body, 2, &Request::Stats);
        let err = decode_request(body.freeze()).unwrap_err();
        assert!(
            matches!(
                err,
                NetError::Decode(TraceError::Corrupt("routed inner id mismatch"))
            ),
            "{err}"
        );
    }

    #[test]
    fn bad_cluster_role_and_flags_rejected() {
        let resp = Response::ClusterStatusReply {
            role: NodeRole::Primary,
            partition: 1,
            epoch: 3,
            durable_lsn: 9,
            fenced: false,
            degraded: false,
        };
        let base = body_of(&encode_response(1, &resp)).to_vec();
        // Role byte sits right after header(8) + kind(1) + id(8).
        let mut bad_role = base.clone();
        bad_role[8 + 1 + 8] = 9;
        let err = decode_response(Bytes::from(bad_role)).unwrap_err();
        assert!(
            matches!(err, NetError::Decode(TraceError::Corrupt(_))),
            "{err}"
        );
        // Flags byte is the last byte of the frame.
        let mut bad_flags = base;
        *bad_flags.last_mut().unwrap() = 0b100;
        let err = decode_response(Bytes::from(bad_flags)).unwrap_err();
        assert!(
            matches!(err, NetError::Decode(TraceError::Corrupt(_))),
            "{err}"
        );
    }

    #[test]
    fn trace_context_sits_after_the_epoch() {
        // Pin the v6 layout: header(8) kind(1) id(8) partition(2)
        // epoch(8), then trace_id and parent_span_id as LE u64s.
        let trace = TraceContext {
            trace_id: 0x0102_0304_0506_0708,
            parent_span_id: 0x1112_1314_1516_1718,
        };
        let frame = encode_request(
            5,
            &Request::Routed {
                partition: 1,
                epoch: 2,
                trace,
                inner: Box::new(Request::Stats),
            },
        );
        let body = body_of(&frame);
        let at = 8 + 1 + 8 + 2 + 8;
        assert_eq!(&body[at..at + 8], trace.trace_id.to_le_bytes());
        assert_eq!(&body[at + 8..at + 16], trace.parent_span_id.to_le_bytes());
        // All-zero bytes decode as the unsampled context.
        let mut zeroed = body.to_vec();
        zeroed[at..at + 16].fill(0);
        let (_, got) = decode_request(Bytes::from(zeroed)).unwrap();
        let Request::Routed { trace, .. } = got else {
            panic!("decoded a different request");
        };
        assert_eq!(trace, TraceContext::NONE);
        assert!(!trace.sampled());
    }

    #[test]
    fn stale_epoch_travels_typed() {
        // A stale-epoch refusal must come back as the typed error (with
        // the node's epoch), not as silence or a closed connection.
        let frame = encode_response(4, &Response::Error(WireError::StaleEpoch { current: 11 }));
        let (_, got) = decode_response(body_of(&frame)).unwrap();
        assert_eq!(got, Response::Error(WireError::StaleEpoch { current: 11 }));
    }

    #[test]
    fn unknown_kinds_rejected() {
        let mut body = BytesMut::new();
        put_stream_header(&mut body, MAGIC, VERSION);
        body.put_u8(0x42);
        body.put_u64_le(1);
        let err = decode_request(body.clone().freeze()).unwrap_err();
        assert!(
            matches!(err, NetError::Decode(TraceError::Corrupt(_))),
            "{err}"
        );
        let err = decode_response(body.freeze()).unwrap_err();
        assert!(
            matches!(err, NetError::Decode(TraceError::Corrupt(_))),
            "{err}"
        );
    }

    #[test]
    fn error_display_covers_variants() {
        assert!(NetError::UnexpectedEof.to_string().contains("closed"));
        assert!(NetError::BadFrame("zero-length frame")
            .to_string()
            .contains("zero-length"));
        assert!(NetError::IdMismatch {
            expected: 1,
            got: 2
        }
        .to_string()
        .contains('2'));
        assert!(NetError::Remote(WireError::Overloaded)
            .to_string()
            .contains("shed"));
    }
}
