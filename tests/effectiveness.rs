//! Effectiveness against ground truth: the engines must find the users
//! the workload generator *made* interested in each ad's topic.
//!
//! Mirrors the paper-class effectiveness study (precision/recall/F-score
//! of the recommended-user sets vs. editorially-judged relevant sets; here
//! the generator's interest profiles are the judgments).

use adcast::core::{Simulation, SimulationConfig};
use adcast::graph::UserId;
use adcast::metrics::ranking::{f_score, precision_recall};
use adcast::stream::generator::WorkloadConfig;
use std::collections::HashMap;

/// For every ad, collect the users to whom the engine served it, then
/// score those sets against the ground-truth interested sets.
fn run_effectiveness(seed: u64) -> (f64, f64, f64) {
    let config = SimulationConfig {
        workload: WorkloadConfig {
            seed,
            num_users: 120,
            ..WorkloadConfig::tiny()
        },
        num_ads: 60,
        targeted_ad_fraction: 0.0, // effectiveness is about content match
        ..SimulationConfig::tiny()
    };
    let mut sim = Simulation::build(config);
    sim.run(6_000);

    let mut served: HashMap<adcast::ads::AdId, Vec<UserId>> = HashMap::new();
    for u in 0..120u32 {
        for rec in sim.recommend(UserId(u), 3) {
            served.entry(rec.ad).or_default().push(UserId(u));
        }
    }
    let mut sum_p = 0.0;
    let mut sum_r = 0.0;
    let mut sum_f = 0.0;
    let mut n = 0usize;
    for &(ad, topic) in sim.ad_topics() {
        let Some(retrieved) = served.get(&ad) else {
            continue;
        };
        let relevant = sim.users_interested_in(topic);
        if relevant.is_empty() {
            continue;
        }
        let (p, r) = precision_recall(retrieved, &relevant);
        sum_p += p;
        sum_r += r;
        sum_f += f_score(retrieved, &relevant);
        n += 1;
    }
    assert!(n >= 10, "too few ads were ever served ({n})");
    (sum_p / n as f64, sum_r / n as f64, sum_f / n as f64)
}

#[test]
fn precision_beats_random_assignment_by_a_wide_margin() {
    let (precision, _recall, f) = run_effectiveness(11);
    // Random serving precision ≈ fraction of interested users ≈
    // topics_per_user / num_topics = 2/5 = 0.4 under the tiny model.
    assert!(
        precision > 0.6,
        "mean precision {precision:.3} should clearly beat the 0.4 random baseline"
    );
    assert!(f > 0.0);
}

#[test]
fn served_users_are_mostly_interested() {
    let config = SimulationConfig {
        workload: WorkloadConfig {
            seed: 5,
            num_users: 100,
            ..WorkloadConfig::tiny()
        },
        num_ads: 40,
        targeted_ad_fraction: 0.0,
        ..SimulationConfig::tiny()
    };
    let mut sim = Simulation::build(config);
    sim.run(5_000);
    let mut hits = 0usize;
    let mut total = 0usize;
    for u in 0..100u32 {
        let profile_topics: Vec<usize> = sim
            .generator()
            .profile(UserId(u))
            .topics
            .iter()
            .map(|&(t, _)| t)
            .collect();
        for rec in sim.recommend(UserId(u), 1) {
            total += 1;
            let topic = sim.store().ad(rec.ad).and_then(|a| a.topic_hint).unwrap();
            if profile_topics.contains(&topic) {
                hits += 1;
            }
        }
    }
    assert!(
        total > 50,
        "most users should be servable after 5k messages"
    );
    let hit_rate = hits as f64 / total as f64;
    assert!(
        hit_rate > 0.55,
        "top-1 ad topic matches user interest only {hit_rate:.3}"
    );
}

#[test]
fn effectiveness_is_stable_across_seeds() {
    let (p1, _, _) = run_effectiveness(21);
    let (p2, _, _) = run_effectiveness(22);
    assert!(
        (p1 - p2).abs() < 0.3,
        "precision varies wildly across seeds: {p1:.3} vs {p2:.3}"
    );
}
