//! E11 (Figure/Table): the ad market — revenue, CTR by position, and
//! budget pacing.
//!
//! Two identical platforms run the same stream and serving pressure; in
//! one, campaigns are paced over the flight, in the other they serve
//! greedily. Paper-class shape: greedy campaigns spend most of their
//! budget in the first quarter of the flight and go dark; paced spend
//! tracks the linear schedule, and the top slot's CTR clearly exceeds the
//! second slot's (position bias).

use adcast_ads::PacingController;
use adcast_bench::{fmt, fmt_u, Report, Scale};
use adcast_core::market::AdMarket;
use adcast_core::runner::EngineKind;
use adcast_core::{Simulation, SimulationConfig};
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::generator::WorkloadConfig;

struct Quartiles {
    spend_at: [f64; 4],
}

fn run(paced: bool, waves: usize, users_per_wave: u32, seed: u64) -> (Quartiles, AdMarket, f64) {
    let config = SimulationConfig {
        workload: WorkloadConfig {
            seed,
            num_users: users_per_wave,
            ..WorkloadConfig::tiny()
        },
        num_ads: 40,
        ad_budget: Some(10.0),
        bid_range: (0.5, 1.5),
        targeted_ad_fraction: 0.0,
        engine_kind: EngineKind::Incremental,
        ..SimulationConfig::tiny()
    };
    let mut sim = Simulation::build(config);
    let mut market = AdMarket::standard(seed ^ 0xA0C710);

    // Estimate the flight length in simulated time: waves × wave stream.
    let msgs_per_wave = 400usize;
    let flight_end = Timestamp::from_secs(
        ((waves * msgs_per_wave) as f64 / 100.0/* msg rate */ * 1.25) as u64 + 1,
    );
    if paced {
        for &(ad, _) in sim.ad_topics() {
            market.set_pacing(
                ad,
                PacingController::new(Timestamp::EPOCH, flight_end, 10.0),
            );
        }
    }

    let mut quartiles = Quartiles { spend_at: [0.0; 4] };
    for wave in 0..waves {
        sim.run(msgs_per_wave);
        let now = sim.now();
        for u in 0..users_per_wave {
            let recs = sim.recommend(UserId(u), 4);
            let store = sim.store_mut();
            market.serve(store, &recs, now);
            for ad in market.take_exhausted() {
                sim.engine_mut().on_campaign_removed(ad);
            }
            // Controllers adjust continuously, like a production pacing
            // loop (every few hundred milliseconds of serving).
            if u % 20 == 0 {
                market.adjust_pacing(now);
            }
        }
        market.adjust_pacing(sim.now());
        // Record spend at quartile boundaries.
        let q = (wave + 1) * 4 / waves;
        if q >= 1 && (wave + 1) * 4 % waves < 4 {
            let total_spend: f64 = sim
                .ad_topics()
                .iter()
                .filter_map(|&(ad, _)| sim.store().campaign(ad))
                .map(|c| c.budget.spent())
                .sum();
            quartiles.spend_at[(q - 1).min(3)] = total_spend;
        }
    }
    let total_budget = 10.0 * sim.ad_topics().len() as f64;
    (quartiles, market, total_budget)
}

fn main() {
    let scale = Scale::from_env();
    let waves = scale.pick(16, 48);
    let users = scale.pick(150, 600);

    let mut report = Report::new(
        "E11",
        "revenue and budget pacing: greedy vs paced",
        vec![
            "strategy",
            "spend_25pct",
            "spend_50pct",
            "spend_75pct",
            "spend_100pct",
            "revenue",
            "impressions",
            "overall_ctr",
        ],
    );
    for paced in [false, true] {
        let (q, market, total_budget) = run(paced, waves, users, 0xE11);
        report.row(vec![
            if paced { "paced" } else { "greedy" }.into(),
            fmt(q.spend_at[0] / total_budget),
            fmt(q.spend_at[1] / total_budget),
            fmt(q.spend_at[2] / total_budget),
            fmt(q.spend_at[3] / total_budget),
            fmt(market.revenue()),
            fmt_u(market.impressions()),
            fmt(market.overall_ctr()),
        ]);
    }
    report.finish();

    // CTR by slot position (position bias), measured on a greedy run.
    let (_, market, _) = run(false, waves, users, 0xE11 + 1);
    let mut pos_report = Report::new(
        "E11b",
        "click-through rate by slot position",
        vec!["position", "impressions", "clicks", "ctr"],
    );
    for (pos, &(imps, clicks)) in market.position_stats().iter().enumerate() {
        pos_report.row(vec![
            pos.to_string(),
            fmt_u(imps),
            fmt_u(clicks),
            fmt(if imps > 0 {
                clicks as f64 / imps as f64
            } else {
                0.0
            }),
        ]);
    }
    pos_report.finish();
}
