// Fixture: a SAFETY comment immediately above the unsafe site satisfies
// the rule without any pragma. Never compiled — lexed by the lint engine.

pub fn read_raw(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` points at one initialized, live byte.
    unsafe { *p }
}
