//! Wall-clock throughput measurement for the experiment harness.

use std::time::{Duration, Instant};

/// Counts operations against wall time.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    started: Instant,
    ops: u64,
    /// Set by [`ThroughputMeter::stop`]; `None` while running.
    elapsed: Option<Duration>,
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        ThroughputMeter::start()
    }
}

impl ThroughputMeter {
    /// Start measuring now.
    pub fn start() -> Self {
        ThroughputMeter {
            started: Instant::now(),
            ops: 0,
            elapsed: None,
        }
    }

    /// Record `n` completed operations.
    pub fn add(&mut self, n: u64) {
        self.ops += n;
    }

    /// Record one completed operation.
    pub fn tick(&mut self) {
        self.ops += 1;
    }

    /// Operations recorded.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Freeze the elapsed time (idempotent).
    pub fn stop(&mut self) {
        if self.elapsed.is_none() {
            self.elapsed = Some(self.started.elapsed());
        }
    }

    /// Elapsed wall time (running total until [`ThroughputMeter::stop`]).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.elapsed.unwrap_or_else(|| self.started.elapsed())
    }

    /// Operations per second (0 when no time has passed).
    #[must_use]
    pub fn ops_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ops as f64 / secs
        }
    }

    /// Mean latency per op in nanoseconds (0 when no ops).
    #[must_use]
    pub fn mean_ns_per_op(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.elapsed().as_nanos() as f64 / self.ops as f64
        }
    }

    /// Restart the meter for a fresh measurement window: ops back to zero,
    /// the clock restarted, a frozen [`ThroughputMeter::stop`] undone.
    /// Servers reuse one meter across stat windows instead of
    /// reallocating.
    pub fn reset(&mut self) {
        self.started = Instant::now();
        self.ops = 0;
        self.elapsed = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ops() {
        let mut m = ThroughputMeter::start();
        m.tick();
        m.add(9);
        assert_eq!(m.ops(), 10);
    }

    #[test]
    fn rates_are_positive_after_work() {
        let mut m = ThroughputMeter::start();
        for _ in 0..1000 {
            m.tick();
        }
        std::thread::sleep(Duration::from_millis(2));
        m.stop();
        assert!(m.ops_per_sec() > 0.0);
        assert!(m.mean_ns_per_op() > 0.0);
        let frozen = m.elapsed();
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(m.elapsed(), frozen, "stop freezes elapsed");
    }

    #[test]
    fn zero_ops_zero_rates() {
        let m = ThroughputMeter::start();
        assert_eq!(m.mean_ns_per_op(), 0.0);
    }

    #[test]
    fn reset_then_reuse_measures_fresh_window() {
        let mut m = ThroughputMeter::start();
        m.add(100);
        std::thread::sleep(Duration::from_millis(2));
        m.stop();
        let first_elapsed = m.elapsed();
        assert!(first_elapsed >= Duration::from_millis(2));

        // Second stat window on the same meter: counts and clock must not
        // leak from the first.
        m.reset();
        assert_eq!(m.ops(), 0);
        assert!(m.elapsed() < first_elapsed, "clock restarted");
        m.add(7);
        std::thread::sleep(Duration::from_millis(1));
        m.stop();
        assert_eq!(m.ops(), 7);
        assert!(m.ops_per_sec() > 0.0);
        let frozen = m.elapsed();
        std::thread::sleep(Duration::from_millis(1));
        assert_eq!(m.elapsed(), frozen, "stop freezes the reused window too");
    }
}
