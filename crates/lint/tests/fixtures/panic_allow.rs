// Fixture: the same unwrap, silenced by a pragma with a reason.
// Linted under a pretend hot-path rel path; never compiled.

// adcast-lint: allow(no-panic-hot-path) -- fixture: invariant checked two lines up
fn serve_one(q: Option<u32>) -> u32 {
    q.unwrap()
}
