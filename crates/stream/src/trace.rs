//! Message-trace record and replay.
//!
//! Experiments are replayable two ways: regenerate from the seed, or write
//! the materialized stream to a compact binary trace and replay it later
//! (useful for cross-engine comparisons on *identical* inputs without
//! re-running the generator, and for persisting interesting workloads).
//!
//! The codec is hand-rolled on the `bytes` crate (no serde format crates
//! are available offline). Layout, all little-endian:
//!
//! ```text
//! header:  magic "ADCT" | version u16 | reserved u16
//! record:  id u64 | author u32 | ts u64 | location u16
//!        | nterms u16 | nterms × (term u32, weight f32)
//! ```

use std::sync::Arc;

use adcast_graph::UserId;
use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::clock::Timestamp;
use crate::event::{LocationId, Message, MessageId, SharedMessage};

const MAGIC: &[u8; 4] = b"ADCT";
const VERSION: u16 = 1;

/// Decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The trace does not start with the `ADCT` magic.
    BadMagic,
    /// The trace was written by an incompatible version.
    BadVersion(u16),
    /// The trace ends mid-record.
    Truncated,
    /// A record contains an invalid payload (e.g. non-finite weight).
    Corrupt(&'static str),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not an adcast trace (bad magic)"),
            TraceError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceError::Truncated => write!(f, "trace truncated mid-record"),
            TraceError::Corrupt(what) => write!(f, "corrupt trace: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Serializes messages into an in-memory trace buffer.
#[derive(Debug)]
pub struct TraceWriter {
    buf: BytesMut,
    count: u64,
}

impl Default for TraceWriter {
    fn default() -> Self {
        TraceWriter::new()
    }
}

impl TraceWriter {
    /// Start a new trace (writes the header).
    pub fn new() -> Self {
        let mut buf = BytesMut::with_capacity(4096);
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        TraceWriter { buf, count: 0 }
    }

    /// Append one message.
    pub fn write(&mut self, m: &Message) {
        let n = u16::try_from(m.vector.len()).expect("vector larger than u16::MAX terms");
        self.buf.put_u64_le(m.id.0);
        self.buf.put_u32_le(m.author.0);
        self.buf.put_u64_le(m.ts.micros());
        self.buf.put_u16_le(m.location.0);
        self.buf.put_u16_le(n);
        for (t, w) in m.vector.iter() {
            self.buf.put_u32_le(t.0);
            self.buf.put_f32_le(w);
        }
        self.count += 1;
    }

    /// Messages written so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bytes written so far (header included).
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Finish, returning the immutable trace bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Streaming decoder over trace bytes.
#[derive(Debug)]
pub struct TraceReader {
    data: Bytes,
}

impl TraceReader {
    /// Validate the header and position after it.
    pub fn new(mut data: Bytes) -> Result<Self, TraceError> {
        if data.remaining() < 8 {
            return Err(TraceError::BadMagic);
        }
        let mut magic = [0u8; 4];
        data.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = data.get_u16_le();
        if version != VERSION {
            return Err(TraceError::BadVersion(version));
        }
        let _reserved = data.get_u16_le();
        Ok(TraceReader { data })
    }

    /// Decode the next message, `Ok(None)` at a clean end of trace.
    pub fn next_message(&mut self) -> Result<Option<SharedMessage>, TraceError> {
        if !self.data.has_remaining() {
            return Ok(None);
        }
        const FIXED: usize = 8 + 4 + 8 + 2 + 2;
        if self.data.remaining() < FIXED {
            return Err(TraceError::Truncated);
        }
        let id = MessageId(self.data.get_u64_le());
        let author = UserId(self.data.get_u32_le());
        let ts = Timestamp(self.data.get_u64_le());
        let location = LocationId(self.data.get_u16_le());
        let n = self.data.get_u16_le() as usize;
        if self.data.remaining() < n * 8 {
            return Err(TraceError::Truncated);
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let t = TermId(self.data.get_u32_le());
            let w = self.data.get_f32_le();
            if !w.is_finite() || w == 0.0 {
                return Err(TraceError::Corrupt("zero or non-finite weight"));
            }
            entries.push((t, w));
        }
        if entries.windows(2).any(|p| p[0].0 >= p[1].0) {
            return Err(TraceError::Corrupt("terms not strictly sorted"));
        }
        let vector = SparseVector::from_sorted(entries);
        Ok(Some(Arc::new(Message {
            id,
            author,
            ts,
            location,
            vector,
        })))
    }

    /// Decode the whole remaining trace.
    pub fn read_all(&mut self) -> Result<Vec<SharedMessage>, TraceError> {
        let mut out = Vec::new();
        while let Some(m) = self.next_message()? {
            out.push(m);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGenerator};

    fn sample_messages(n: usize) -> Vec<SharedMessage> {
        let mut g = WorkloadGenerator::with_poisson(WorkloadConfig::tiny(), 50.0);
        (0..n).map(|_| g.next_message()).collect()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let msgs = sample_messages(25);
        let mut w = TraceWriter::new();
        for m in &msgs {
            w.write(m);
        }
        assert_eq!(w.count(), 25);
        let bytes = w.finish();
        let mut r = TraceReader::new(bytes).unwrap();
        let decoded = r.read_all().unwrap();
        assert_eq!(decoded.len(), msgs.len());
        for (a, b) in msgs.iter().zip(&decoded) {
            assert_eq!(**a, **b);
        }
    }

    #[test]
    fn empty_trace_roundtrip() {
        let bytes = TraceWriter::new().finish();
        let mut r = TraceReader::new(bytes).unwrap();
        assert_eq!(r.read_all().unwrap().len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = TraceReader::new(Bytes::from_static(b"NOPE0000")).unwrap_err();
        assert_eq!(err, TraceError::BadMagic);
        let err = TraceReader::new(Bytes::from_static(b"AD")).unwrap_err();
        assert_eq!(err, TraceError::BadMagic);
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(99);
        buf.put_u16_le(0);
        let err = TraceReader::new(buf.freeze()).unwrap_err();
        assert_eq!(err, TraceError::BadVersion(99));
    }

    #[test]
    fn truncated_record_detected() {
        let msgs = sample_messages(2);
        let mut w = TraceWriter::new();
        for m in &msgs {
            w.write(m);
        }
        let bytes = w.finish();
        let cut = bytes.slice(0..bytes.len() - 3);
        let mut r = TraceReader::new(cut).unwrap();
        let res = r.read_all();
        assert_eq!(res.unwrap_err(), TraceError::Truncated);
    }

    #[test]
    fn corrupt_weight_detected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf.put_u64_le(0); // id
        buf.put_u32_le(0); // author
        buf.put_u64_le(0); // ts
        buf.put_u16_le(0); // location
        buf.put_u16_le(1); // one term
        buf.put_u32_le(7);
        buf.put_f32_le(f32::NAN);
        let mut r = TraceReader::new(buf.freeze()).unwrap();
        assert!(matches!(r.next_message(), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn unsorted_terms_detected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u16_le(VERSION);
        buf.put_u16_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        buf.put_u16_le(0);
        buf.put_u16_le(2);
        buf.put_u32_le(9);
        buf.put_f32_le(1.0);
        buf.put_u32_le(3);
        buf.put_f32_le(1.0);
        let mut r = TraceReader::new(buf.freeze()).unwrap();
        assert!(matches!(r.next_message(), Err(TraceError::Corrupt(_))));
    }

    #[test]
    fn error_display() {
        assert!(TraceError::BadMagic.to_string().contains("magic"));
        assert!(TraceError::BadVersion(9).to_string().contains('9'));
        assert!(TraceError::Truncated.to_string().contains("truncated"));
    }
}
