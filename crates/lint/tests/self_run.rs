//! The workspace must lint clean against its own rules. This is the same
//! gate `scripts/check.sh` enforces; having it as a test means `cargo
//! test` alone catches a regression.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = adcast_lint::lint_workspace(&root, None).expect("workspace walk");
    assert!(
        report.clean(),
        "adcast-lint found {} violation(s) in the workspace:\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk actually visited the tree (not an empty dir).
    assert!(
        report.files_scanned > 50,
        "only {} file(s) scanned — wrong root?",
        report.files_scanned
    );
    // Every suppression in the tree carries a reason by construction; the
    // count is recorded in bench_summary.json so creep is visible.
    assert!(report.suppressions >= 1);
}
