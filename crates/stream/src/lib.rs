//! # adcast-stream — streaming substrate for `adcast`
//!
//! The message-stream model and the synthetic workload machinery that
//! substitutes for a Twitter firehose trace (DESIGN.md §5):
//!
//! * [`clock`] — microsecond [`clock::Timestamp`]s and a virtual clock
//!   (experiments run on simulated time; wall time never leaks into the
//!   engines),
//! * [`decay`] — exponential *forward decay* (Cormode et al.): arrivals get
//!   ever-growing weights relative to a fixed landmark so that already
//!   accumulated state never needs rescaling, with explicit renormalization
//!   when the exponent grows too large for `f64`,
//! * [`event`] — messages, ads-relevant ids ([`event::MessageId`],
//!   [`event::LocationId`]) and the stream event enum,
//! * [`geo`] — the 2-D cell grid behind `LocationId` (distances, radius
//!   queries) and the clustered-cities home model,
//! * [`arrival`] — Poisson / uniform / bursty (Markov-modulated) arrival
//!   processes,
//! * [`topics`] — the synthetic topic model: Zipfian vocabulary per topic,
//!   per-user interest mixtures (these mixtures double as the ground truth
//!   for the effectiveness experiments),
//! * [`generator`] — the end-to-end workload generator producing message
//!   streams and ad corpora over a shared dictionary,
//! * [`trace`] — record/replay with a hand-rolled binary codec (no serde
//!   format crates offline).

pub mod arrival;
pub mod clock;
pub mod decay;
pub mod event;
pub mod generator;
pub mod geo;
pub mod topics;
pub mod trace;

pub use clock::{Duration, Timestamp, VirtualClock};
pub use decay::ForwardDecay;
pub use event::{LocationId, Message, MessageId, TimeSlot};
pub use generator::{WorkloadConfig, WorkloadGenerator};
pub use geo::{CityModel, GeoGrid};
