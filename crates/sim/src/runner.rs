//! The scenario runner: a simulated day against the production stack.
//!
//! [`run`] executes a [`SimConfig`] single-threaded over virtual time:
//! the synthetic workload's ingest batches, recommendation waves with
//! impression charges, WAL-logged lifecycle maintenance passes, and the
//! fault script — all through the *same* `log → commit → apply` path and
//! the same [`apply_record`] the live server uses, against the in-memory
//! [`MemBackend`]. No real sockets, no real disk, no real sleeping.
//!
//! Determinism contract: the transcript and summary derive only from the
//! workload (seeded), the harness's own RNG (seeded), and counters
//! maintained on the caller's thread. The shared [`SimClock`] is advanced
//! by fsyncs — including the background snapshot persister's — so it is
//! **never** printed; virtual *event* time (the workload's timestamps)
//! stamps every transcript line instead.
//!
//! Crash faults additionally prove the bit-identical-twin property: after
//! recovery the runner replays its own committed record log into a fresh
//! store + driver and compares the two [`EngineSetSnapshot`] encodings
//! byte for byte.

use std::sync::Arc;

use adcast_ads::{AdStore, CampaignState};
use adcast_core::ShardedDriver;
use adcast_durability::recovery::recover_on;
use adcast_durability::snapshot::EngineSetSnapshot;
use adcast_durability::{
    apply_record, ApplyEffect, Durability, DurabilityOptions, StorageBackend, WalRecord,
};
use adcast_graph::UserId;
use adcast_net::synth::{self, SynthWorkload};
use adcast_stream::clock::{SimClock, Timestamp};
use adcast_stream::event::LocationId;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::backend::MemBackend;
use crate::scenario::{Fault, SimConfig};

/// Deterministic run counters (everything the summary renders).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SimCounters {
    /// Campaigns submitted up front.
    pub campaigns: u64,
    /// Ingest batches applied.
    pub batches: u64,
    /// Feed deltas applied.
    pub deltas: u64,
    /// Recommendation requests served.
    pub recommends: u64,
    /// Recommendations returned across all requests.
    pub served: u64,
    /// Impressions charged.
    pub impressions: u64,
    /// Impressions that exhausted a campaign's budget.
    pub exhausted: u64,
    /// Phantom requests shed by the bounded admission queue.
    pub sheds: u64,
    /// Maintenance passes run.
    pub maint_passes: u64,
    /// Users examined by maintenance.
    pub maint_scanned: u64,
    /// Idle users reset by maintenance.
    pub maint_decayed: u64,
    /// Finished-flight campaigns evicted by maintenance.
    pub maint_pruned: u64,
    /// Crash faults executed.
    pub crashes: u64,
    /// Twin checks passed (== `crashes` when the run succeeds).
    pub twin_checks: u64,
    /// Batches lost in crashes before their commit (never acked).
    pub lost_records: u64,
    /// Acked records lost to a crash (possible only when the fsync
    /// policy is weaker than `Always`).
    pub lost_acked: u64,
    /// WAL records replayed across all recoveries.
    pub replayed_records: u64,
    /// Torn bytes truncated across all recoveries.
    pub torn_bytes: u64,
    /// Snapshots persisted (periodic + the final checkpoint).
    pub snapshots_written: u64,
    /// WAL records appended over the whole run.
    pub wal_records: u64,
    /// fsyncs issued by the backend (WAL + snapshot persister).
    pub fsyncs: u64,
    /// Campaigns still active at the end.
    pub store_active: u64,
    /// Data-dir bytes after the final checkpoint settled.
    pub disk_bytes: u64,
    /// Data-dir files after the final checkpoint settled.
    pub disk_files: u64,
}

/// What a run produced.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// One line per event, stamped with virtual event time. Byte-identical
    /// across runs of the same config.
    pub transcript: String,
    /// Fixed-order `key=value` rendering of [`SimCounters`] plus engine
    /// work counters. Byte-identical across runs of the same config.
    pub summary: String,
    /// The counters behind the summary.
    pub counters: SimCounters,
}

struct Runner {
    config: SimConfig,
    backend: Arc<MemBackend>,
    store: AdStore,
    driver: ShardedDriver,
    durability: Option<Durability>,
    /// Every *committed* record in LSN order — the twin-check oracle.
    record_log: Vec<WalRecord>,
    rng: SmallRng,
    now: Timestamp,
    last_maint: Timestamp,
    backlog: u64,
    storm_steps_left: u64,
    storm_arrivals: u64,
    homes: Vec<LocationId>,
    transcript: Vec<String>,
    c: SimCounters,
}

/// Execute one scenario to completion.
///
/// # Errors
///
/// A description when durability fails, a record refuses to apply, or a
/// crash-recovery twin check finds divergence (which would be a bug in
/// the engine/durability stack, not in the scenario).
pub fn run(config: SimConfig) -> Result<SimOutcome, String> {
    let workload = synth::build(&config.synth);
    let clock = Arc::new(SimClock::new());
    let backend = MemBackend::new(Arc::clone(&clock), config.fsync_latency_ns);
    let recovered = recover_on(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        workload.num_users,
        config.num_shards,
        config.engine.clone(),
        config.wal,
    )
    .map_err(|e| e.to_string())?;
    let durability = Durability::new_on(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        recovered.wal,
        DurabilityOptions {
            wal: config.wal,
            snapshot_every: config.snapshot_every,
            keep_snapshots: config.keep_snapshots,
        },
        recovered.report,
    );
    let seed = config.synth.seed;
    let runner = Runner {
        config,
        backend,
        store: recovered.store,
        driver: recovered.driver,
        durability: Some(durability),
        record_log: Vec::new(),
        // A distinct stream from the workload generator's, so harness
        // choices (wave users, clicks) never alias workload structure.
        rng: SmallRng::seed_from_u64(seed ^ 0x51D_CA57),
        now: Timestamp::EPOCH,
        last_maint: Timestamp::EPOCH,
        backlog: 0,
        storm_steps_left: 0,
        storm_arrivals: 0,
        homes: Vec::new(),
        transcript: Vec::new(),
        c: SimCounters::default(),
    };
    runner.execute(workload)
}

impl Runner {
    fn execute(mut self, workload: SynthWorkload) -> Result<SimOutcome, String> {
        self.homes = workload.homes;
        self.submit_campaigns(workload.campaigns)?;

        let batches = workload.batches;
        for (i, batch) in batches.into_iter().enumerate() {
            // Fault script first: the fault "arrives" before the batch.
            let mut crash_now = false;
            let due: Vec<Fault> = self
                .config
                .faults
                .iter()
                .filter(|f| f.at_batch == i)
                .map(|f| f.fault)
                .collect();
            for fault in due {
                match fault {
                    Fault::FsyncStall { ms } => {
                        self.backend.stall_next_fsync(ms * 1_000_000);
                        self.line(format!("fault fsync_stall ms={ms}"));
                    }
                    Fault::ShedStorm { arrivals, steps } => {
                        self.storm_arrivals = arrivals;
                        self.storm_steps_left = steps;
                        self.line(format!(
                            "fault shed_storm arrivals={arrivals} steps={steps}"
                        ));
                    }
                    Fault::Crash => crash_now = true,
                }
            }

            // Virtual event time advances to the batch's newest message.
            for (_, delta) in &batch {
                if let Some(m) = &delta.entered {
                    if m.ts > self.now {
                        self.now = m.ts;
                    }
                }
            }

            if crash_now {
                self.crash_and_recover(WalRecord::IngestBatch(batch))?;
                continue;
            }

            self.admission_step();
            let deltas = batch.len() as u64;
            self.log_apply(WalRecord::IngestBatch(batch))?;
            self.c.batches += 1;
            self.c.deltas += deltas;
            self.line(format!(
                "ingest batch={i} deltas={deltas} backlog={} shed_total={}",
                self.backlog, self.c.sheds
            ));
            if let Some(d) = self.durability.as_mut() {
                d.maybe_snapshot(&self.store, &self.driver);
            }

            if self.config.recommend_every > 0 && (i + 1) % self.config.recommend_every == 0 {
                self.serve_wave(workload.num_users)?;
            }
            self.maybe_maintain()?;
        }

        // Settle: a final durable checkpoint, then join the persister so
        // disk numbers are stable before we read them.
        let durability = self.durability.as_mut().expect("durability live at end");
        durability
            .checkpoint(&self.store, &self.driver)
            .map_err(|e| e.to_string())?;
        let counters = durability.counters();
        self.c.wal_records = counters.wal_records;
        drop(self.durability.take());
        self.c.snapshots_written = counters.snapshots_written;
        self.c.fsyncs = self.backend.fsyncs();
        self.c.store_active = self.store.num_active() as u64;
        self.c.disk_bytes = self.backend.total_bytes();
        self.c.disk_files = self.backend.file_count() as u64;
        self.line(format!(
            "done batches={} wal_records={} disk_bytes={} disk_files={}",
            self.c.batches, self.c.wal_records, self.c.disk_bytes, self.c.disk_files
        ));

        let summary = self.render_summary();
        let mut transcript = self.transcript.join("\n");
        transcript.push('\n');
        Ok(SimOutcome {
            transcript,
            summary,
            counters: self.c,
        })
    }

    fn submit_campaigns(
        &mut self,
        campaigns: Vec<adcast_net::protocol::CampaignSpec>,
    ) -> Result<(), String> {
        let total = campaigns.len();
        for (i, spec) in campaigns.into_iter().enumerate() {
            let sub = spec.try_into_submission()?;
            let effect = self.log_apply(WalRecord::Submit(sub))?;
            let ApplyEffect::Submitted { ad } = effect else {
                return Err("submit produced a non-submit effect".to_string());
            };
            self.c.campaigns += 1;
            if self.config.paced_every > 0 && i % self.config.paced_every == 0 {
                self.log_apply(WalRecord::SetPacing {
                    ad,
                    start: Timestamp::EPOCH,
                    end: Timestamp::from_secs(self.config.flight_secs),
                    budget: self.config.flight_budget,
                })?;
            }
        }
        self.line(format!(
            "submitted campaigns={total} paced_every={}",
            self.config.paced_every
        ));
        Ok(())
    }

    /// One step of the bounded-admission model: phantom arrivals compete
    /// for queue space, overflow is shed (mirrors the server's bounded
    /// request queue + `Overloaded` refusal).
    fn admission_step(&mut self) {
        let mut arrivals = 1;
        if self.storm_steps_left > 0 {
            self.storm_steps_left -= 1;
            arrivals += self.storm_arrivals;
        }
        self.backlog += arrivals;
        let drained = self.backlog.min(self.config.drain_per_step);
        self.backlog -= drained;
        if self.backlog > self.config.queue_depth {
            self.c.sheds += self.backlog - self.config.queue_depth;
            self.backlog = self.config.queue_depth;
        }
    }

    fn serve_wave(&mut self, num_users: u32) -> Result<(), String> {
        let mut served = 0u64;
        let mut charges = Vec::with_capacity(self.config.wave_users);
        for _ in 0..self.config.wave_users {
            let user = UserId(self.rng.gen_range(0..num_users));
            let home = self.homes[user.index()];
            let recs =
                self.driver
                    .recommend(&self.store, user, self.now, home, self.config.engine.k);
            served += recs.len() as u64;
            if let Some(top) = recs.first() {
                let clicked = self.rng.gen_range(0..10u32) == 0;
                charges.push((top.ad, clicked));
            }
        }
        self.c.recommends += self.config.wave_users as u64;
        self.c.served += served;
        for (ad, clicked) in charges {
            let effect = self.log_apply(WalRecord::Impression {
                ad,
                cost: self.config.impression_cost,
                clicked,
                now: self.now,
            })?;
            self.c.impressions += 1;
            if let ApplyEffect::Impression {
                state: Some(CampaignState::Exhausted),
            } = effect
            {
                self.c.exhausted += 1;
            }
        }
        self.line(format!(
            "wave users={} served={served} impressions={}",
            self.config.wave_users, self.c.impressions
        ));
        Ok(())
    }

    fn maybe_maintain(&mut self) -> Result<(), String> {
        if self.config.maintenance_every == adcast_stream::clock::Duration::ZERO
            || self.now.since(self.last_maint) < self.config.maintenance_every
        {
            return Ok(());
        }
        self.last_maint = self.now;
        let effect = self.log_apply(WalRecord::Maintenance {
            now: self.now,
            idle_for: self.config.idle_for,
        })?;
        let ApplyEffect::Maintained {
            scanned,
            decayed,
            pruned,
        } = effect
        else {
            return Err("maintenance produced a non-maintenance effect".to_string());
        };
        self.c.maint_passes += 1;
        self.c.maint_scanned += scanned;
        self.c.maint_decayed += decayed;
        self.c.maint_pruned += pruned;
        self.line(format!(
            "maintenance scanned={scanned} decayed={decayed} pruned={pruned}"
        ));
        Ok(())
    }

    /// The production ack path: log → commit → apply. Only committed
    /// records enter the twin-check oracle.
    fn log_apply(&mut self, record: WalRecord) -> Result<ApplyEffect, String> {
        let durability = self.durability.as_mut().expect("durability live");
        durability.log(&record).map_err(|e| e.to_string())?;
        durability.commit().map_err(|e| e.to_string())?;
        self.record_log.push(record.clone());
        apply_record(&mut self.store, &mut self.driver, record)
    }

    /// Power loss with `pending` logged but never committed, then
    /// recovery in place and the bit-identical twin check.
    fn crash_and_recover(&mut self, pending: WalRecord) -> Result<(), String> {
        let mut durability = self.durability.take().expect("durability live");
        durability.log(&pending).map_err(|e| e.to_string())?;
        // Dropping flushes the writer's buffer (unsynced bytes) and joins
        // the snapshot persister — anything it finished is on "disk".
        drop(durability);
        let crash = self.backend.crash();
        let recovered = recover_on(
            Arc::clone(&self.backend) as Arc<dyn StorageBackend>,
            self.driver.num_users(),
            self.config.num_shards,
            self.config.engine.clone(),
            self.config.wal,
        )
        .map_err(|e| e.to_string())?;
        let next_lsn = recovered.wal.next_lsn();
        if self.record_log.len() as u64 > next_lsn {
            self.c.lost_acked += self.record_log.len() as u64 - next_lsn;
            self.record_log.truncate(next_lsn as usize);
        }
        self.store = recovered.store;
        self.driver = recovered.driver;
        self.c.crashes += 1;
        self.c.lost_records += 1; // the pending, never-acked batch
        self.c.replayed_records += recovered.report.replayed_records;
        self.c.torn_bytes += recovered.report.truncated_bytes + crash.bytes_lost;

        // Twin check: a fresh pair replaying the committed log must be
        // byte-identical to the recovered state.
        let mut twin_store = AdStore::new();
        let mut twin_driver = ShardedDriver::new(
            self.driver.num_users(),
            self.config.num_shards,
            self.config.engine.clone(),
        );
        for record in &self.record_log {
            apply_record(&mut twin_store, &mut twin_driver, record.clone())?;
        }
        let recovered_bytes =
            EngineSetSnapshot::capture(next_lsn, &self.store, &self.driver).encode();
        let twin_bytes = EngineSetSnapshot::capture(next_lsn, &twin_store, &twin_driver).encode();
        if recovered_bytes != twin_bytes {
            return Err(format!(
                "twin check failed at lsn {next_lsn}: recovered state diverges from replay"
            ));
        }
        self.c.twin_checks += 1;

        self.durability = Some(Durability::new_on(
            Arc::clone(&self.backend) as Arc<dyn StorageBackend>,
            recovered.wal,
            DurabilityOptions {
                wal: self.config.wal,
                snapshot_every: self.config.snapshot_every,
                keep_snapshots: self.config.keep_snapshots,
            },
            recovered.report,
        ));
        self.line(format!(
            "crash recovered_lsn={next_lsn} replayed={} snapshot_lsn={} twin=ok",
            recovered.report.replayed_records,
            recovered
                .report
                .snapshot_lsn
                .map_or_else(|| "none".to_string(), |l| l.to_string()),
        ));
        Ok(())
    }

    fn line(&mut self, body: String) {
        self.transcript.push(format!("t={} {body}", self.now));
    }

    fn render_summary(&self) -> String {
        let c = &self.c;
        let stats = self.driver.stats();
        let mut s = String::new();
        for (key, value) in [
            ("users", u64::from(self.driver.num_users())),
            ("shards", self.config.num_shards as u64),
            ("campaigns", c.campaigns),
            ("batches", c.batches),
            ("deltas", c.deltas),
            ("recommends", c.recommends),
            ("served", c.served),
            ("impressions", c.impressions),
            ("exhausted", c.exhausted),
            ("sheds", c.sheds),
            ("maint_passes", c.maint_passes),
            ("maint_scanned", c.maint_scanned),
            ("maint_decayed", c.maint_decayed),
            ("maint_pruned", c.maint_pruned),
            ("crashes", c.crashes),
            ("twin_checks", c.twin_checks),
            ("lost_records", c.lost_records),
            ("lost_acked", c.lost_acked),
            ("replayed_records", c.replayed_records),
            ("torn_bytes", c.torn_bytes),
            ("snapshots_written", c.snapshots_written),
            ("wal_records", c.wal_records),
            ("fsyncs", c.fsyncs),
            ("store_active", c.store_active),
            ("disk_bytes", c.disk_bytes),
            ("disk_files", c.disk_files),
            ("engine_deltas", stats.deltas),
            ("engine_postings_scanned", stats.postings_scanned),
            ("engine_ads_scored", stats.ads_scored),
            ("engine_promotions", stats.promotions),
            ("engine_refreshes", stats.refreshes),
            ("engine_recommends", stats.recommends),
        ] {
            s.push_str(key);
            s.push('=');
            s.push_str(&value.to_string());
            s.push('\n');
        }
        s
    }
}
