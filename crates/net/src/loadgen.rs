//! Closed-loop multi-connection load generator.
//!
//! Offered load is the connection count: every connection keeps exactly
//! one request outstanding (send, wait, send…), so the server is never
//! driven past `connections` concurrent RPCs and the measured RTT is the
//! full client-observed round trip. Users are partitioned across
//! connections by `user % connections`, which preserves each user's delta
//! order (ingest order only matters per user).
//!
//! A shed ([`WireError::Overloaded`]) reply is counted, backed off, and
//! retried — a closed loop plus retry means every delta is eventually
//! applied, and the shed count measures how hard admission control pushed
//! back at this offered load.
//!
//! A dropped connection ([`NetError::Disconnected`]) is ridden through:
//! the connection reconnects (with the client's connect backoff) and
//! re-issues the in-flight RPC. Against a durable server that was
//! `kill -9`ed and restarted this gives at-least-once delivery — an RPC
//! whose ack was lost in the crash is replayed, so server-side counters
//! can exceed the loadgen's (never undershoot).

use std::io;
use std::sync::Arc;
use std::time::Duration;

use adcast_graph::UserId;
use adcast_metrics::{LatencyHistogram, ThroughputMeter};
use adcast_obs::{find_family, histogram_quantile, http_get, parse_exposition};
use adcast_stream::clock::now_ns;

use crate::client::{Client, ClientConfig};
use crate::codec::NetError;
use crate::protocol::{ServerStats, WireError};
use crate::synth::SynthWorkload;

/// Load-generation knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address.
    pub addr: String,
    /// Concurrent closed-loop connections (the offered load).
    pub connections: usize,
    /// Issue one Recommend RPC per this many ingest batches (0 = none).
    pub recommend_every: usize,
    /// Top-k requested on each Recommend.
    pub k: u16,
    /// Connection behaviour.
    pub client: ClientConfig,
    /// Observability endpoint (`host:port` of the server's `--obs-addr`
    /// listener). When set, the run ends with a `/metrics` + `/healthz`
    /// scrape whose parsed result lands in [`LoadgenReport::obs`]; a
    /// malformed exposition is a hard error.
    pub obs_addr: Option<String>,
    /// Mirror of the router's `--trace-sample N`. When nonzero the run
    /// also fetches the sampled traces from [`LoadgenConfig::obs_addr`]
    /// (`/traces`, then each `/traces/<id>` — stitched cross-node when
    /// the target is the router's federated obs port) into
    /// [`LoadgenReport::traces`]; a run that was sampling but yields no
    /// trace is a hard error.
    pub trace_sample: u64,
}

impl LoadgenConfig {
    /// Sensible defaults against `addr`.
    #[must_use]
    pub fn new(addr: impl Into<String>) -> Self {
        LoadgenConfig {
            addr: addr.into(),
            connections: 2,
            recommend_every: 4,
            k: 10,
            client: ClientConfig::default(),
            obs_addr: None,
            trace_sample: 0,
        }
    }
}

/// The server-side stage histograms a scrape surfaces next to the
/// client-observed RTTs (delta lifecycle order).
pub const STAGE_FAMILIES: &[&str] = &[
    "adcast_net_queue_wait_ns",
    "adcast_net_wal_commit_ns",
    "adcast_net_engine_apply_ns",
    "adcast_net_ingest_ns",
    "adcast_net_recommend_ns",
];

/// The blocked-index pruning families every scrape must find. The engine
/// registers them at construction, so a missing family means the server
/// is not running the blocked ad index at all — a hard error for
/// `--obs-addr` runs, not a degraded report.
pub const INDEX_FAMILIES: &[&str] = &[
    "adcast_index_blocks_scanned_total",
    "adcast_index_blocks_skipped_total",
    "adcast_index_prune_ratio_bp",
    "adcast_index_block_scan_ns",
];

/// Blocked-index pruning counters from an end-of-run scrape.
#[derive(Debug)]
pub struct IndexPrune {
    /// Posting blocks the evaluators actually walked (cumulative).
    pub blocks_scanned: u64,
    /// Posting blocks the block-max bound let them skip (cumulative).
    pub blocks_skipped: u64,
    /// Prune ratio of the most recent pruned query, in basis points.
    pub prune_ratio_bp: i64,
}

impl IndexPrune {
    /// Fraction of all posting blocks skipped over the whole run.
    #[must_use]
    pub fn prune_ratio(&self) -> f64 {
        let total = self.blocks_scanned + self.blocks_skipped;
        if total == 0 {
            0.0
        } else {
            self.blocks_skipped as f64 / total as f64
        }
    }
}

/// Parsed end-of-run scrape of the server's observability endpoint.
#[derive(Debug)]
pub struct ObsScrape {
    /// Metric families in the exposition.
    pub families: usize,
    /// Exposition body size in bytes.
    pub bytes: usize,
    /// Did `/healthz` answer 200?
    pub healthy: bool,
    /// `(family, p50 ns, p99 ns)` for each [`STAGE_FAMILIES`] histogram
    /// present in the exposition with at least one observation.
    pub stages: Vec<(String, u64, u64)>,
    /// Blocked-index pruning counters, when every [`INDEX_FAMILIES`]
    /// family was present. `None` means at least one was missing.
    pub index: Option<IndexPrune>,
}

/// Scrape and validate `/metrics` + `/healthz` on `addr`.
///
/// # Errors
///
/// Transport failures, a non-200 status, or an exposition the validating
/// parser rejects (all as [`NetError::Io`] — the scrape is HTTP, not the
/// wire protocol).
pub fn scrape_obs(addr: &str) -> Result<ObsScrape, NetError> {
    let (status, body) = http_get(addr, "/metrics")?;
    if status != 200 {
        return Err(NetError::Io(io::Error::other(format!(
            "GET /metrics returned status {status}"
        ))));
    }
    let families = parse_exposition(&body)
        .map_err(|e| NetError::Io(io::Error::other(format!("malformed /metrics: {e}"))))?;
    let (health_status, _) = http_get(addr, "/healthz")?;
    let mut stages = Vec::new();
    for name in STAGE_FAMILIES {
        if let Some(family) = find_family(&families, name) {
            let p50 = histogram_quantile(family, 0.50);
            let p99 = histogram_quantile(family, 0.99);
            if let (Some(p50), Some(p99)) = (p50, p99) {
                stages.push(((*name).to_string(), p50 as u64, p99 as u64));
            }
        }
    }
    let index = parse_index_prune(&families);
    Ok(ObsScrape {
        families: families.len(),
        bytes: body.len(),
        healthy: health_status == 200,
        stages,
        index,
    })
}

/// Per-hop latencies from the end-of-run trace fetch, aggregated across
/// every sampled trace the obs endpoint still holds.
#[derive(Debug)]
pub struct TraceScrape {
    /// Sampled traces resident on the endpoint.
    pub traces: usize,
    /// The deepest trace fetched: `(trace_id, spans, distinct nodes)`.
    /// Against the router's federated port the span origins come from
    /// the cross-node stitch, so `nodes` counts processes.
    pub best: (u64, usize, usize),
    /// `(hop name, spans, p50 ns, p99 ns)` across all fetched traces,
    /// in span-kind order (the ack-ladder order).
    pub hops: Vec<(String, usize, u64, u64)>,
}

/// Largest number of `/traces/<id>` fetches one scrape performs; the
/// listing can hold thousands of ids after a long sampled run, and the
/// per-hop quantiles converge long before that.
const MAX_TRACE_FETCHES: usize = 64;

/// Fetch the sampled traces from `addr` and aggregate per-hop
/// latencies. `Ok(None)` means the endpoint holds no traces.
///
/// # Errors
///
/// Transport failures or a non-200 `/traces` listing.
pub fn scrape_traces(addr: &str) -> Result<Option<TraceScrape>, NetError> {
    use adcast_obs::tracestore::{parse_trace_json, parse_trace_list_json, SpanKind};
    let (status, body) = http_get(addr, "/traces")?;
    if status != 200 {
        return Err(NetError::Io(io::Error::other(format!(
            "GET /traces returned status {status}"
        ))));
    }
    let listing = parse_trace_list_json(&body);
    if listing.is_empty() {
        return Ok(None);
    }
    let mut by_kind: Vec<(SpanKind, Vec<u64>)> = Vec::new();
    let mut best = (0u64, 0usize, 0usize);
    for (id, _) in listing.iter().take(MAX_TRACE_FETCHES) {
        let Ok((200, trace_body)) = http_get(addr, &format!("/traces/{id}")) else {
            continue; // a trace can rotate out of the ring between fetches
        };
        let spans = parse_trace_json(&trace_body);
        let nodes = distinct_nodes(&trace_body);
        if (spans.len(), nodes) > (best.1, best.2) {
            best = (*id, spans.len(), nodes);
        }
        for span in spans {
            match by_kind.iter_mut().find(|(k, _)| *k == span.kind) {
                Some((_, durs)) => durs.push(span.dur_ns),
                None => by_kind.push((span.kind, vec![span.dur_ns])),
            }
        }
    }
    by_kind.sort_by_key(|(k, _)| *k as u64);
    let mut hops = Vec::with_capacity(by_kind.len());
    for (kind, mut durs) in by_kind {
        durs.sort_unstable();
        let q = |f: f64| durs[((durs.len() - 1) as f64 * f) as usize];
        hops.push((kind.name().to_string(), durs.len(), q(0.50), q(0.99)));
    }
    Ok(Some(TraceScrape {
        traces: listing.len(),
        best,
        hops,
    }))
}

/// Count the distinct `"node":"…"` origins in a trace body (one span
/// per line; plain bodies without stitch origins count as one node).
fn distinct_nodes(body: &str) -> usize {
    let mut nodes: Vec<&str> = Vec::new();
    for line in body.lines() {
        let Some(at) = line.find("\"node\":\"") else {
            continue;
        };
        let rest = &line[at + 8..];
        let Some(end) = rest.find('"') else { continue };
        let node = &rest[..end];
        if !nodes.contains(&node) {
            nodes.push(node);
        }
    }
    nodes.len().max(1)
}

/// Pull the blocked-index pruning counters out of a parsed exposition;
/// `None` when any [`INDEX_FAMILIES`] family (or its sample) is absent.
fn parse_index_prune(families: &[adcast_obs::ParsedFamily]) -> Option<IndexPrune> {
    if INDEX_FAMILIES
        .iter()
        .any(|name| find_family(families, name).is_none())
    {
        return None;
    }
    let value = |name: &str| find_family(families, name).and_then(|f| f.sample_value(name));
    Some(IndexPrune {
        blocks_scanned: value("adcast_index_blocks_scanned_total")? as u64,
        blocks_skipped: value("adcast_index_blocks_skipped_total")? as u64,
        prune_ratio_bp: value("adcast_index_prune_ratio_bp")? as i64,
    })
}

/// What one load-generation run measured.
#[derive(Debug)]
pub struct LoadgenReport {
    /// Connections driven (the offered load).
    pub connections: usize,
    /// Deltas acknowledged by the server.
    pub deltas_accepted: u64,
    /// Recommend RPCs completed.
    pub recommends: u64,
    /// Successful RPCs completed (all kinds).
    pub responses: u64,
    /// Overloaded replies observed (each was retried).
    pub sheds: u64,
    /// Connection drops ridden through via reconnect (each in-flight RPC
    /// was re-issued: at-least-once).
    pub reconnects: u64,
    /// Client-observed RTT of successful RPCs.
    pub rtt: LatencyHistogram,
    /// Wall time of the replay phase.
    pub elapsed: Duration,
    /// Server counters snapshot taken after the replay.
    pub server: ServerStats,
    /// End-of-run `/metrics` scrape (when [`LoadgenConfig::obs_addr`]
    /// was set).
    pub obs: Option<ObsScrape>,
    /// End-of-run trace fetch (when [`LoadgenConfig::trace_sample`] was
    /// nonzero).
    pub traces: Option<TraceScrape>,
}

impl LoadgenReport {
    /// Achieved ingest throughput in deltas/second.
    #[must_use]
    pub fn deltas_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.deltas_accepted as f64 / secs
        }
    }

    /// Sheds per successful response (how hard backpressure pushed back).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.responses == 0 {
            0.0
        } else {
            self.sheds as f64 / self.responses as f64
        }
    }
}

struct ConnResult {
    rtt: LatencyHistogram,
    accepted: u64,
    recommends: u64,
    responses: u64,
    sheds: u64,
    reconnects: u64,
}

/// Replay `workload` against a running server.
///
/// Campaigns are submitted on a setup connection first; then
/// `config.connections` threads replay their user-partition of every
/// batch in order, each keeping one request outstanding.
///
/// # Errors
///
/// Connection/setup failures, or the first fatal RPC error any
/// connection hit ([`WireError::Overloaded`] is retried, not fatal).
pub fn run(
    config: &LoadgenConfig,
    workload: &Arc<SynthWorkload>,
) -> Result<LoadgenReport, NetError> {
    let conns = config.connections.max(1);
    // Setup: campaigns go in once, on their own connection.
    let mut setup = Client::connect(config.addr.as_str(), &config.client)?;
    for spec in &workload.campaigns {
        setup.submit_campaign(spec.clone())?;
    }

    let mut meter = ThroughputMeter::start();
    let mut joins = Vec::with_capacity(conns);
    for i in 0..conns {
        let config = config.clone();
        let workload = Arc::clone(workload);
        joins.push(std::thread::spawn(move || {
            drive_connection(i, conns, &config, &workload)
        }));
    }
    let mut rtt = LatencyHistogram::new();
    let (mut accepted, mut recommends, mut responses, mut sheds, mut reconnects) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut first_err = None;
    for join in joins {
        match join.join().expect("loadgen connection thread panicked") {
            Ok(r) => {
                rtt.merge(&r.rtt);
                accepted += r.accepted;
                recommends += r.recommends;
                responses += r.responses;
                sheds += r.sheds;
                reconnects += r.reconnects;
            }
            Err(e) => first_err = first_err.or(Some(e)),
        }
    }
    meter.stop();
    if let Some(e) = first_err {
        return Err(e);
    }
    // The setup connection may have died with a mid-run server restart;
    // one reconnect attempt keeps the final stats snapshot alive too.
    let server = match setup.stats() {
        Ok(s) => s,
        Err(NetError::Disconnected) => {
            setup.reconnect()?;
            setup.stats()?
        }
        Err(e) => return Err(e),
    };
    let obs = match config.obs_addr.as_deref() {
        Some(addr) => Some(scrape_obs(addr)?),
        None => None,
    };
    let traces = if config.trace_sample > 0 {
        let addr = config
            .obs_addr
            .as_deref()
            .ok_or_else(|| NetError::Io(io::Error::other("trace fetch needs an obs address")))?;
        match scrape_traces(addr)? {
            Some(t) => Some(t),
            // Sampling was on and the run completed RPCs, so an empty
            // trace store means the trace pipeline is broken — fail
            // loudly rather than printing a report with a hole in it.
            None => {
                return Err(NetError::Io(io::Error::other(
                    "trace sampling enabled but the obs endpoint holds no sampled trace",
                )))
            }
        }
    } else {
        None
    };
    Ok(LoadgenReport {
        connections: conns,
        deltas_accepted: accepted,
        recommends,
        responses,
        sheds,
        reconnects,
        rtt,
        elapsed: meter.elapsed(),
        server,
        obs,
        traces,
    })
}

fn drive_connection(
    index: usize,
    conns: usize,
    config: &LoadgenConfig,
    workload: &SynthWorkload,
) -> Result<ConnResult, NetError> {
    let mut client = Client::connect(config.addr.as_str(), &config.client)?;
    let mut result = ConnResult {
        rtt: LatencyHistogram::new(),
        accepted: 0,
        recommends: 0,
        responses: 0,
        sheds: 0,
        reconnects: 0,
    };
    // This connection's recommend subjects: its own users, round-robin.
    let mut next_user = index as u32;
    for (b, batch) in workload.batches.iter().enumerate() {
        let mine: Vec<(UserId, _)> = batch
            .iter()
            .filter(|(u, _)| u.index() % conns == index)
            .cloned()
            .collect();
        if !mine.is_empty() {
            let n = mine.len() as u64;
            rpc_with_retry(&mut client, &mut result, |c| c.ingest(mine.clone()))?;
            result.accepted += n;
        }
        if config.recommend_every > 0
            && b % config.recommend_every == index % config.recommend_every.max(1)
        {
            let user = UserId(next_user % workload.num_users);
            next_user = next_user.wrapping_add(conns as u32);
            let location = workload.homes[user.index()];
            let (now, k) = (workload.end_time, config.k);
            rpc_with_retry(&mut client, &mut result, |c| {
                c.recommend(user, now, location, k).map(|_| 0)
            })?;
            result.recommends += 1;
        }
    }
    Ok(result)
}

/// Run one RPC, retrying sheds with exponential backoff and riding
/// through dropped connections by reconnecting and re-issuing the RPC
/// (at-least-once); records the RTT of the successful attempt and counts
/// every shed and reconnect. Reconnect attempts are bounded so a server
/// that stays down is a hard error, not a hang.
fn rpc_with_retry(
    client: &mut Client,
    result: &mut ConnResult,
    mut rpc: impl FnMut(&mut Client) -> Result<u32, NetError>,
) -> Result<(), NetError> {
    const MAX_RECONNECTS_PER_RPC: u32 = 3;
    let mut backoff = Duration::from_micros(500);
    let mut reconnects = 0u32;
    loop {
        let started = now_ns();
        match rpc(client) {
            Ok(_) => {
                result
                    .rtt
                    .record_duration(Duration::from_nanos(now_ns().saturating_sub(started)));
                result.responses += 1;
                return Ok(());
            }
            Err(NetError::Remote(WireError::Overloaded)) => {
                result.sheds += 1;
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(Duration::from_millis(20));
            }
            Err(NetError::Disconnected) => {
                if reconnects >= MAX_RECONNECTS_PER_RPC {
                    return Err(NetError::Disconnected);
                }
                reconnects += 1;
                result.reconnects += 1;
                // reconnect() itself retries with exponential backoff.
                client.reconnect()?;
            }
            Err(e) => return Err(e),
        }
    }
}
