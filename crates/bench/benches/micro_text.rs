//! Criterion micro-benchmarks: the text pipeline (tokenize → stem →
//! weigh) on tweet-sized documents.

use adcast_text::pipeline::TextPipeline;
use adcast_text::stemmer::Stemmer;
use adcast_text::tokenizer::Tokenizer;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const TWEET: &str = "The nation's best volleyball returns tomorrow night! Here's how our \
                     coaches think the CW women's teams stack up #volleyball #SportsNight";

fn bench_tokenize(c: &mut Criterion) {
    let tokenizer = Tokenizer::default();
    c.bench_function("tokenize_tweet", |bench| {
        bench.iter(|| black_box(tokenizer.tokenize(TWEET).len()));
    });
}

fn bench_stem(c: &mut Criterion) {
    let mut stemmer = Stemmer::new();
    let words = [
        "volleyball",
        "returns",
        "tomorrow",
        "coaches",
        "generalizations",
    ];
    c.bench_function("porter_stem_5_words", |bench| {
        bench.iter(|| {
            let mut total = 0usize;
            for w in words {
                total += stemmer.stem(w).len();
            }
            black_box(total)
        });
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let mut pipeline = TextPipeline::standard();
    // Pre-warm the dictionary so we measure the steady state.
    for _ in 0..10 {
        pipeline.index_document(TWEET);
    }
    c.bench_function("pipeline_analyze_tweet", |bench| {
        bench.iter(|| black_box(pipeline.analyze(TWEET).len()));
    });
}

criterion_group!(benches, bench_tokenize, bench_stem, bench_pipeline);
criterion_main!(benches);
