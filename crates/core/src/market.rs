//! The ad market: auction, engagement, and billing on top of the engines.
//!
//! The engines answer *"which ads fit this user's context right now"*;
//! the market decides *placement, price, and payment*:
//!
//! 1. engine recommendations become [`AuctionBid`]s (bid from the
//!    campaign, quality = context relevance),
//! 2. campaigns behind their pacing schedule are throttled out,
//! 3. a GSP auction assigns slots and prices,
//! 4. a position-bias click model simulates engagement,
//! 5. clicks are billed at the GSP price (CPC), budgets drain, CTR
//!    trackers update, exhausted campaigns leave the index.

use std::collections::HashMap;

use adcast_ads::{
    run_gsp, AdId, AdStore, AuctionBid, AuctionConfig, CampaignState, ClickModel, CtrTracker,
    PacingController,
};
use adcast_stream::clock::Timestamp;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::engine::Recommendation;

/// One served slot, after auction and engagement simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServedImpression {
    /// The ad shown.
    pub ad: AdId,
    /// Slot position (0 = top).
    pub position: usize,
    /// GSP price (billed only on click).
    pub price: f32,
    /// Did the simulated user click?
    pub clicked: bool,
}

/// The market state: auction config, click model, per-campaign trackers
/// and pacing controllers.
#[derive(Debug)]
pub struct AdMarket {
    auction: AuctionConfig,
    click_model: ClickModel,
    trackers: HashMap<AdId, CtrTracker>,
    pacing: HashMap<AdId, PacingController>,
    rng: SmallRng,
    revenue: f64,
    impressions: u64,
    clicks: u64,
    exhausted: Vec<AdId>,
    /// Per-slot (impressions, clicks), index = position.
    position_stats: Vec<(u64, u64)>,
}

impl AdMarket {
    /// A market with the given auction shape and click model.
    pub fn new(auction: AuctionConfig, click_model: ClickModel, seed: u64) -> Self {
        AdMarket {
            auction,
            click_model,
            trackers: HashMap::new(),
            pacing: HashMap::new(),
            rng: SmallRng::seed_from_u64(seed),
            revenue: 0.0,
            impressions: 0,
            clicks: 0,
            exhausted: Vec::new(),
            position_stats: Vec::new(),
        }
    }

    /// Default market: 2 slots, default click model.
    pub fn standard(seed: u64) -> Self {
        AdMarket::new(
            AuctionConfig {
                slots: 2,
                reserve: 0.01,
            },
            ClickModel::default(),
            seed,
        )
    }

    /// Attach a pacing controller to a campaign.
    pub fn set_pacing(&mut self, ad: AdId, controller: PacingController) {
        self.pacing.insert(ad, controller);
    }

    /// Serve one user's slate: auction over the engine's recommendations,
    /// simulate engagement, bill clicks (CPC at the GSP price).
    pub fn serve(
        &mut self,
        store: &mut AdStore,
        recommendations: &[Recommendation],
        now: Timestamp,
    ) -> Vec<ServedImpression> {
        // 1./2. Candidates, pacing-throttled.
        let mut candidates = Vec::with_capacity(recommendations.len());
        for rec in recommendations {
            let Some(campaign) = store.campaign(rec.ad) else {
                continue;
            };
            if !campaign.is_active() {
                continue;
            }
            if let Some(p) = self.pacing.get(&rec.ad) {
                if p.is_done(now) || !p.should_serve(&mut self.rng) {
                    continue;
                }
            }
            candidates.push(AuctionBid {
                ad: rec.ad,
                bid: campaign.ad.bid,
                quality: rec.relevance.max(0.0),
            });
        }
        // 3. Auction.
        let awards = run_gsp(candidates, &self.auction);
        // 4./5. Engagement + billing.
        let mut served = Vec::with_capacity(awards.len());
        for award in awards {
            let relevance = recommendations
                .iter()
                .find(|r| r.ad == award.ad)
                .map_or(0.0, |r| r.relevance);
            let clicked = self
                .click_model
                .simulate(award.position, relevance, &mut self.rng);
            self.impressions += 1;
            if self.position_stats.len() <= award.position {
                self.position_stats.resize(award.position + 1, (0, 0));
            }
            self.position_stats[award.position].0 += 1;
            if clicked {
                self.position_stats[award.position].1 += 1;
            }
            self.trackers.entry(award.ad).or_default().record(clicked);
            if clicked {
                self.clicks += 1;
                let charged = store.record_impression(award.ad, f64::from(award.price));
                if charged.is_some() {
                    self.revenue += f64::from(award.price);
                    if let Some(p) = self.pacing.get_mut(&award.ad) {
                        p.record_spend(f64::from(award.price));
                    }
                }
                if charged == Some(CampaignState::Exhausted) {
                    // The store has already de-indexed the campaign; the
                    // caller drains these to purge engine state.
                    self.exhausted.push(award.ad);
                }
            }
            served.push(ServedImpression {
                ad: award.ad,
                position: award.position,
                price: award.price,
                clicked,
            });
        }
        served
    }

    /// Drain the campaigns exhausted since the last call (callers forward
    /// these to `RecommendationEngine::on_campaign_removed`).
    pub fn take_exhausted(&mut self) -> Vec<AdId> {
        std::mem::take(&mut self.exhausted)
    }

    /// Adjust all pacing controllers toward their schedules.
    pub fn adjust_pacing(&mut self, now: Timestamp) {
        for p in self.pacing.values_mut() {
            p.adjust(now);
        }
    }

    /// CTR tracker for a campaign, if it has served.
    pub fn tracker(&self, ad: AdId) -> Option<&CtrTracker> {
        self.trackers.get(&ad)
    }

    /// The pacing controller for a campaign, if attached.
    pub fn pacing(&self, ad: AdId) -> Option<&PacingController> {
        self.pacing.get(&ad)
    }

    /// Total platform revenue (billed clicks).
    pub fn revenue(&self) -> f64 {
        self.revenue
    }

    /// Impressions served.
    pub fn impressions(&self) -> u64 {
        self.impressions
    }

    /// Clicks simulated.
    pub fn clicks(&self) -> u64 {
        self.clicks
    }

    /// Per-position `(impressions, clicks)` counters, index = slot.
    pub fn position_stats(&self) -> &[(u64, u64)] {
        &self.position_stats
    }

    /// Platform-wide empirical CTR.
    pub fn overall_ctr(&self) -> f64 {
        if self.impressions == 0 {
            0.0
        } else {
            self.clicks as f64 / self.impressions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcast_ads::{AdSubmission, Budget, Targeting};
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;

    fn store_with_bids(bids: &[f32]) -> AdStore {
        let mut s = AdStore::new();
        for (i, &bid) in bids.iter().enumerate() {
            s.submit(AdSubmission {
                vector: SparseVector::from_pairs([(TermId(i as u32), 1.0)]),
                bid,
                targeting: Targeting::everywhere(),
                budget: Budget::unlimited(),
                topic_hint: None,
            })
            .unwrap();
        }
        s
    }

    fn rec(ad: u32, relevance: f32) -> Recommendation {
        Recommendation {
            ad: AdId(ad),
            score: relevance,
            relevance,
        }
    }

    #[test]
    fn serve_runs_auction_and_orders_slots() {
        let mut store = store_with_bids(&[1.0, 1.0, 1.0]);
        let mut market = AdMarket::standard(1);
        let served = market.serve(
            &mut store,
            &[rec(0, 0.9), rec(1, 0.5), rec(2, 0.3)],
            Timestamp::from_secs(1),
        );
        assert_eq!(served.len(), 2);
        assert_eq!(served[0].ad, AdId(0));
        assert_eq!(served[0].position, 0);
        assert_eq!(served[1].ad, AdId(1));
        assert!(served[0].price <= 1.0 + 1e-6);
        assert_eq!(market.impressions(), 2);
    }

    #[test]
    fn clicks_bill_and_accumulate_revenue() {
        let mut store = store_with_bids(&[1.0, 1.0]);
        let mut market = AdMarket::standard(2);
        let mut total_clicks = 0u64;
        for _ in 0..500 {
            let served = market.serve(
                &mut store,
                &[rec(0, 0.9), rec(1, 0.8)],
                Timestamp::from_secs(1),
            );
            total_clicks += served.iter().filter(|s| s.clicked).count() as u64;
        }
        assert_eq!(market.clicks(), total_clicks);
        assert!(
            total_clicks > 50,
            "a 0.9-relevance top slot should click often"
        );
        assert!(market.revenue() > 0.0);
        let spent = store.campaign(AdId(0)).unwrap().budget.spent()
            + store.campaign(AdId(1)).unwrap().budget.spent();
        // Budgets round charges to micro-currency units; allow that drift.
        assert!(
            (market.revenue() - spent).abs() < 1e-2,
            "revenue {} != advertiser spend {spent}",
            market.revenue()
        );
        let t = market.tracker(AdId(0)).expect("served");
        assert_eq!(t.impressions(), 500);
    }

    #[test]
    fn position_zero_clicks_more() {
        let mut store = store_with_bids(&[1.0, 1.0]);
        let mut market = AdMarket::standard(3);
        let (mut top, mut second) = (0u64, 0u64);
        for _ in 0..3000 {
            for s in market.serve(
                &mut store,
                &[rec(0, 0.7), rec(1, 0.7)],
                Timestamp::from_secs(1),
            ) {
                if s.clicked {
                    if s.position == 0 {
                        top += 1;
                    } else {
                        second += 1;
                    }
                }
            }
        }
        assert!(top > second, "position bias: top {top} vs second {second}");
    }

    #[test]
    fn pacing_throttles_serving() {
        let mut store = store_with_bids(&[1.0]);
        let mut market = AdMarket::standard(4);
        let mut pacing =
            PacingController::new(Timestamp::from_secs(0), Timestamp::from_secs(1000), 10.0);
        // Pretend the campaign is massively ahead of schedule.
        pacing.record_spend(9.9);
        for _ in 0..50 {
            pacing.adjust(Timestamp::from_secs(1));
        }
        market.set_pacing(AdId(0), pacing);
        let mut served = 0;
        for _ in 0..1000 {
            served += market
                .serve(&mut store, &[rec(0, 0.9)], Timestamp::from_secs(1))
                .len();
        }
        assert!(served < 100, "throttled campaign served {served}/1000");
    }

    #[test]
    fn exhausted_campaigns_stop_serving() {
        let mut store = AdStore::new();
        store
            .submit(AdSubmission {
                vector: SparseVector::from_pairs([(TermId(0), 1.0)]),
                bid: 1.0,
                targeting: Targeting::everywhere(),
                budget: Budget::new(0.05),
                topic_hint: None,
            })
            .unwrap();
        let mut market = AdMarket::standard(5);
        for _ in 0..200 {
            market.serve(&mut store, &[rec(0, 0.95)], Timestamp::from_secs(1));
        }
        assert_eq!(
            store.campaign(AdId(0)).unwrap().state(),
            CampaignState::Exhausted,
            "clicks at ~reserve prices must eventually drain a tiny budget"
        );
        let before = market.impressions();
        market.serve(&mut store, &[rec(0, 0.95)], Timestamp::from_secs(2));
        assert_eq!(
            market.impressions(),
            before,
            "inactive campaigns never enter the auction"
        );
    }

    #[test]
    fn empty_recommendations_serve_nothing() {
        let mut store = store_with_bids(&[1.0]);
        let mut market = AdMarket::standard(6);
        assert!(market
            .serve(&mut store, &[], Timestamp::from_secs(1))
            .is_empty());
        assert_eq!(market.overall_ctr(), 0.0);
    }
}
