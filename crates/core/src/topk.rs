//! Deterministic top-k selection.
//!
//! Ties are broken by ascending [`AdId`] so every engine produces an
//! identical list for identical scores — a hard requirement for the
//! cross-engine equivalence tests.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use adcast_ads::AdId;

/// A scored candidate in a top-k computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// The ad.
    pub ad: AdId,
    /// Ranking score (higher is better).
    pub score: f32,
}

impl Scored {
    /// Total order: higher score first, then lower ad id.
    fn cmp_desc(&self, other: &Self) -> Ordering {
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.ad.cmp(&other.ad))
    }
}

// Wrapper giving BinaryHeap (a max-heap) min-heap behaviour over the
// descending candidate order: the heap root is the *worst* retained item.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Worst(Scored);

impl Eq for Worst {}

impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Worst {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse of cmp_desc: the max of this order is the worst candidate.
        other.0.cmp_desc(&self.0).reverse()
    }
}

/// Select the top `k` candidates from an iterator in O(n log k), sorted
/// best-first with deterministic ties.
pub fn top_k(candidates: impl IntoIterator<Item = Scored>, k: usize) -> Vec<Scored> {
    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
    for c in candidates {
        if heap.len() < k {
            heap.push(Worst(c));
        } else if let Some(worst) = heap.peek() {
            if c.cmp_desc(&worst.0) == Ordering::Less {
                heap.pop();
                heap.push(Worst(c));
            }
        }
    }
    let mut out: Vec<Scored> = heap.into_iter().map(|w| w.0).collect();
    out.sort_by(|a, b| a.cmp_desc(b));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ad: u32, score: f32) -> Scored {
        Scored {
            ad: AdId(ad),
            score,
        }
    }

    #[test]
    fn selects_highest_scores() {
        let got = top_k([s(0, 1.0), s(1, 3.0), s(2, 2.0), s(3, 0.5)], 2);
        assert_eq!(got, vec![s(1, 3.0), s(2, 2.0)]);
    }

    #[test]
    fn ties_broken_by_ad_id() {
        let got = top_k([s(5, 1.0), s(1, 1.0), s(3, 1.0)], 2);
        assert_eq!(got, vec![s(1, 1.0), s(3, 1.0)]);
    }

    #[test]
    fn fewer_candidates_than_k() {
        let got = top_k([s(0, 1.0)], 5);
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn k_zero_and_empty() {
        assert!(top_k([s(0, 1.0)], 0).is_empty());
        assert!(top_k(std::iter::empty(), 3).is_empty());
    }

    #[test]
    fn matches_full_sort_on_random_input() {
        // Deterministic pseudo-random input without rand: an LCG.
        let mut x = 12345u64;
        let mut candidates = Vec::new();
        for i in 0..500u32 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let score = ((x >> 33) % 100) as f32 / 10.0; // many ties
            candidates.push(s(i, score));
        }
        let mut sorted = candidates.clone();
        sorted.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.ad.cmp(&b.ad)));
        for k in [1, 7, 50, 499, 500, 600] {
            let got = top_k(candidates.iter().copied(), k);
            assert_eq!(got, sorted[..k.min(500)].to_vec(), "k={k}");
        }
    }

    #[test]
    fn negative_and_zero_scores_are_valid() {
        let got = top_k([s(0, -1.0), s(1, 0.0), s(2, -0.5)], 2);
        assert_eq!(got, vec![s(1, 0.0), s(2, -0.5)]);
    }
}
