//! Bigram (phrase) features.
//!
//! Bag-of-words matching misses phrases: "running shoes" and "shoes …
//! running a marathon" look identical. The pipeline can optionally emit
//! **bigram terms** (`run▪shoe`) alongside unigrams so phrase-faithful
//! ads outrank incidental co-occurrence.
//!
//! [`BigramCounter`] additionally tracks corpus-level collocation
//! statistics (PMI — pointwise mutual information), which the workload
//! tooling uses to report the strongest phrases in a corpus.

use std::collections::HashMap;

/// The separator joining the two stems of a bigram term. Chosen outside
/// the tokenizer's alphabet so bigrams can never collide with unigrams.
pub const BIGRAM_JOINER: char = '\u{25AA}'; // ▪

/// Build the bigram term for two stems.
pub fn bigram_term(a: &str, b: &str) -> String {
    let mut s = String::with_capacity(a.len() + b.len() + BIGRAM_JOINER.len_utf8());
    s.push_str(a);
    s.push(BIGRAM_JOINER);
    s.push_str(b);
    s
}

/// Is this term a bigram produced by [`bigram_term`]?
pub fn is_bigram(term: &str) -> bool {
    term.contains(BIGRAM_JOINER)
}

/// Corpus-level bigram statistics with PMI scoring.
#[derive(Debug, Default, Clone)]
pub struct BigramCounter {
    unigrams: HashMap<Box<str>, u64>,
    bigrams: HashMap<(Box<str>, Box<str>), u64>,
    total_tokens: u64,
    total_pairs: u64,
}

impl BigramCounter {
    /// An empty counter.
    pub fn new() -> Self {
        BigramCounter::default()
    }

    /// Feed one document's token sequence (stems, in order).
    pub fn observe<S: AsRef<str>>(&mut self, tokens: &[S]) {
        for t in tokens {
            *self.unigrams.entry(Box::from(t.as_ref())).or_insert(0) += 1;
            self.total_tokens += 1;
        }
        for pair in tokens.windows(2) {
            let key = (Box::from(pair[0].as_ref()), Box::from(pair[1].as_ref()));
            *self.bigrams.entry(key).or_insert(0) += 1;
            self.total_pairs += 1;
        }
    }

    /// Number of distinct bigrams seen.
    pub fn distinct_bigrams(&self) -> usize {
        self.bigrams.len()
    }

    /// Pointwise mutual information of a pair:
    /// `log2( P(a,b) / (P(a)·P(b)) )`; `None` when unseen.
    pub fn pmi(&self, a: &str, b: &str) -> Option<f64> {
        let pair = *self.bigrams.get(&(Box::from(a), Box::from(b)))?;
        let ua = *self.unigrams.get(a)? as f64;
        let ub = *self.unigrams.get(b)? as f64;
        if self.total_pairs == 0 || self.total_tokens == 0 {
            return None;
        }
        let p_pair = pair as f64 / self.total_pairs as f64;
        let p_a = ua / self.total_tokens as f64;
        let p_b = ub / self.total_tokens as f64;
        Some((p_pair / (p_a * p_b)).log2())
    }

    /// The `n` strongest collocations with at least `min_count`
    /// occurrences, sorted by PMI descending (ties by count, then
    /// lexicographic for determinism).
    pub fn top_collocations(&self, n: usize, min_count: u64) -> Vec<(String, String, f64)> {
        let mut scored: Vec<(String, String, f64, u64)> = self
            .bigrams
            .iter()
            .filter(|(_, &c)| c >= min_count)
            .filter_map(|((a, b), &c)| {
                self.pmi(a, b)
                    .map(|pmi| (a.to_string(), b.to_string(), pmi, c))
            })
            .collect();
        scored.sort_by(|x, y| {
            y.2.total_cmp(&x.2)
                .then(y.3.cmp(&x.3))
                .then_with(|| (&x.0, &x.1).cmp(&(&y.0, &y.1)))
        });
        scored.truncate(n);
        scored
            .into_iter()
            .map(|(a, b, pmi, _)| (a, b, pmi))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigram_terms_never_collide_with_unigrams() {
        let t = bigram_term("run", "shoe");
        assert!(is_bigram(&t));
        assert!(!is_bigram("runshoe"));
        assert_ne!(t, "runshoe");
        assert_eq!(t, format!("run{BIGRAM_JOINER}shoe"));
    }

    #[test]
    fn counter_tracks_pairs() {
        let mut c = BigramCounter::new();
        c.observe(&["a", "b", "c"]);
        c.observe(&["a", "b"]);
        assert_eq!(c.distinct_bigrams(), 2); // (a,b), (b,c)
        assert!(c.pmi("a", "b").is_some());
        assert!(c.pmi("c", "a").is_none(), "never adjacent");
        assert!(c.pmi("z", "q").is_none());
    }

    #[test]
    fn pmi_separates_collocations_from_chance() {
        let mut c = BigramCounter::new();
        // "hot dog" always together; "the" everywhere.
        for _ in 0..50 {
            c.observe(&["the", "hot", "dog", "the", "cat"]);
        }
        for _ in 0..50 {
            c.observe(&["the", "dog", "the", "bird"]);
        }
        let hot_dog = c.pmi("hot", "dog").expect("seen");
        let the_dog = c.pmi("the", "dog").expect("seen");
        assert!(
            hot_dog > the_dog,
            "true collocation ({hot_dog:.2}) must out-score chance ({the_dog:.2})"
        );
    }

    #[test]
    fn top_collocations_sorted_and_filtered() {
        let mut c = BigramCounter::new();
        for _ in 0..20 {
            c.observe(&["new", "york", "city"]);
        }
        c.observe(&["rare", "pair"]);
        let top = c.top_collocations(10, 2);
        assert!(!top.is_empty());
        assert!(
            top.iter().all(|(a, b, _)| !(a == "rare" && b == "pair")),
            "min_count filters"
        );
        for w in top.windows(2) {
            assert!(w[0].2 >= w[1].2, "sorted by PMI");
        }
    }

    #[test]
    fn empty_counter_is_sane() {
        let c = BigramCounter::new();
        assert_eq!(c.distinct_bigrams(), 0);
        assert!(c.top_collocations(5, 1).is_empty());
        assert!(c.pmi("a", "b").is_none());
    }
}
