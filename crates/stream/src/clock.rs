//! Simulated time.
//!
//! Everything in `adcast` runs on **virtual** microsecond timestamps: the
//! workload generator stamps events, the engines read event time, and the
//! benchmark harness measures wall time separately. Keeping simulated time
//! explicit makes every experiment replayable bit-for-bit.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since the stream epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Timestamp {
    /// The stream epoch.
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Construct from whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Timestamp(secs * 1_000_000)
    }

    /// Microseconds since the epoch.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating difference `self − earlier`.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// From whole seconds.
    pub fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000)
    }

    /// From whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// From microseconds.
    pub fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Microseconds.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    fn sub(self, rhs: Timestamp) -> Duration {
        self.since(rhs)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

/// A monotonically advancing virtual clock.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Timestamp,
}

impl VirtualClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        VirtualClock::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> Timestamp {
        self.now
    }

    /// Advance by `d` and return the new time.
    pub fn advance(&mut self, d: Duration) -> Timestamp {
        self.now += d;
        self.now
    }

    /// Jump to `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current time — simulated time is
    /// monotone by contract, and silently moving backwards would corrupt
    /// every decayed accumulator downstream.
    pub fn advance_to(&mut self, t: Timestamp) {
        assert!(
            t >= self.now,
            "clock moved backwards: {} -> {}",
            self.now,
            t
        );
        self.now = t;
    }
}

// ---------------------------------------------------------------------------
// Wall-time abstraction (nanoseconds)
// ---------------------------------------------------------------------------
//
// Simulated *event* time above is what the engines reason about; the types
// below abstract the *measurement* clock — the thing `Instant::now()` used
// to provide for latency spans, fsync timing, and admission deadlines.
// Production installs nothing and gets a monotonic wall clock; the
// simulation harness installs a [`SimClock`] so those same code paths run
// on virtual nanoseconds and every run is replayable bit-for-bit. The
// `no-wallclock` lint bans raw `Instant::now()` in `core`/`durability`/
// `net` so this seam cannot silently regress.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// A monotonic nanosecond clock. Implementations must never move
/// backwards.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: monotonic wall time, origin = first use.
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock;

fn wall_ns() -> u64 {
    static ORIGIN: OnceLock<std::time::Instant> = OnceLock::new();
    let origin = *ORIGIN.get_or_init(std::time::Instant::now);
    origin.elapsed().as_nanos() as u64
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        wall_ns()
    }
}

/// A manually advanced clock for deterministic simulation. Shared via
/// `Arc`; the harness advances it, instrumented code reads it.
#[derive(Debug, Default)]
pub struct SimClock {
    ns: AtomicU64,
}

impl SimClock {
    /// A clock at zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Current virtual nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }

    /// Jump to `ns` (saturating forward: never moves backwards).
    pub fn set_ns(&self, ns: u64) {
        self.ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Advance by `d` nanoseconds and return the new time.
    pub fn advance_ns(&self, d: u64) -> u64 {
        self.ns.fetch_add(d, Ordering::Relaxed) + d
    }
}

impl Clock for SimClock {
    fn now_ns(&self) -> u64 {
        SimClock::now_ns(self)
    }
}

static GLOBAL_CLOCK: OnceLock<Arc<dyn Clock>> = OnceLock::new();

/// Install the process-wide clock read by [`now_ns`]. First install wins;
/// returns whether this call installed it. Production never calls this and
/// gets [`WallClock`] behavior.
pub fn install_clock(clock: Arc<dyn Clock>) -> bool {
    GLOBAL_CLOCK.set(clock).is_ok()
}

/// Monotonic nanoseconds from the installed clock ([`WallClock`] when none
/// was installed). This is the sanctioned replacement for `Instant::now()`
/// in `core`/`durability`/`net`: span cost is
/// `now_ns().saturating_sub(t0)`.
pub fn now_ns() -> u64 {
    match GLOBAL_CLOCK.get() {
        Some(c) => c.now_ns(),
        None => wall_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(10) + Duration::from_millis(500);
        assert_eq!(t.micros(), 10_500_000);
        assert_eq!(t - Timestamp::from_secs(10), Duration::from_millis(500));
        assert_eq!(
            Timestamp::from_secs(1) - Timestamp::from_secs(5),
            Duration::ZERO
        );
        assert_eq!(
            Duration::from_micros(3) + Duration::from_micros(4),
            Duration(7)
        );
    }

    #[test]
    fn float_conversions() {
        assert!((Timestamp::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
        assert!((Duration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn clock_advances() {
        let mut c = VirtualClock::new();
        assert_eq!(c.now(), Timestamp::EPOCH);
        c.advance(Duration::from_secs(1));
        c.advance_to(Timestamp::from_secs(5));
        assert_eq!(c.now(), Timestamp::from_secs(5));
        c.advance_to(Timestamp::from_secs(5)); // equal is allowed
    }

    #[test]
    #[should_panic(expected = "clock moved backwards")]
    fn clock_rejects_backwards() {
        let mut c = VirtualClock::new();
        c.advance_to(Timestamp::from_secs(5));
        c.advance_to(Timestamp::from_secs(4));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Timestamp::from_secs(1)), "1.000s");
        assert_eq!(format!("{}", Duration::from_millis(250)), "0.250s");
    }

    #[test]
    fn wall_clock_is_monotone() {
        let a = WallClock.now_ns();
        let b = WallClock.now_ns();
        assert!(b >= a);
        // The free function with no installed clock is wall time too.
        assert!(now_ns() >= b);
    }

    #[test]
    fn sim_clock_advances_and_never_retreats() {
        let c = SimClock::new();
        assert_eq!(Clock::now_ns(&c), 0);
        assert_eq!(c.advance_ns(500), 500);
        c.set_ns(1_000);
        assert_eq!(c.now_ns(), 1_000);
        c.set_ns(400); // backwards set is a no-op
        assert_eq!(c.now_ns(), 1_000);
    }
}
