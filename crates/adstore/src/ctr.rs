//! Click modelling and click-through-rate tracking.
//!
//! Two halves:
//!
//! * [`ClickModel`] — the *simulated user*: a position-bias × relevance
//!   examination model used by the engagement experiments (the standard
//!   substitution for real click logs, DESIGN.md §5),
//! * [`CtrTracker`] — the *platform side*: per-campaign impression/click
//!   counting with Bayesian smoothing, so cold campaigns neither report
//!   0% nor 100% CTR off a handful of events.

use rand::Rng;

/// Position-bias click model: `P(click at pos) = bias(pos) · sat(relevance)`.
#[derive(Debug, Clone)]
pub struct ClickModel {
    /// Examination probability per slot position (top first). Positions
    /// beyond the table reuse the last entry.
    position_bias: Vec<f64>,
    /// Relevance saturation scale: `sat(r) = r / (r + scale)`.
    relevance_scale: f64,
}

impl Default for ClickModel {
    fn default() -> Self {
        // Classic cascade-flavoured bias: the top slot is examined ~3×
        // more than the third.
        ClickModel {
            position_bias: vec![0.65, 0.35, 0.22, 0.15, 0.10],
            relevance_scale: 0.3,
        }
    }
}

impl ClickModel {
    /// Custom model.
    ///
    /// # Panics
    ///
    /// Panics on empty bias tables or out-of-range probabilities.
    pub fn new(position_bias: Vec<f64>, relevance_scale: f64) -> Self {
        assert!(!position_bias.is_empty(), "need at least one position");
        assert!(
            position_bias.iter().all(|p| (0.0..=1.0).contains(p)),
            "biases must be probabilities"
        );
        assert!(relevance_scale > 0.0, "relevance scale must be positive");
        ClickModel {
            position_bias,
            relevance_scale,
        }
    }

    /// The click probability of an ad with `relevance` shown at `position`.
    pub fn click_probability(&self, position: usize, relevance: f32) -> f64 {
        let bias = *self
            .position_bias
            .get(position)
            .or(self.position_bias.last())
            .expect("bias table non-empty");
        let r = f64::from(relevance.max(0.0));
        bias * (r / (r + self.relevance_scale))
    }

    /// Simulate one impression.
    pub fn simulate<R: Rng + ?Sized>(&self, position: usize, relevance: f32, rng: &mut R) -> bool {
        rng.gen_bool(self.click_probability(position, relevance).clamp(0.0, 1.0))
    }
}

/// Per-campaign CTR statistics with Beta(α, β) smoothing.
#[derive(Debug, Clone)]
pub struct CtrTracker {
    impressions: u64,
    clicks: u64,
    alpha: f64,
    beta: f64,
}

impl Default for CtrTracker {
    fn default() -> Self {
        // Prior: 5% CTR with the strength of ~20 observations.
        CtrTracker::new(1.0, 19.0)
    }
}

impl CtrTracker {
    /// Tracker with a `Beta(alpha, beta)` prior.
    ///
    /// # Panics
    ///
    /// Panics on non-positive prior parameters.
    pub fn new(alpha: f64, beta: f64) -> Self {
        assert!(
            alpha > 0.0 && beta > 0.0,
            "prior parameters must be positive"
        );
        CtrTracker {
            impressions: 0,
            clicks: 0,
            alpha,
            beta,
        }
    }

    /// Rebuild a tracker from raw counts (snapshot restore), keeping the
    /// default prior. `clicks` is clamped to `impressions` so a corrupt
    /// pair cannot report a CTR above 1.
    pub fn from_counts(impressions: u64, clicks: u64) -> Self {
        CtrTracker {
            impressions,
            clicks: clicks.min(impressions),
            ..CtrTracker::default()
        }
    }

    /// Record one impression (and whether it was clicked).
    pub fn record(&mut self, clicked: bool) {
        self.impressions += 1;
        if clicked {
            self.clicks += 1;
        }
    }

    /// Raw impressions.
    pub fn impressions(&self) -> u64 {
        self.impressions
    }

    /// Raw clicks.
    pub fn clicks(&self) -> u64 {
        self.clicks
    }

    /// The smoothed CTR estimate `(clicks + α) / (impressions + α + β)`.
    pub fn smoothed_ctr(&self) -> f64 {
        (self.clicks as f64 + self.alpha) / (self.impressions as f64 + self.alpha + self.beta)
    }

    /// The raw empirical CTR (0 when no impressions).
    pub fn raw_ctr(&self) -> f64 {
        if self.impressions == 0 {
            0.0
        } else {
            self.clicks as f64 / self.impressions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn click_probability_monotone_in_relevance() {
        let m = ClickModel::default();
        let mut prev = -1.0;
        for r in [0.0f32, 0.1, 0.3, 0.6, 1.0] {
            let p = m.click_probability(0, r);
            assert!(p >= prev, "not monotone at {r}");
            assert!((0.0..=1.0).contains(&p));
            prev = p;
        }
        assert_eq!(m.click_probability(0, 0.0), 0.0);
    }

    #[test]
    fn position_bias_decreases() {
        let m = ClickModel::default();
        let mut prev = f64::INFINITY;
        for pos in 0..5 {
            let p = m.click_probability(pos, 0.8);
            assert!(p < prev, "bias must fall with position");
            prev = p;
        }
        // Deep positions reuse the tail bias.
        assert_eq!(m.click_probability(50, 0.8), m.click_probability(4, 0.8));
    }

    #[test]
    fn simulation_matches_probability() {
        let m = ClickModel::default();
        let mut rng = SmallRng::seed_from_u64(5);
        let p = m.click_probability(0, 0.5);
        const N: usize = 20_000;
        let clicks = (0..N).filter(|_| m.simulate(0, 0.5, &mut rng)).count();
        let emp = clicks as f64 / N as f64;
        assert!((emp - p).abs() < 0.02, "empirical {emp} vs model {p}");
    }

    #[test]
    fn tracker_smoothing_converges() {
        let mut t = CtrTracker::default();
        // Cold start: smoothed CTR equals the prior mean.
        assert!((t.smoothed_ctr() - 0.05).abs() < 1e-9);
        assert_eq!(t.raw_ctr(), 0.0);
        // Feed a true 20% CTR stream; smoothed estimate approaches it.
        for i in 0..1000 {
            t.record(i % 5 == 0);
        }
        assert_eq!(t.impressions(), 1000);
        assert_eq!(t.clicks(), 200);
        assert!((t.smoothed_ctr() - 0.2).abs() < 0.01);
        assert!((t.raw_ctr() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn smoothing_shields_small_samples() {
        let mut t = CtrTracker::default();
        t.record(true); // 1 impression, 1 click
        assert_eq!(t.raw_ctr(), 1.0);
        assert!(
            t.smoothed_ctr() < 0.15,
            "one click must not read as 100% CTR"
        );
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bad_prior_panics() {
        let _ = CtrTracker::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn bad_bias_panics() {
        let _ = ClickModel::new(vec![1.5], 0.3);
    }
}
