//! Criterion micro-benchmarks: per-feed-delta cost of each engine, and
//! per-recommendation cost — the microscopic version of E2/E3.

use std::sync::Arc;

use adcast_ads::{AdStore, AdSubmission, Budget, Targeting};
use adcast_core::runner::EngineKind;
use adcast_core::{
    EngineConfig, IncrementalEngine, RecommendationEngine, Simulation, SimulationConfig,
};
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::{LocationId, Message, MessageId};
use adcast_stream::generator::WorkloadConfig;
use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn sim_for(kind: EngineKind) -> Simulation {
    let mut sim = Simulation::build(SimulationConfig {
        workload: WorkloadConfig {
            num_users: 1_000,
            ..WorkloadConfig::default()
        },
        num_ads: 5_000,
        engine_kind: kind,
        ..SimulationConfig::default()
    });
    sim.run(3_000); // warm windows
    sim
}

fn bench_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_update_per_message");
    group.sample_size(30);
    for (kind, name) in [
        (EngineKind::FullScan, "full-scan"),
        (EngineKind::IndexScan, "index-scan"),
        (EngineKind::Incremental, "incremental"),
    ] {
        let mut sim = sim_for(kind);
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, _| {
            bench.iter(|| {
                let (msg, touched) = sim.step();
                black_box((msg.id, touched))
            });
        });
    }
    group.finish();
}

fn bench_recommend(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_recommend_top10");
    group.sample_size(30);
    for (kind, name) in [
        (EngineKind::FullScan, "full-scan"),
        (EngineKind::IndexScan, "index-scan"),
        (EngineKind::Incremental, "incremental"),
    ] {
        let mut sim = sim_for(kind);
        let mut u = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |bench, _| {
            bench.iter(|| {
                u = (u + 1) % 1_000;
                black_box(sim.recommend(UserId(u), 10).len())
            });
        });
    }
    group.finish();
}

/// Steady-state delta cost in isolation: a pre-materialized sliding-window
/// stream replayed through a warmed incremental engine — no generator or
/// simulation overhead, and (with warm scratch capacities) no heap
/// allocations per iteration. This is the kernel the zero-alloc test pins.
fn bench_steady_state_delta(c: &mut Criterion) {
    let mut store = AdStore::new();
    for i in 0..2_000u32 {
        store
            .submit(AdSubmission {
                vector: SparseVector::from_pairs([
                    (TermId(i % 96), 0.5 + 0.01 * (i % 40) as f32),
                    (TermId(96 + i % 32), 0.3),
                ]),
                bid: 1.0,
                targeting: Targeting::everywhere(),
                budget: Budget::unlimited(),
                topic_hint: None,
            })
            .unwrap();
    }
    let mut engine = IncrementalEngine::new(
        1,
        EngineConfig {
            k: 10,
            half_life: None,
            ..Default::default()
        },
    );

    // One cyclic sliding-window stream, replayed forever.
    let mut live: Vec<Arc<Message>> = Vec::new();
    let deltas: Vec<FeedDelta> = (0..4_096u64)
        .map(|i| {
            let msg = Arc::new(Message {
                id: MessageId(i),
                author: UserId(0),
                ts: Timestamp::from_secs(i + 1),
                location: LocationId(0),
                vector: SparseVector::from_pairs([
                    (TermId((i % 96) as u32), 0.7),
                    (TermId(96 + (i % 32) as u32), 0.2),
                ]),
            });
            let evicted = if live.len() >= 8 {
                vec![live.remove(0)]
            } else {
                vec![]
            };
            live.push(msg.clone());
            FeedDelta {
                entered: Some(msg),
                evicted,
            }
        })
        .collect();
    for d in &deltas {
        engine.on_feed_delta(&store, UserId(0), d); // warm all scratch
    }

    let mut i = 0usize;
    c.bench_function("incremental_steady_state_delta", |bench| {
        bench.iter(|| {
            // Skip the window-filling prefix so every delta has an eviction.
            i = 8 + (i + 1) % (deltas.len() - 8);
            engine.on_feed_delta(&store, UserId(0), &deltas[i]);
            black_box(engine.stats().deltas)
        });
    });
}

criterion_group!(
    benches,
    bench_update,
    bench_recommend,
    bench_steady_state_delta
);
criterion_main!(benches);
