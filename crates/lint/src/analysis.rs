//! Structural analysis over the token stream: item extents, `#[cfg(test)]`
//! masking, function discovery, and `adcast-lint:` pragma parsing.
//!
//! Everything here is heuristic by design — the lexer guarantees we never
//! look inside strings or comments, and brace/paren matching gives us item
//! boundaries that are exact for the code styles this workspace uses
//! (rustfmt-formatted, no macro-generated items on the checked paths).

use crate::lexer::{lex, Comment, Lexed, Tok, TokKind};
use crate::tree::ItemTree;

/// One function found in a file.
#[derive(Debug, Clone)]
pub struct FnInfo {
    pub name: String,
    /// `pub` with no restriction; `pub(crate)` and friends count as private.
    pub is_pub: bool,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token index of the body `{` (None for trait-method signatures).
    pub body_open: Option<usize>,
    /// Token index of the matching `}` when a body exists.
    pub body_close: Option<usize>,
    /// Token range of the return type (between `->` and the body/`;`).
    pub ret: Option<(usize, usize)>,
    pub line: u32,
}

/// A parsed `// adcast-lint: ...` pragma.
#[derive(Debug, Clone)]
pub enum Directive {
    /// `allow(<rule>) -- <reason>`
    Allow { rule: String, reason: String },
    /// `zero-alloc` — marks the next fn for `no-alloc-steady-state`.
    ZeroAlloc,
}

#[derive(Debug, Clone)]
pub struct Pragma {
    pub directive: Directive,
    /// Last line of the comment carrying the pragma; scoping starts below it.
    pub line: u32,
}

/// A malformed pragma (missing reason, unknown rule, bad syntax). These are
/// diagnostics in their own right: a suppression that cannot be attributed
/// or justified must not silently suppress anything.
#[derive(Debug, Clone)]
pub struct BadPragma {
    pub line: u32,
    pub message: String,
}

/// Everything the rules need to know about one file.
pub struct FileAnalysis {
    pub rel_path: String,
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
    /// Parallel to `tokens`: true when the token sits under `#[cfg(test)]`.
    pub in_test: Vec<bool>,
    /// Lines fully occupied by attribute tokens (`#[...]`).
    pub attr_lines: Vec<u32>,
    pub fns: Vec<FnInfo>,
    /// Structural index: brace-matched blocks, enum/impl/match items and
    /// the per-file symbol list (see [`crate::tree`]).
    pub tree: ItemTree,
    pub pragmas: Vec<Pragma>,
    pub bad_pragmas: Vec<BadPragma>,
}

impl FileAnalysis {
    pub fn new(rel_path: &str, src: &str) -> Self {
        let Lexed { tokens, comments } = lex(src);
        let in_test = cfg_test_mask(&tokens);
        let attr_lines = attribute_lines(&tokens);
        let fns = find_fns(&tokens);
        let tree = ItemTree::build(&tokens);
        let (pragmas, bad_pragmas) = parse_pragmas(&comments);
        FileAnalysis {
            rel_path: rel_path.to_string(),
            tokens,
            comments,
            in_test,
            attr_lines,
            fns,
            tree,
            pragmas,
            bad_pragmas,
        }
    }

    /// True when `line` is covered by a comment.
    pub fn comment_on(&self, line: u32) -> Option<&Comment> {
        self.comments
            .iter()
            .find(|c| c.line <= line && line <= c.end_line)
    }

    /// The inclusive line span of the item starting at the first token after
    /// `after_line`, skipping leading attributes. This is what a suppression
    /// pragma scopes to: the next item (or statement) only.
    pub fn next_item_span(&self, after_line: u32) -> Option<(u32, u32)> {
        let mut i = self.tokens.iter().position(|t| t.line > after_line)?;
        // Skip attributes so `#[inline]` between pragma and fn doesn't
        // shrink the scope to the attribute alone.
        while self.tokens[i].is_punct('#')
            && self.tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
        {
            let close = matching_close(&self.tokens, i + 1)?;
            i = close + 1;
            if i >= self.tokens.len() {
                return None;
            }
        }
        let end = item_extent(&self.tokens, i);
        Some((
            self.tokens[i].line,
            self.tokens[end.min(self.tokens.len() - 1)].line,
        ))
    }
}

/// Index of the token closing the group opened at `open` (`(`, `[` or `{`).
pub fn matching_close(tokens: &[Tok], open: usize) -> Option<usize> {
    let (o, c) = match tokens.get(open)?.text.as_str() {
        "(" => ('(', ')'),
        "[" => ('[', ']'),
        "{" => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// The token index ending the item that starts at `start`: the matching `}`
/// of the first top-level brace group, or the first `;` outside any group.
pub fn item_extent(tokens: &[Tok], start: usize) -> usize {
    let mut paren = 0i64;
    let mut bracket = 0i64;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if t.is_punct('[') {
            bracket += 1;
        } else if t.is_punct(']') {
            bracket -= 1;
        } else if t.is_punct('{') && paren == 0 && bracket == 0 {
            return matching_close(tokens, j).unwrap_or(tokens.len().saturating_sub(1));
        } else if t.is_punct(';') && paren == 0 && bracket == 0 {
            return j;
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

/// Mark every token that lives under a `#[cfg(test)]` (or `#[cfg(all(test,
/// ...))]` etc.) item, so rules can skip test code.
fn cfg_test_mask(tokens: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
            let Some(close) = matching_close(tokens, i + 1) else {
                break;
            };
            let attr = &tokens[i + 2..close];
            let is_cfg_test = attr.first().is_some_and(|t| t.is_ident("cfg"))
                && attr.iter().any(|t| t.is_ident("test"));
            if is_cfg_test {
                // Skip any further attributes, then mask the item.
                let mut j = close + 1;
                while j + 1 < tokens.len() && tokens[j].is_punct('#') && tokens[j + 1].is_punct('[')
                {
                    match matching_close(tokens, j + 1) {
                        Some(c) => j = c + 1,
                        None => break,
                    }
                }
                if j < tokens.len() {
                    let end = item_extent(tokens, j);
                    for m in mask.iter_mut().take(end + 1).skip(i) {
                        *m = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Lines whose tokens belong to attribute groups; used when checking that a
/// `// SAFETY:` comment is "immediately above" an unsafe item that also has
/// attributes.
fn attribute_lines(tokens: &[Tok]) -> Vec<u32> {
    let mut lines = Vec::new();
    let mut i = 0usize;
    while i + 1 < tokens.len() {
        if tokens[i].is_punct('#') && tokens[i + 1].is_punct('[') {
            if let Some(close) = matching_close(tokens, i + 1) {
                for t in &tokens[i..=close] {
                    lines.push(t.line);
                }
                i = close + 1;
                continue;
            }
        }
        i += 1;
    }
    lines.sort_unstable();
    lines.dedup();
    lines
}

/// Discover every `fn` with its visibility, body extent and return type.
fn find_fns(tokens: &[Tok]) -> Vec<FnInfo> {
    let mut fns = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue; // `fn(` — a function pointer type, not a definition.
        }
        let is_pub = visibility_is_pub(tokens, i);
        // Parameters: first `(` after the name (generics may intervene).
        let mut j = i + 2;
        let mut angle = 0i64;
        let params_open = loop {
            match tokens.get(j) {
                None => break None,
                Some(t) if t.is_punct('<') => angle += 1,
                Some(t) if t.is_punct('>') => angle -= 1,
                Some(t) if t.is_punct('(') && angle <= 0 => break Some(j),
                Some(t) if t.is_punct('{') || t.is_punct(';') => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(params_open) = params_open else {
            continue;
        };
        let Some(params_close) = matching_close(tokens, params_open) else {
            continue;
        };
        // Return type between `->` and the body `{` / `;` / `where`.
        let mut ret = None;
        let mut k = params_close + 1;
        if tokens.get(k).is_some_and(|t| t.is_punct('-'))
            && tokens.get(k + 1).is_some_and(|t| t.is_punct('>'))
        {
            let ret_start = k + 2;
            let mut depth = 0i64;
            k = ret_start;
            while let Some(t) = tokens.get(k) {
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && (t.is_punct('{') || t.is_punct(';') || t.is_ident("where"))
                {
                    break;
                }
                k += 1;
            }
            if k > ret_start {
                ret = Some((ret_start, k));
            }
        }
        // Body: first top-level `{` (skipping a `where` clause), or `;`.
        let end = item_extent(tokens, params_close + 1);
        let (body_open, body_close) = if tokens.get(end).is_some_and(|t| t.is_punct('}')) {
            // Walk back: `end` closes the body; find its opener.
            let mut open = None;
            for (idx, t) in tokens
                .iter()
                .enumerate()
                .skip(params_close)
                .take(end - params_close)
            {
                if t.is_punct('{') && matching_close(tokens, idx) == Some(end) {
                    open = Some(idx);
                    break;
                }
            }
            (open, Some(end))
        } else {
            (None, None)
        };
        fns.push(FnInfo {
            name: name_tok.text.clone(),
            is_pub,
            fn_idx: i,
            body_open,
            body_close,
            ret,
            line: t.line,
        });
    }
    fns
}

/// Walk backwards over fn qualifiers (`const unsafe extern "C" async`) to
/// find the visibility. `pub(crate)`/`pub(super)` are treated as private:
/// they cannot leak types across the crate boundary.
fn visibility_is_pub(tokens: &[Tok], fn_idx: usize) -> bool {
    let mut j = fn_idx;
    while j > 0 {
        let prev = &tokens[j - 1];
        if prev.kind == TokKind::Str
            || prev.is_ident("const")
            || prev.is_ident("unsafe")
            || prev.is_ident("async")
            || prev.is_ident("extern")
        {
            j -= 1;
            continue;
        }
        if prev.is_punct(')') {
            // Possibly the `(crate)` of a restricted visibility.
            let mut k = j - 1;
            let mut depth = 0i64;
            loop {
                if tokens[k].is_punct(')') {
                    depth += 1;
                } else if tokens[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return false;
                }
                k -= 1;
            }
            return false; // pub(crate) / pub(super): restricted.
        }
        return prev.is_ident("pub");
    }
    false
}

/// Parse `adcast-lint:` pragmas out of the comment stream.
fn parse_pragmas(comments: &[Comment]) -> (Vec<Pragma>, Vec<BadPragma>) {
    let mut pragmas = Vec::new();
    let mut bad = Vec::new();
    for c in comments {
        let text = c.text.trim_start_matches(['/', '!']).trim();
        let Some(rest) = text.strip_prefix("adcast-lint:") else {
            continue;
        };
        let rest = rest.trim();
        if rest == "zero-alloc" {
            pragmas.push(Pragma {
                directive: Directive::ZeroAlloc,
                line: c.end_line,
            });
            continue;
        }
        if let Some(after) = rest.strip_prefix("allow(") {
            let Some(close) = after.find(')') else {
                bad.push(BadPragma {
                    line: c.line,
                    message: "malformed allow pragma: missing `)`".to_string(),
                });
                continue;
            };
            let rule = after[..close].trim().to_string();
            let tail = after[close + 1..].trim();
            let Some(reason) = tail.strip_prefix("--") else {
                bad.push(BadPragma {
                    line: c.line,
                    message: format!("allow({rule}) is missing its mandatory `-- <reason>`"),
                });
                continue;
            };
            let reason = reason.trim();
            if reason.is_empty() {
                bad.push(BadPragma {
                    line: c.line,
                    message: format!("allow({rule}) has an empty reason"),
                });
                continue;
            }
            if !crate::RULES.contains(&rule.as_str()) {
                bad.push(BadPragma {
                    line: c.line,
                    message: format!("allow() names unknown rule `{rule}`"),
                });
                continue;
            }
            pragmas.push(Pragma {
                directive: Directive::Allow {
                    rule,
                    reason: reason.to_string(),
                },
                line: c.end_line,
            });
            continue;
        }
        bad.push(BadPragma {
            line: c.line,
            message: format!("unrecognized adcast-lint directive: `{rest}`"),
        });
    }
    (pragmas, bad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_items_are_masked() {
        let src =
            "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn t() { b.unwrap(); }\n}\n";
        let fa = FileAnalysis::new("x.rs", src);
        let live: Vec<&Tok> = fa
            .tokens
            .iter()
            .zip(&fa.in_test)
            .filter(|(_, m)| !**m)
            .map(|(t, _)| t)
            .collect();
        assert!(live.iter().any(|t| t.is_ident("unwrap")));
        assert!(!live.iter().any(|t| t.is_ident("tests")));
    }

    #[test]
    fn fn_visibility_and_return_types() {
        let src = "pub fn a() -> io::Result<()> { Ok(()) }\npub(crate) fn b() {}\nfn c() {}\n";
        let fa = FileAnalysis::new("x.rs", src);
        assert_eq!(fa.fns.len(), 3);
        assert!(fa.fns[0].is_pub);
        assert!(!fa.fns[1].is_pub);
        assert!(!fa.fns[2].is_pub);
        let (s, e) = fa.fns[0].ret.unwrap();
        let ret: Vec<&str> = fa.tokens[s..e].iter().map(|t| t.text.as_str()).collect();
        assert!(ret.contains(&"io"));
        assert!(ret.contains(&"Result"));
    }

    #[test]
    fn pragma_parsing() {
        let src = "// adcast-lint: allow(no-panic-hot-path) -- checked above\n// adcast-lint: allow(no-panic-hot-path)\n// adcast-lint: zero-alloc\n// adcast-lint: allow(bogus-rule) -- x\n";
        let fa = FileAnalysis::new("x.rs", src);
        assert_eq!(fa.pragmas.len(), 2);
        assert_eq!(fa.bad_pragmas.len(), 2);
        assert!(fa.bad_pragmas[0].message.contains("mandatory"));
        assert!(fa.bad_pragmas[1].message.contains("unknown rule"));
    }

    #[test]
    fn next_item_span_covers_whole_fn() {
        let src = "// adcast-lint: allow(no-panic-hot-path) -- all of it\n#[inline]\nfn f() {\n    x.unwrap();\n}\nfn g() { y.unwrap(); }\n";
        let fa = FileAnalysis::new("x.rs", src);
        let (s, e) = fa.next_item_span(1).unwrap();
        assert_eq!((s, e), (3, 5));
    }
}
