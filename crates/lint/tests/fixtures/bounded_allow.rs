//! Same unbounded queue as `bounded_fail.rs`, with a reasoned allow pragma.

// adcast-lint: allow(bounded-channel) -- fixture: the admin tap is drained by a dedicated thread and may buffer freely
fn admin_tap() -> (Sender<u64>, Receiver<u64>) {
    mpsc::channel()
}
