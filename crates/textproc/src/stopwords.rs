//! Stop-word filtering.
//!
//! Ships an embedded English stop-word list (a superset of the classic
//! SMART/Snowball lists trimmed to terms that actually occur in social
//! text) plus room for caller extensions — e.g. platform boilerplate like
//! "rt" (retweet) which is included by default.

use std::collections::HashSet;

/// The embedded default English stop words.
///
/// Kept sorted for readability; membership is via hash set at runtime.
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a",
    "about",
    "above",
    "after",
    "again",
    "against",
    "ago",
    "ain",
    "all",
    "also",
    "am",
    "an",
    "and",
    "any",
    "are",
    "aren",
    "as",
    "at",
    "back",
    "be",
    "because",
    "been",
    "before",
    "being",
    "below",
    "between",
    "both",
    "but",
    "by",
    "came",
    "can",
    "cannot",
    "come",
    "could",
    "couldn",
    "did",
    "didn",
    "do",
    "does",
    "doesn",
    "doing",
    "don",
    "done",
    "down",
    "during",
    "each",
    "either",
    "else",
    "even",
    "ever",
    "every",
    "few",
    "for",
    "from",
    "further",
    "get",
    "gets",
    "getting",
    "go",
    "goes",
    "going",
    "gone",
    "got",
    "had",
    "hadn",
    "has",
    "hasn",
    "have",
    "haven",
    "having",
    "he",
    "her",
    "here",
    "hers",
    "herself",
    "him",
    "himself",
    "his",
    "how",
    "i",
    "if",
    "in",
    "into",
    "is",
    "isn",
    "it",
    "its",
    "itself",
    "just",
    "let",
    "like",
    "ll",
    "made",
    "make",
    "makes",
    "many",
    "may",
    "maybe",
    "me",
    "might",
    "mine",
    "more",
    "most",
    "much",
    "must",
    "mustn",
    "my",
    "myself",
    "need",
    "needn",
    "neither",
    "never",
    "new",
    "no",
    "nor",
    "not",
    "now",
    "of",
    "off",
    "oh",
    "ok",
    "okay",
    "on",
    "once",
    "only",
    "onto",
    "or",
    "other",
    "our",
    "ours",
    "ourselves",
    "out",
    "over",
    "own",
    "per",
    "please",
    "put",
    "rather",
    "re",
    "really",
    "rt",
    "said",
    "same",
    "say",
    "says",
    "see",
    "seen",
    "shall",
    "shan",
    "she",
    "should",
    "shouldn",
    "since",
    "so",
    "some",
    "somehow",
    "something",
    "sometimes",
    "soon",
    "still",
    "such",
    "take",
    "takes",
    "than",
    "that",
    "the",
    "their",
    "theirs",
    "them",
    "themselves",
    "then",
    "there",
    "these",
    "they",
    "this",
    "those",
    "though",
    "through",
    "thru",
    "thus",
    "to",
    "today",
    "together",
    "too",
    "took",
    "toward",
    "towards",
    "under",
    "until",
    "unto",
    "up",
    "upon",
    "us",
    "use",
    "used",
    "uses",
    "using",
    "ve",
    "very",
    "via",
    "want",
    "wants",
    "was",
    "wasn",
    "way",
    "we",
    "well",
    "went",
    "were",
    "weren",
    "what",
    "whatever",
    "when",
    "whenever",
    "where",
    "whether",
    "which",
    "while",
    "who",
    "whole",
    "whom",
    "whose",
    "why",
    "will",
    "with",
    "within",
    "without",
    "won",
    "would",
    "wouldn",
    "yes",
    "yet",
    "you",
    "your",
    "yours",
    "yourself",
    "yourselves",
];

/// A stop-word set: embedded defaults plus caller extensions.
#[derive(Debug, Clone)]
pub struct StopWords {
    set: HashSet<Box<str>>,
}

impl Default for StopWords {
    fn default() -> Self {
        StopWords::english()
    }
}

impl StopWords {
    /// The default English set.
    pub fn english() -> Self {
        let set = DEFAULT_STOPWORDS.iter().map(|w| Box::from(*w)).collect();
        StopWords { set }
    }

    /// An empty set (no filtering).
    pub fn none() -> Self {
        StopWords {
            set: HashSet::new(),
        }
    }

    /// Build from an explicit word list.
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let set = words.into_iter().map(|w| Box::from(w.as_ref())).collect();
        StopWords { set }
    }

    /// Add a word (expected lowercase; stored as given).
    pub fn insert(&mut self, word: &str) {
        self.set.insert(Box::from(word));
    }

    /// Remove a word, returning whether it was present.
    pub fn remove(&mut self, word: &str) -> bool {
        self.set.remove(word)
    }

    /// Is `word` a stop word? Contractions that survived tokenization with
    /// an inner apostrophe are checked against their head ("don't" → "don").
    pub fn contains(&self, word: &str) -> bool {
        if self.set.contains(word) {
            return true;
        }
        match word.split_once('\'') {
            Some((head, _)) => self.set.contains(head),
            None => false,
        }
    }

    /// Number of words in the set.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_contains_common_words() {
        let sw = StopWords::default();
        for w in ["the", "and", "rt", "is"] {
            assert!(sw.contains(w), "{w} should be a stop word");
        }
        assert!(!sw.contains("volleyball"));
    }

    #[test]
    fn contractions_match_head() {
        let sw = StopWords::default();
        assert!(sw.contains("don't"));
        assert!(sw.contains("won't"));
        assert!(sw.contains("it's"));
        assert!(!sw.contains("o'clock"));
    }

    #[test]
    fn insert_and_remove() {
        let mut sw = StopWords::none();
        assert!(!sw.contains("brand"));
        sw.insert("brand");
        assert!(sw.contains("brand"));
        assert!(sw.remove("brand"));
        assert!(!sw.contains("brand"));
        assert!(!sw.remove("brand"));
    }

    #[test]
    fn from_words_builder() {
        let sw = StopWords::from_words(["foo", "bar"]);
        assert_eq!(sw.len(), 2);
        assert!(sw.contains("foo"));
        assert!(!sw.contains("the"));
    }

    #[test]
    fn no_duplicates_in_embedded_list() {
        let mut seen = std::collections::HashSet::new();
        for w in DEFAULT_STOPWORDS {
            assert!(seen.insert(*w), "duplicate stop word: {w}");
        }
    }

    #[test]
    fn embedded_list_is_sorted_lowercase() {
        for w in DEFAULT_STOPWORDS {
            assert_eq!(w.to_lowercase(), **w);
        }
        let mut sorted = DEFAULT_STOPWORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, DEFAULT_STOPWORDS);
    }
}
