//! Campaign churn under load: budgets exhausting, advertisers pausing and
//! resuming, campaigns removed — with the engine staying consistent with
//! an exact reference at every step.

use adcast::core::runner::EngineKind;
use adcast::core::{Simulation, SimulationConfig};
use adcast::graph::UserId;
use adcast::stream::generator::WorkloadConfig;

fn config(kind: EngineKind) -> SimulationConfig {
    SimulationConfig {
        workload: WorkloadConfig {
            seed: 77,
            num_users: 50,
            ..WorkloadConfig::tiny()
        },
        num_ads: 60,
        engine_kind: kind,
        targeted_ad_fraction: 0.0,
        ..SimulationConfig::tiny()
    }
}

#[test]
fn pause_and_resume_stay_consistent_with_full_scan() {
    let mut inc = Simulation::build(config(EngineKind::Incremental));
    let mut full = Simulation::build(config(EngineKind::FullScan));
    inc.run(1000);
    full.run(1000);

    // Pause a block of campaigns on both.
    let to_pause: Vec<_> = inc.ad_topics().iter().take(15).map(|&(ad, _)| ad).collect();
    for &ad in &to_pause {
        assert!(inc.store_mut().pause(ad));
        assert!(full.store_mut().pause(ad));
        inc.engine_mut().on_campaign_removed(ad);
        full.engine_mut().on_campaign_removed(ad);
    }
    inc.run(500);
    full.run(500);
    for u in 0..50u32 {
        let a: Vec<_> = inc.recommend(UserId(u), 3).iter().map(|r| r.ad).collect();
        let b: Vec<_> = full.recommend(UserId(u), 3).iter().map(|r| r.ad).collect();
        assert_eq!(a, b, "user {u} after pause");
        for ad in &a {
            assert!(
                !to_pause.contains(ad),
                "paused ad {ad:?} served to user {u}"
            );
        }
    }

    // Resume and verify they can serve again.
    for &ad in &to_pause {
        assert!(inc.store_mut().resume(ad));
        assert!(full.store_mut().resume(ad));
    }
    inc.run(500);
    full.run(500);
    for u in 0..50u32 {
        let a: Vec<_> = inc.recommend(UserId(u), 3).iter().map(|r| r.ad).collect();
        let b: Vec<_> = full.recommend(UserId(u), 3).iter().map(|r| r.ad).collect();
        assert_eq!(a, b, "user {u} after resume");
    }
}

#[test]
fn removal_is_permanent_and_consistent() {
    let mut sim = Simulation::build(config(EngineKind::Incremental));
    sim.run(1000);
    let victim = sim.ad_topics()[0].0;
    assert!(sim.store_mut().remove(victim));
    sim.engine_mut().on_campaign_removed(victim);
    sim.run(500);
    for u in 0..50u32 {
        for rec in sim.recommend(UserId(u), 3) {
            assert_ne!(rec.ad, victim, "removed ad served to user {u}");
        }
    }
    assert!(!sim.store_mut().resume(victim), "removal is terminal");
}

#[test]
fn exhausted_budgets_never_serve_again() {
    let mut sim = Simulation::build(SimulationConfig {
        ad_budget: Some(2.0),
        bid_range: (1.0, 1.0),
        ..config(EngineKind::Incremental)
    });
    sim.run(2000);
    // Drain budgets with charged serving.
    for _ in 0..10 {
        for u in 0..50u32 {
            sim.recommend_and_charge(UserId(u), 2);
        }
    }
    let exhausted: Vec<_> = sim
        .ad_topics()
        .iter()
        .map(|&(ad, _)| ad)
        .filter(|&ad| {
            sim.store().campaign(ad).map(|c| c.state())
                == Some(adcast::ads::CampaignState::Exhausted)
        })
        .collect();
    assert!(
        !exhausted.is_empty(),
        "two-impression budgets must drain under this load"
    );
    sim.run(500);
    for u in 0..50u32 {
        for rec in sim.recommend(UserId(u), 3) {
            assert!(
                !exhausted.contains(&rec.ad),
                "exhausted ad {:?} served",
                rec.ad
            );
        }
    }
}

#[test]
fn mid_stream_submissions_become_visible() {
    let mut sim = Simulation::build(config(EngineKind::Incremental));
    sim.run(1500);
    // Build a new campaign vector that exactly mirrors a *currently
    // serving* ad's (so it is guaranteed relevant to someone) but with a
    // fresh id.
    let source = (0..50u32)
        .flat_map(|u| sim.recommend(UserId(u), 3))
        .map(|r| r.ad)
        .next()
        .expect("warmed simulation serves someone");
    let vector = sim.store().ad(source).unwrap().vector.clone();
    let new_id = sim
        .store_mut()
        .submit(adcast::ads::AdSubmission {
            vector,
            bid: 1.0,
            targeting: adcast::ads::Targeting::everywhere(),
            budget: adcast::ads::Budget::unlimited(),
            topic_hint: None,
        })
        .unwrap();
    // New campaigns become visible at each user's next refresh; streaming
    // more messages forces context churn and hence refreshes.
    sim.run(2000);
    // The duplicate loses every id tie against its source, so probe one
    // slot deeper than the serving k: wherever the source ranks, the
    // duplicate sits directly behind it.
    let mut seen = false;
    for u in 0..50u32 {
        if sim.recommend(UserId(u), 4).iter().any(|r| r.ad == new_id) {
            seen = true;
            break;
        }
    }
    assert!(
        seen,
        "a duplicate of a serving ad should eventually serve too"
    );
}
