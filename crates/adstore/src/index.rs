//! Blocked, impact-ordered inverted index over ad keyword vectors.
//!
//! For every term the index keeps the posting list in **impact order** —
//! sorted by descending weight (ties by ascending ad id) — in SoA layout:
//! an ad-id lane and a weight lane, logically split into fixed blocks of
//! [`BLOCK_SIZE`] postings with a cached per-block maximum weight. This is
//! the layout behind three things:
//!
//! * **Block-max pruned top-k** (WAND/BMW style): an evaluator walks term
//!   cursors best-block-first and stops once
//!   `Σ_term ctx_weight · block_max` over the remaining frontier cannot
//!   beat the provisional k-th score — whole blocks (usually whole list
//!   tails) are skipped without being read.
//! * **Screening bounds**: `max_weight(term)` (the first block's max) is
//!   the metadata the incremental engine's promotion screen and the
//!   `score_upper_bound` helper already used; it is now O(1) by layout.
//! * **Chunked scoring kernels**: the SoA lanes let the term-at-a-time
//!   walks form a block's contribution products in one vectorized pass
//!   (`adcast_text::kernels`).
//!
//! Because impact order is a pure function of the indexed `(weight, ad)`
//! multiset — never of insertion order — rebuilding the index from a store
//! snapshot reproduces the blocked layout bit-identically, which the
//! durability layer's "recovered twin" guarantee depends on.
//!
//! Removals are tombstone-free: the posting is excised immediately
//! (campaign churn is orders of magnitude rarer than scoring) and only
//! the block maxima from the excised position onward are refreshed; the
//! list-wide max is `weights[0]` by construction, so no O(len) fold runs
//! on any removal.
//!
//! Weights are strictly positive: the store validates ad vectors, and the
//! pruning math (context terms with non-positive weight cannot raise any
//! ad's score) relies on it.

use std::collections::HashMap;

use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;

use crate::ad::AdId;

/// Postings per block. 64 postings = 256 B per SoA lane (a weight lane
/// spans four cache lines), small enough that a skipped block is a real
/// saving and large enough that the per-block bound check amortizes over
/// a meaningful chunk of vectorized scoring work.
pub const BLOCK_SIZE: usize = 64;

/// One entry in a posting list (iteration view; storage is SoA).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The ad containing the term.
    pub ad: AdId,
    /// The ad vector's weight for the term.
    pub weight: f32,
}

#[derive(Debug, Default, Clone)]
struct TermPostings {
    /// Ad-id lane, impact order: weight descending, ad id ascending on
    /// ties. Parallel to `weights`.
    ads: Vec<AdId>,
    /// Weight lane, descending.
    weights: Vec<f32>,
    /// `block_maxes[b] = max(weights[b·BLOCK_SIZE ..])` of the block —
    /// which is `weights[b·BLOCK_SIZE]`, the block's first entry, because
    /// the whole lane is descending. Cached densely so the pruning loop
    /// reads bounds without touching the (much larger) weight lane.
    block_maxes: Vec<f32>,
}

impl TermPostings {
    /// Impact-order slot of `(weight, ad)`: the index of the first entry
    /// that sorts after it (weight strictly smaller, or equal weight and
    /// larger-or-equal id).
    fn slot(&self, ad: AdId, weight: f32) -> usize {
        // `partition_point` over the "sorts before (weight, ad)" predicate.
        let mut lo = 0usize;
        let mut hi = self.ads.len();
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let before = match self.weights[mid].total_cmp(&weight) {
                std::cmp::Ordering::Greater => true,
                std::cmp::Ordering::Equal => self.ads[mid] < ad,
                std::cmp::Ordering::Less => false,
            };
            if before {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Refresh the cached block maxima for blocks `from_block..`.
    fn refresh_block_maxes(&mut self, from_block: usize) {
        let num_blocks = self.ads.len().div_ceil(BLOCK_SIZE);
        self.block_maxes.truncate(num_blocks);
        for b in from_block..num_blocks {
            let max = self.weights[b * BLOCK_SIZE];
            if b < self.block_maxes.len() {
                self.block_maxes[b] = max;
            } else {
                self.block_maxes.push(max);
            }
        }
        debug_assert_eq!(self.block_maxes.len(), num_blocks);
    }
}

/// Borrowed view of one term's blocked posting list.
///
/// `ads()[i]` and `weights()[i]` form the i-th posting; `block(b)` cuts
/// the b-th fixed-size block out of both lanes at once.
#[derive(Debug, Clone, Copy)]
pub struct PostingsView<'a> {
    ads: &'a [AdId],
    weights: &'a [f32],
    block_maxes: &'a [f32],
}

impl<'a> PostingsView<'a> {
    /// Number of postings.
    #[inline]
    pub fn len(&self) -> usize {
        self.ads.len()
    }

    /// No postings at all?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ads.is_empty()
    }

    /// The ad-id lane (impact order).
    #[inline]
    pub fn ads(&self) -> &'a [AdId] {
        self.ads
    }

    /// The weight lane (descending).
    #[inline]
    pub fn weights(&self) -> &'a [f32] {
        self.weights
    }

    /// Number of blocks (`ceil(len / BLOCK_SIZE)`).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.ads.len().div_ceil(BLOCK_SIZE)
    }

    /// The b-th block's id and weight lanes (the last block may be
    /// short). Empty slices for an out-of-range block.
    #[inline]
    pub fn block(&self, b: usize) -> (&'a [AdId], &'a [f32]) {
        let start = b * BLOCK_SIZE;
        if start >= self.ads.len() {
            return (&[], &[]);
        }
        let end = (start + BLOCK_SIZE).min(self.ads.len());
        (&self.ads[start..end], &self.weights[start..end])
    }

    /// Maximum weight inside block `b` (0.0 out of range).
    #[inline]
    pub fn block_max(&self, b: usize) -> f32 {
        self.block_maxes.get(b).copied().unwrap_or(0.0)
    }

    /// Maximum weight in the whole list (0.0 when empty).
    #[inline]
    pub fn max_weight(&self) -> f32 {
        self.weights.first().copied().unwrap_or(0.0)
    }

    /// Iterate the postings in impact order.
    pub fn iter(&self) -> impl Iterator<Item = Posting> + 'a {
        self.ads
            .iter()
            .zip(self.weights)
            .map(|(&ad, &weight)| Posting { ad, weight })
    }
}

impl<'a> IntoIterator for PostingsView<'a> {
    type Item = Posting;
    type IntoIter = std::iter::Map<
        std::iter::Zip<std::slice::Iter<'a, AdId>, std::slice::Iter<'a, f32>>,
        fn((&'a AdId, &'a f32)) -> Posting,
    >;

    fn into_iter(self) -> Self::IntoIter {
        fn mk<'b>((ad, weight): (&'b AdId, &'b f32)) -> Posting {
            Posting {
                ad: *ad,
                weight: *weight,
            }
        }
        self.ads.iter().zip(self.weights.iter()).map(mk)
    }
}

/// The blocked impact-ordered inverted index over ads.
#[derive(Debug, Default, Clone)]
pub struct AdIndex {
    postings: HashMap<TermId, TermPostings>,
    num_ads: usize,
    num_postings: usize,
    /// `len_hist[n]` = number of indexed ads with exactly `n` terms.
    /// Maintains `max_ad_terms` exactly under churn.
    len_hist: Vec<u32>,
    /// Largest term count of any indexed ad. Caps how many frontier
    /// cursors can simultaneously contribute to one ad's score — the
    /// difference between a useless bound (Σ over a 100-term context) and
    /// a tight one (Σ of the top `max_ad_terms` cursor bounds).
    max_ad_terms: usize,
}

impl AdIndex {
    /// An empty index.
    pub fn new() -> Self {
        AdIndex::default()
    }

    /// Index `ad`'s vector. The caller guarantees the id is not already
    /// present (the store enforces this) and that every weight is
    /// positive and finite (ad validation enforces this).
    pub fn insert(&mut self, ad: AdId, vector: &SparseVector) {
        for (term, weight) in vector.iter() {
            debug_assert!(
                weight > 0.0 && weight.is_finite(),
                "indexed weight must be positive and finite, got {weight}"
            );
            let tp = self.postings.entry(term).or_default();
            let pos = tp.slot(ad, weight);
            debug_assert!(
                !tp.ads.contains(&ad),
                "ad {ad:?} already indexed under {term:?}"
            );
            tp.ads.insert(pos, ad);
            tp.weights.insert(pos, weight);
            tp.refresh_block_maxes(pos / BLOCK_SIZE);
            self.num_postings += 1;
        }
        self.num_ads += 1;
        let n = vector.len();
        if n >= self.len_hist.len() {
            self.len_hist.resize(n + 1, 0);
        }
        self.len_hist[n] += 1;
        self.max_ad_terms = self.max_ad_terms.max(n);
    }

    /// Remove `ad`'s postings (vector must be the one it was inserted
    /// with). Returns the number of postings removed.
    ///
    /// Impact order makes max maintenance O(1): the list max is always
    /// `weights[0]`, so no removal ever triggers a fold over the list —
    /// only the block maxima from the excised slot onward are refreshed
    /// (one cached read per trailing block).
    pub fn remove(&mut self, ad: AdId, vector: &SparseVector) -> usize {
        let mut removed = 0;
        for (term, weight) in vector.iter() {
            if let Some(tp) = self.postings.get_mut(&term) {
                let pos = tp.slot(ad, weight);
                // `slot` returns where (weight, ad) *would* insert; the
                // live posting, if present, sits exactly there.
                if tp.ads.get(pos) == Some(&ad) {
                    tp.ads.remove(pos);
                    tp.weights.remove(pos);
                    removed += 1;
                    self.num_postings -= 1;
                    if tp.ads.is_empty() {
                        self.postings.remove(&term);
                    } else {
                        tp.refresh_block_maxes(pos / BLOCK_SIZE);
                    }
                }
            }
        }
        if removed > 0 {
            self.num_ads -= 1;
            let n = vector.len();
            if let Some(count) = self.len_hist.get_mut(n) {
                *count = count.saturating_sub(1);
            }
            while self.max_ad_terms > 0
                && self.len_hist.get(self.max_ad_terms).is_none_or(|&c| c == 0)
            {
                self.max_ad_terms -= 1;
            }
        }
        removed
    }

    /// The blocked posting list for `term` (empty view if the term is
    /// unknown).
    pub fn postings(&self, term: TermId) -> PostingsView<'_> {
        match self.postings.get(&term) {
            Some(tp) => PostingsView {
                ads: &tp.ads,
                weights: &tp.weights,
                block_maxes: &tp.block_maxes,
            },
            None => PostingsView {
                ads: &[],
                weights: &[],
                block_maxes: &[],
            },
        }
    }

    /// The maximum term weight across ads containing `term`. O(1): impact
    /// order puts it at the head of the list.
    pub fn max_weight(&self, term: TermId) -> f32 {
        self.postings
            .get(&term)
            .and_then(|tp| tp.weights.first().copied())
            .unwrap_or(0.0)
    }

    /// Largest number of terms in any single indexed ad (0 when empty).
    pub fn max_ad_terms(&self) -> usize {
        self.max_ad_terms
    }

    /// Upper bound on `vector · ad_vector` over **all** indexed ads:
    /// `Σ_t |v(t)| · max_weight(t)`.
    pub fn score_upper_bound(&self, vector: &SparseVector) -> f32 {
        vector
            .iter()
            .map(|(t, w)| w.abs() * self.max_weight(t))
            .sum()
    }

    /// Number of indexed ads.
    pub fn num_ads(&self) -> usize {
        self.num_ads
    }

    /// Total postings across all terms.
    pub fn num_postings(&self) -> usize {
        self.num_postings
    }

    /// Number of distinct terms with non-empty posting lists.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Approximate resident bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.postings.capacity()
                * (std::mem::size_of::<TermId>() + std::mem::size_of::<TermPostings>())
            + self.len_hist.capacity() * std::mem::size_of::<u32>()
            + self
                .postings
                .values()
                .map(|tp| {
                    tp.ads.capacity() * std::mem::size_of::<AdId>()
                        + (tp.weights.capacity() + tp.block_maxes.capacity())
                            * std::mem::size_of::<f32>()
                })
                .sum::<usize>()
    }

    /// Debug validation of the structural invariants (tests only).
    #[cfg(test)]
    fn check_invariants(&self) {
        for (term, tp) in &self.postings {
            assert!(!tp.ads.is_empty(), "{term:?}: empty list kept");
            assert_eq!(tp.ads.len(), tp.weights.len());
            assert_eq!(tp.block_maxes.len(), tp.ads.len().div_ceil(BLOCK_SIZE));
            for i in 1..tp.weights.len() {
                let ord = tp.weights[i - 1].total_cmp(&tp.weights[i]);
                assert!(
                    ord == std::cmp::Ordering::Greater
                        || (ord == std::cmp::Ordering::Equal && tp.ads[i - 1] < tp.ads[i]),
                    "{term:?}: impact order violated at {i}"
                );
            }
            for (b, &bm) in tp.block_maxes.iter().enumerate() {
                let lo = b * BLOCK_SIZE;
                let hi = (lo + BLOCK_SIZE).min(tp.weights.len());
                let true_max = adcast_text::kernels::max_or_zero(&tp.weights[lo..hi]);
                assert_eq!(bm, true_max, "{term:?}: block {b} max stale");
                assert_eq!(bm, tp.weights[lo], "{term:?}: block {b} head mismatch");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    #[test]
    fn insert_builds_impact_ordered_postings() {
        let mut idx = AdIndex::new();
        idx.insert(AdId(2), &v(&[(1, 0.5), (2, 0.3)]));
        idx.insert(AdId(0), &v(&[(1, 0.9)]));
        idx.insert(AdId(1), &v(&[(2, 0.7)]));
        let p1 = idx.postings(TermId(1));
        assert_eq!(p1.len(), 2);
        // Impact order: highest weight first.
        assert_eq!(p1.ads(), &[AdId(0), AdId(2)]);
        assert_eq!(p1.weights(), &[0.9, 0.5]);
        assert_eq!(idx.max_weight(TermId(1)), 0.9);
        assert_eq!(idx.max_weight(TermId(2)), 0.7);
        assert_eq!(idx.num_ads(), 3);
        assert_eq!(idx.num_postings(), 4);
        assert_eq!(idx.num_terms(), 2);
        assert_eq!(idx.max_ad_terms(), 2);
        idx.check_invariants();
    }

    #[test]
    fn equal_weights_tie_break_by_ad_id() {
        let mut idx = AdIndex::new();
        idx.insert(AdId(5), &v(&[(1, 0.5)]));
        idx.insert(AdId(2), &v(&[(1, 0.5)]));
        idx.insert(AdId(9), &v(&[(1, 0.5)]));
        assert_eq!(idx.postings(TermId(1)).ads(), &[AdId(2), AdId(5), AdId(9)]);
        idx.check_invariants();
    }

    #[test]
    fn layout_is_insertion_order_independent() {
        // The snapshot/recovery path rebuilds the index from campaigns in
        // ad-id order, whatever order the live store interleaved inserts
        // and removals in; the blocked layout must come out bit-identical.
        let ads: Vec<(AdId, SparseVector)> = (0..200u32)
            .map(|i| {
                (
                    AdId(i),
                    v(&[(i % 7, 0.1 + ((i * 37) % 90) as f32 / 100.0), (7, 0.5)]),
                )
            })
            .collect();
        let mut fwd = AdIndex::new();
        for (ad, vec) in &ads {
            fwd.insert(*ad, vec);
        }
        let mut rev = AdIndex::new();
        for (ad, vec) in ads.iter().rev() {
            rev.insert(*ad, vec);
        }
        for t in 0..8u32 {
            let a = fwd.postings(TermId(t));
            let b = rev.postings(TermId(t));
            assert_eq!(a.ads(), b.ads(), "term {t} id lane");
            // Bit-level equality of the weight and block-max lanes.
            let bits = |s: &[f32]| s.iter().map(|w| w.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(a.weights()), bits(b.weights()), "term {t} weights");
            assert_eq!(
                bits(a.block_maxes),
                bits(b.block_maxes),
                "term {t} block maxes"
            );
        }
        fwd.check_invariants();
    }

    #[test]
    fn blocks_and_maxes() {
        let mut idx = AdIndex::new();
        let n = (BLOCK_SIZE * 2 + 10) as u32;
        for i in 0..n {
            // Distinct weights so the order is fully determined.
            idx.insert(AdId(i), &v(&[(1, 1.0 - i as f32 / (n as f32 * 2.0))]));
        }
        let p = idx.postings(TermId(1));
        assert_eq!(p.num_blocks(), 3);
        let (ads0, w0) = p.block(0);
        assert_eq!(ads0.len(), BLOCK_SIZE);
        assert_eq!(p.block_max(0), w0[0]);
        let (ads2, w2) = p.block(2);
        assert_eq!(ads2.len(), 10);
        assert_eq!(p.block_max(2), w2[0]);
        assert_eq!(p.block(3).0.len(), 0);
        assert_eq!(p.block_max(3), 0.0);
        // Descending across block boundaries.
        assert!(p.block_max(0) > p.block_max(1));
        assert!(p.block_max(1) > p.block_max(2));
        idx.check_invariants();
    }

    #[test]
    fn unknown_term_is_empty() {
        let idx = AdIndex::new();
        assert!(idx.postings(TermId(9)).is_empty());
        assert_eq!(idx.max_weight(TermId(9)), 0.0);
        assert_eq!(idx.max_ad_terms(), 0);
    }

    #[test]
    fn remove_compacts_and_fixes_max() {
        let mut idx = AdIndex::new();
        let va = v(&[(1, 0.9), (2, 0.2)]);
        let vb = v(&[(1, 0.5)]);
        idx.insert(AdId(0), &va);
        idx.insert(AdId(1), &vb);
        assert_eq!(idx.remove(AdId(0), &va), 2);
        assert_eq!(
            idx.max_weight(TermId(1)),
            0.5,
            "max follows the new list head"
        );
        assert!(
            idx.postings(TermId(2)).is_empty(),
            "empty lists are dropped"
        );
        assert_eq!(idx.num_ads(), 1);
        assert_eq!(idx.num_postings(), 1);
        assert_eq!(idx.max_ad_terms(), 1, "2-term ad left, hist decays");
        idx.check_invariants();
    }

    #[test]
    fn remove_nonmax_keeps_max() {
        let mut idx = AdIndex::new();
        idx.insert(AdId(0), &v(&[(1, 0.9)]));
        idx.insert(AdId(1), &v(&[(1, 0.5)]));
        idx.remove(AdId(1), &v(&[(1, 0.5)]));
        assert_eq!(idx.max_weight(TermId(1)), 0.9);
        idx.check_invariants();
    }

    #[test]
    fn remove_absent_ad_is_noop() {
        let mut idx = AdIndex::new();
        idx.insert(AdId(0), &v(&[(1, 0.9)]));
        assert_eq!(idx.remove(AdId(5), &v(&[(1, 0.9)])), 0);
        assert_eq!(idx.num_ads(), 1);
        idx.check_invariants();
    }

    #[test]
    fn max_weight_maintained_under_churn() {
        // Satellite regression: removal must keep every cached max exact
        // without O(len) rescans — verified structurally after each step.
        let mut idx = AdIndex::new();
        let vec_of = |i: u32| {
            v(&[
                (0, 0.05 + ((i * 17) % 97) as f32 / 100.0),
                (1, 0.05 + ((i * 31) % 89) as f32 / 100.0),
                (2 + i % 3, 0.5),
            ])
        };
        let total = (BLOCK_SIZE * 3) as u32;
        let mut live: std::collections::HashMap<AdId, SparseVector> = Default::default();
        for i in 0..total {
            idx.insert(AdId(i), &vec_of(i));
            live.insert(AdId(i), vec_of(i));
        }
        idx.check_invariants();
        // Interleaved churn: remove every third ad, reinsert some under
        // fresh ids, and keep checking the cached maxima.
        let mut next_id = total;
        for i in (0..total).step_by(3) {
            idx.remove(AdId(i), &live.remove(&AdId(i)).unwrap());
            idx.check_invariants();
            if i % 9 == 0 {
                idx.insert(AdId(next_id), &vec_of(i));
                live.insert(AdId(next_id), vec_of(i));
                next_id += 1;
                idx.check_invariants();
            }
        }
        // Drain one term's list completely from the top: the head (= the
        // list max) departs every time, the O(1) rule must keep up.
        let survivors: Vec<AdId> = idx.postings(TermId(0)).ads().to_vec();
        for ad in survivors {
            idx.remove(ad, &live.remove(&ad).unwrap());
            idx.check_invariants();
        }
        assert!(idx.postings(TermId(0)).is_empty());
        assert_eq!(idx.num_ads(), 0);
        assert_eq!(idx.max_ad_terms(), 0);
    }

    #[test]
    fn upper_bound_dominates_every_ad() {
        let mut idx = AdIndex::new();
        let ads = [
            v(&[(1, 0.8), (3, 0.6)]),
            v(&[(1, 0.4), (2, 0.9)]),
            v(&[(3, 0.99)]),
        ];
        for (i, a) in ads.iter().enumerate() {
            idx.insert(AdId(i as u32), a);
        }
        let ctx = v(&[(1, 0.5), (2, 0.5), (3, 0.5)]);
        let ub = idx.score_upper_bound(&ctx);
        for a in &ads {
            assert!(ub >= ctx.dot(a) - 1e-6, "ub {ub} < dot {}", ctx.dot(a));
        }
    }

    #[test]
    fn reinsert_after_remove() {
        let mut idx = AdIndex::new();
        let va = v(&[(1, 0.9)]);
        idx.insert(AdId(0), &va);
        idx.remove(AdId(0), &va);
        idx.insert(AdId(0), &v(&[(1, 0.3)]));
        assert_eq!(idx.max_weight(TermId(1)), 0.3);
        assert_eq!(idx.num_ads(), 1);
        idx.check_invariants();
    }

    #[test]
    fn memory_grows_with_postings() {
        let mut idx = AdIndex::new();
        let before = idx.memory_bytes();
        for i in 0..50 {
            idx.insert(AdId(i), &v(&[(i, 0.5), (i + 1, 0.5)]));
        }
        assert!(idx.memory_bytes() > before);
    }
}
