// Fixture: a `.lock()` in an obs record path, silenced by a pragma with a
// reason. Linted under a pretend obs rel path; never compiled.

// adcast-lint: allow(no-lock-in-record) -- fixture: cold path, held for one store
fn snapshot(state: &std::sync::Mutex<Vec<u64>>) -> usize {
    state.lock().len()
}
