//! A deliberately small Rust lexer.
//!
//! The rules in this crate operate at line/token granularity, so the lexer
//! only needs enough fidelity to never mistake the inside of a string or
//! comment for code: plain/byte/raw strings, char literals vs lifetimes,
//! nested block comments, and one-`char` punctuation tokens. It does not
//! parse; there is deliberately no `syn` (the workspace vendors every
//! dependency and the lint must stay std-only).
//!
//! Multi-character operators come out as runs of single punctuation tokens
//! (`::` is `:` `:`), which is fine for the sequence matching the rules do.

/// Token category. `Punct` carries exactly one character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Number,
    Str,
    Char,
    Lifetime,
    Punct,
}

/// One token with the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// One comment (line or block). `line..=end_line` is the span of source
/// lines the comment covers; `text` is the raw interior (after `//` or
/// between `/*` and `*/`), untrimmed.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub end_line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens and comments. Never fails: unterminated strings or
/// comments simply run to end of file, which is the forgiving behaviour a
/// diagnostic tool wants.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Line comment (also covers doc comments: their text keeps the
        // extra `/` or `!`, which the pragma parser trims).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i + 2;
            let mut j = start;
            while j < chars.len() && chars[j] != '\n' {
                j += 1;
            }
            out.comments.push(Comment {
                text: chars[start..j].iter().collect(),
                line,
                end_line: line,
            });
            i = j;
            continue;
        }

        // Block comment, with nesting.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            let start = i + 2;
            let mut j = start;
            let mut depth = 1usize;
            while j < chars.len() && depth > 0 {
                if chars[j] == '\n' {
                    line += 1;
                    j += 1;
                } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                    depth += 1;
                    j += 2;
                } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            let end = j.saturating_sub(2).max(start);
            out.comments.push(Comment {
                text: chars[start..end.min(chars.len())].iter().collect(),
                line: start_line,
                end_line: line,
            });
            i = j;
            continue;
        }

        // String literal.
        if c == '"' {
            let (text, ni, nl) = lex_string(&chars, i, line);
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text,
                line,
            });
            line = nl;
            i = ni;
            continue;
        }

        // Char literal vs lifetime.
        if c == '\'' {
            let (tok, ni) = lex_quote(&chars, i, line);
            out.tokens.push(tok);
            i = ni;
            continue;
        }

        // Identifier / keyword — possibly a raw/byte string prefix.
        if is_ident_start(c) {
            let start = i;
            let mut j = i;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            let word: String = chars[start..j].iter().collect();
            let next = chars.get(j).copied();
            let prefix_like = matches!(word.as_str(), "r" | "b" | "br" | "rb");
            if prefix_like && (next == Some('"') || (word != "b" && next == Some('#'))) {
                let (text, ni, nl) = if word.contains('r') {
                    lex_raw_string(&chars, j, line)
                } else {
                    // `b"..."` — escapes behave like a plain string.
                    lex_string(&chars, j, line)
                };
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                });
                line = nl;
                i = ni;
                continue;
            }
            let kind = if word.chars().next().is_some_and(|f| f.is_ascii_digit()) {
                TokKind::Number
            } else {
                TokKind::Ident
            };
            out.tokens.push(Tok {
                kind,
                text: word,
                line,
            });
            i = j;
            continue;
        }

        // Number (identifiers can't start with a digit, so this is distinct).
        if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < chars.len() {
                let d = chars[j];
                if is_ident_continue(d) {
                    j += 1;
                } else if d == '.' && chars.get(j + 1).is_some_and(|n| n.is_ascii_digit()) {
                    // `1.5` but not the range `1..5`.
                    j += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Number,
                text: chars[start..j].iter().collect(),
                line,
            });
            i = j;
            continue;
        }

        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

/// Lex a plain `"..."` string starting at the opening quote. Returns
/// (interior text, index after closing quote, line after).
fn lex_string(chars: &[char], open: usize, mut line: u32) -> (String, usize, u32) {
    let mut j = open + 1;
    let start = j;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '"' => break,
            '\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    let text: String = chars[start..j.min(chars.len())].iter().collect();
    (text, (j + 1).min(chars.len()), line)
}

/// Lex `r"..."` / `r#"..."#` (any number of hashes) starting at the first
/// `#` or `"` after the prefix.
fn lex_raw_string(chars: &[char], mut j: usize, mut line: u32) -> (String, usize, u32) {
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) != Some(&'"') {
        // Not actually a raw string (e.g. `r#ident`); treat as empty.
        return (String::new(), j, line);
    }
    j += 1;
    let start = j;
    while j < chars.len() {
        if chars[j] == '\n' {
            line += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                let text: String = chars[start..j].iter().collect();
                return (text, k, line);
            }
        }
        j += 1;
    }
    (chars[start..].iter().collect(), chars.len(), line)
}

/// Disambiguate `'a` (lifetime) from `'x'` / `'\n'` (char literal),
/// starting at the `'`.
fn lex_quote(chars: &[char], open: usize, line: u32) -> (Tok, usize) {
    let next = chars.get(open + 1).copied();
    match next {
        Some('\\') => {
            // Escaped char literal: consume through the closing quote.
            let mut j = open + 2;
            if j < chars.len() {
                j += 1; // the escaped character
            }
            // Multi-char escapes like \u{1F600} or \x7f.
            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                j += 1;
            }
            let text: String = chars[open + 1..j.min(chars.len())].iter().collect();
            (
                Tok {
                    kind: TokKind::Char,
                    text,
                    line,
                },
                (j + 1).min(chars.len()),
            )
        }
        Some(c) if is_ident_start(c) => {
            let mut j = open + 1;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            if chars.get(j) == Some(&'\'') {
                // 'x' — a char literal.
                let text: String = chars[open + 1..j].iter().collect();
                (
                    Tok {
                        kind: TokKind::Char,
                        text,
                        line,
                    },
                    j + 1,
                )
            } else {
                // 'a — a lifetime.
                let text: String = chars[open + 1..j].iter().collect();
                (
                    Tok {
                        kind: TokKind::Lifetime,
                        text,
                        line,
                    },
                    j,
                )
            }
        }
        Some(c) => {
            // Punctuation char literal like '(' or ' '.
            let close = chars.get(open + 2) == Some(&'\'');
            (
                Tok {
                    kind: TokKind::Char,
                    text: c.to_string(),
                    line,
                },
                if close { open + 3 } else { open + 2 },
            )
        }
        None => (
            Tok {
                kind: TokKind::Punct,
                text: "'".to_string(),
                line,
            },
            open + 1,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "unsafe unwrap"; call();"#);
        assert!(l.tokens.iter().all(|t| t.text != "unsafe"));
        assert_eq!(idents(r#"let s = "unsafe";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"a "quoted" unwrap"#; next"###;
        let toks = idents(src);
        assert_eq!(toks, vec!["let", "s", "next"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* outer /* inner */ still comment */ b");
        assert_eq!(idents("a /* outer /* inner */ still */ b"), vec!["a", "b"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].text, "x");
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex(r"let nl = '\n'; let q = '\''; done");
        assert!(l.tokens.iter().any(|t| t.is_ident("done")));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\nc");
        let lines: Vec<u32> = l.tokens.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }

    #[test]
    fn comments_carry_spans() {
        let l = lex("x\n// SAFETY: fine\n/* two\nlines */\ny");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].line, 2);
        assert!(l.comments[0].text.contains("SAFETY:"));
        assert_eq!(l.comments[1].line, 3);
        assert_eq!(l.comments[1].end_line, 4);
    }

    #[test]
    fn multichar_escapes() {
        let l = lex(r"let u = '\u{1F600}'; tail");
        assert!(l.tokens.iter().any(|t| t.is_ident("tail")));
    }
}
