//! Multi-node cluster scenarios: replication, failover, and fencing
//! under virtual time.
//!
//! [`run_cluster`] drives N partitions, each a primary/follower pair of
//! full engine+durability stacks on their own [`MemBackend`]s, through
//! the *same* transport-free replication core the live server uses
//! (`replica_append`, `install_snapshot_on`, `promote`, epoch
//! admission) — no sockets, no threads, no wall clock. The harness
//! plays the roles the network plays in production: it routes ingest
//! sub-batches to the owning partition's primary, runs the primary ack
//! ladder (log → commit → apply → replicate → ack), and delivers
//! shipments to followers or drops them when a fault says the link is
//! down.
//!
//! What the scenarios prove, deterministically and in milliseconds:
//!
//! * **Kill the primary** ([`ClusterFault::KillPrimary`]): the follower
//!   promotes under a bumped epoch and every client-acked record is
//!   already durable *and applied* on it — zero acked loss, and the
//!   promoted state is byte-identical to a clean replay of the acked
//!   log (the PR-3 twin check, now surviving machine loss).
//! * **Isolate the follower** ([`ClusterFault::IsolateFollower`]): the
//!   primary degrades to local-durable acks; on reconnect the follower
//!   refuses the gap with a typed `LsnGap` and catches up by snapshot
//!   transfer, ending byte-identical to the primary.
//! * **Split-brain promotion** ([`ClusterFault::SplitPromote`]): a
//!   false-positive failover promotes the follower while the deposed
//!   primary is still alive; the old primary's next shipment is refused
//!   with `StaleEpoch`, it fences itself (the write is never acked),
//!   and it rejoins as a follower via snapshot transfer.
//!
//! Same config ⇒ byte-identical transcript and summary, like the
//! single-node runner.

use std::sync::Arc;

use adcast_ads::AdStore;
use adcast_core::{EngineConfig, ShardedDriver};
use adcast_durability::recovery::recover_on;
use adcast_durability::snapshot::EngineSetSnapshot;
use adcast_durability::{
    apply_record, Durability, DurabilityOptions, StorageBackend, WalOptions, WalRecord,
};
use adcast_graph::UserId;
use adcast_net::protocol::WireError;
use adcast_net::replication::{
    install_snapshot_on, promote, replica_append, ClusterState, ReplicaError, ReplicaSetup,
};
use adcast_net::synth::{self, SynthConfig, SynthWorkload};
use adcast_obs::tracestore::{trace_id_for, SpanKind, TraceContext};
use adcast_obs::{readiness, UNREADY_CATCHING_UP};
use adcast_stream::clock::{SimClock, Timestamp};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::backend::MemBackend;

/// An injectable cluster fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterFault {
    /// `kill -9` the partition's primary: its backend tears to the
    /// durability horizon and the node is never touched again. The
    /// harness promotes the follower under a bumped epoch and
    /// immediately proves zero acked loss + a byte-identical twin.
    KillPrimary {
        /// The partition whose primary dies.
        partition: u16,
    },
    /// The primary⇄follower link drops for this many of the partition's
    /// ingest batches: shipments are lost, the primary degrades to
    /// local-durable acks. Reconnection surfaces the gap as a typed
    /// `LsnGap` refusal and a snapshot-transfer catch-up.
    IsolateFollower {
        /// The partition whose follower goes dark.
        partition: u16,
        /// Ingest batches the link stays down.
        batches: u64,
    },
    /// A false-positive failover: the follower is promoted while the
    /// old primary is still alive. The deposed primary attempts one
    /// more write; epoch fencing refuses it (never acked) and the node
    /// rejoins as a follower by snapshot transfer.
    SplitPromote {
        /// The partition that splits.
        partition: u16,
    },
}

/// A cluster fault pinned to a position in the batch stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterFaultAt {
    /// Fires just before this ingest batch (0-based).
    pub at_batch: usize,
    /// What happens.
    pub fault: ClusterFault,
}

/// Everything that shapes one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterSimConfig {
    /// Workload shape (users, campaigns, messages, batching, seed).
    pub synth: SynthConfig,
    /// User partitions; each gets a primary/follower pair.
    pub partitions: usize,
    /// Engine shards per node.
    pub num_shards: usize,
    /// Engine knobs (must match across nodes, like production).
    pub engine: EngineConfig,
    /// WAL knobs for every node.
    pub wal: WalOptions,
    /// Background snapshot cadence in WAL records (0 = never).
    pub snapshot_every: u64,
    /// Snapshots retained by pruning.
    pub keep_snapshots: usize,
    /// Virtual cost of one fsync, nanoseconds.
    pub fsync_latency_ns: u64,
    /// Serve a recommendation wave every this many batches (0 = never).
    pub recommend_every: usize,
    /// Users served per wave.
    pub wave_users: usize,
    /// Impression cost charged (broadcast) for each wave's top pick.
    pub impression_cost: f64,
    /// Head-based trace sampling: every `trace_sample`-th acked record
    /// carries a sampled [`TraceContext`] through the real replication
    /// path (0 = off). Trace ids derive from the synth seed and the
    /// record ordinal, so the transcript's trace lines are byte-identical
    /// across runs of the same config.
    pub trace_sample: u64,
    /// The fault script, in firing order.
    pub faults: Vec<ClusterFaultAt>,
}

impl ClusterSimConfig {
    /// A seconds-scale cluster scenario: the single-node smoke workload
    /// split over `partitions` primary/follower pairs, no faults (add
    /// your own).
    #[must_use]
    pub fn smoke(seed: u64, partitions: usize) -> ClusterSimConfig {
        ClusterSimConfig {
            synth: SynthConfig {
                num_users: 400,
                num_ads: 60,
                messages: 1_200,
                batch_size: 200,
                msgs_per_sec: 200.0,
                seed,
            },
            partitions,
            num_shards: 2,
            engine: EngineConfig::default(),
            wal: WalOptions::default(),
            snapshot_every: 0,
            keep_snapshots: 2,
            fsync_latency_ns: 100_000,
            recommend_every: 2,
            wave_users: 6,
            impression_cost: 0.05,
            trace_sample: 4,
            faults: Vec::new(),
        }
    }
}

/// Deterministic cluster run counters.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ClusterCounters {
    /// Partitions in the run.
    pub partitions: u64,
    /// Ingest batches routed (whole-cluster batches, pre-split).
    pub batches: u64,
    /// Feed deltas acked to the client across all partitions.
    pub acked_deltas: u64,
    /// WAL records acked across all partitions (campaigns, ingest,
    /// impressions).
    pub acked_records: u64,
    /// Recommendation requests served.
    pub recommends: u64,
    /// Recommendations returned across all requests.
    pub served: u64,
    /// Impressions charged (one broadcast = `partitions` records).
    pub impressions: u64,
    /// Replicated shipments acked durable by a follower.
    pub shipments: u64,
    /// Shipments dropped while a follower link was down.
    pub dropped_shipments: u64,
    /// Primaries killed.
    pub kills: u64,
    /// Follower promotions (failover + split-brain).
    pub promotions: u64,
    /// Writes refused because the node was fenced or deposed.
    pub fenced_writes: u64,
    /// Typed `LsnGap` refusals from reconnecting followers.
    pub lsn_gap_refusals: u64,
    /// Snapshot-transfer catch-ups (gap recovery + rejoins).
    pub catch_up_snapshots: u64,
    /// Byte-identical state checks passed (promotion twins, catch-up
    /// convergence, end-of-run replica agreement).
    pub twin_checks: u64,
}

/// What a cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// One line per event, stamped with virtual event time.
    /// Byte-identical across runs of the same config.
    pub transcript: String,
    /// Fixed-order `key=value` rendering of [`ClusterCounters`].
    /// Byte-identical across runs of the same config.
    pub summary: String,
    /// The counters behind the summary.
    pub counters: ClusterCounters,
}

/// One engine+durability stack on its own simulated disk.
struct SimNode {
    backend: Arc<MemBackend>,
    store: AdStore,
    driver: ShardedDriver,
    durability: Durability,
    state: ClusterState,
    alive: bool,
}

impl SimNode {
    fn state_bytes(&self) -> Vec<u8> {
        EngineSetSnapshot::capture(self.durability.next_lsn(), &self.store, &self.driver)
            .encode()
            .to_vec()
    }
}

/// One partition's pair plus the harness's router-side view of it.
struct SimPartition {
    /// `nodes[0]` starts as primary, `nodes[1]` as follower.
    nodes: Vec<SimNode>,
    /// Index of the current primary in `nodes`.
    serving: usize,
    /// Index of the current follower, when one is attached.
    follower: Option<usize>,
    /// The router's epoch for this partition.
    epoch: u64,
    /// Ingest batches the follower link stays down for.
    isolated: u64,
    /// Whether this pair's standby state was seeded by a live-primary
    /// snapshot (catch-up / rejoin). A live snapshot bakes in the
    /// primary's serve-time engine state (score caches, work counters),
    /// so log-replay byte checks no longer apply to the pair — LSN
    /// accounting still does.
    snapshot_seeded: bool,
    /// Every record acked to a client, in ack order — the loss oracle.
    acked_log: Vec<WalRecord>,
}

struct ClusterRunner {
    config: ClusterSimConfig,
    clock: Arc<SimClock>,
    parts: Vec<SimPartition>,
    rng: SmallRng,
    now: Timestamp,
    transcript: Vec<String>,
    /// Acked-record ordinal for head-based trace sampling — advances on
    /// every ack-ladder run, sampled or not, so which records are
    /// sampled is a pure function of the config.
    trace_ordinal: u64,
    c: ClusterCounters,
}

/// Execute one cluster scenario to completion.
///
/// # Errors
///
/// A description when replication, promotion, or a byte-identity check
/// fails (a bug in the cluster stack, not the scenario), or when the
/// fault script references a partition the config doesn't have.
pub fn run_cluster(config: ClusterSimConfig) -> Result<ClusterOutcome, String> {
    if config.partitions == 0 {
        return Err("cluster needs at least one partition".to_string());
    }
    if config.partitions > usize::from(u16::MAX) {
        return Err("partitions exceed the u16 wire header".to_string());
    }
    for f in &config.faults {
        let p = match f.fault {
            ClusterFault::KillPrimary { partition }
            | ClusterFault::IsolateFollower { partition, .. }
            | ClusterFault::SplitPromote { partition } => partition,
        };
        if usize::from(p) >= config.partitions {
            return Err(format!(
                "fault targets partition {p} of {}",
                config.partitions
            ));
        }
    }
    let workload = synth::build(&config.synth);
    let clock = Arc::new(SimClock::new());
    let mut parts = Vec::with_capacity(config.partitions);
    for p in 0..config.partitions {
        let partition = p as u16;
        let nodes = vec![
            fresh_node(
                &config,
                &clock,
                workload.num_users,
                ClusterState::primary(partition, 0),
            )?,
            fresh_node(
                &config,
                &clock,
                workload.num_users,
                ClusterState::follower(partition, 0),
            )?,
        ];
        parts.push(SimPartition {
            nodes,
            serving: 0,
            follower: Some(1),
            epoch: 0,
            isolated: 0,
            snapshot_seeded: false,
            acked_log: Vec::new(),
        });
    }
    let seed = config.synth.seed;
    let runner = ClusterRunner {
        config,
        clock,
        parts,
        rng: SmallRng::seed_from_u64(seed ^ 0xC1_057E2),
        now: Timestamp::EPOCH,
        transcript: Vec::new(),
        trace_ordinal: 0,
        c: ClusterCounters::default(),
    };
    runner.execute(workload)
}

fn fresh_node(
    config: &ClusterSimConfig,
    clock: &Arc<SimClock>,
    num_users: u32,
    state: ClusterState,
) -> Result<SimNode, String> {
    let backend = MemBackend::new(Arc::clone(clock), config.fsync_latency_ns);
    let recovered = recover_on(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        num_users,
        config.num_shards,
        config.engine.clone(),
        config.wal,
    )
    .map_err(|e| e.to_string())?;
    let durability = Durability::new_on(
        Arc::clone(&backend) as Arc<dyn StorageBackend>,
        recovered.wal,
        DurabilityOptions {
            wal: config.wal,
            snapshot_every: config.snapshot_every,
            keep_snapshots: config.keep_snapshots,
        },
        recovered.report,
    );
    Ok(SimNode {
        backend,
        store: recovered.store,
        driver: recovered.driver,
        durability,
        state,
        alive: true,
    })
}

impl ClusterRunner {
    fn execute(mut self, workload: SynthWorkload) -> Result<ClusterOutcome, String> {
        self.c.partitions = self.parts.len() as u64;

        // Campaigns broadcast to every partition in one global order, so
        // replayed campaign ids agree across the cluster (DESIGN §14).
        let total_campaigns = workload.campaigns.len();
        for spec in workload.campaigns {
            let sub = spec.try_into_submission()?;
            for p in 0..self.parts.len() {
                self.ack_ladder(p, WalRecord::Submit(sub.clone()))?;
            }
        }
        self.line(format!(
            "submitted campaigns={total_campaigns} partitions={}",
            self.parts.len()
        ));

        let num_partitions = self.parts.len();
        for (i, batch) in workload.batches.into_iter().enumerate() {
            let due: Vec<ClusterFault> = self
                .config
                .faults
                .iter()
                .filter(|f| f.at_batch == i)
                .map(|f| f.fault)
                .collect();
            for fault in due {
                self.fire(fault)?;
            }

            for (_, delta) in &batch {
                if let Some(m) = &delta.entered {
                    if m.ts > self.now {
                        self.now = m.ts;
                    }
                }
            }

            // The router's split: one sub-batch per owning partition.
            let mut subs: Vec<Vec<(UserId, adcast_feed::FeedDelta)>> =
                vec![Vec::new(); num_partitions];
            for (user, delta) in batch {
                subs[user.index() % num_partitions].push((user, delta));
            }
            let mut routed = 0u64;
            for (p, sub) in subs.into_iter().enumerate() {
                if sub.is_empty() {
                    continue;
                }
                let deltas = sub.len() as u64;
                self.ack_ladder(p, WalRecord::IngestBatch(sub))?;
                self.c.acked_deltas += deltas;
                routed += deltas;
                if self.parts[p].isolated > 0 {
                    self.parts[p].isolated -= 1;
                }
            }
            self.c.batches += 1;
            self.line(format!("ingest batch={i} deltas={routed}"));

            if self.config.recommend_every > 0 && (i + 1) % self.config.recommend_every == 0 {
                self.serve_wave(workload.num_users)?;
            }
        }

        // End-of-run agreement: every live follower that isn't mid-gap
        // must hold the primary's exact bytes (hot standby, not a cold
        // log copy).
        for p in 0..self.parts.len() {
            self.check_replica_agreement(p)?;
            let part = &self.parts[p];
            let primary = &part.nodes[part.serving];
            if part.acked_log.len() as u64 != primary.durability.next_lsn() {
                return Err(format!(
                    "partition {p}: {} acked records but primary lsn {}",
                    part.acked_log.len(),
                    primary.durability.next_lsn()
                ));
            }
        }
        self.line(format!(
            "done batches={} acked_records={} twin_checks={}",
            self.c.batches, self.c.acked_records, self.c.twin_checks
        ));

        let summary = self.render_summary();
        let mut transcript = self.transcript.join("\n");
        transcript.push('\n');
        Ok(ClusterOutcome {
            transcript,
            summary,
            counters: self.c,
        })
    }

    /// The head-based sampling decision for the next acked record: the
    /// trace id is a pure function of `(synth seed, ordinal)`, exactly
    /// like the live router's, so reruns sample the same records and
    /// derive the same ids.
    fn sample_trace(&mut self) -> TraceContext {
        let every = self.config.trace_sample;
        if every == 0 {
            return TraceContext::NONE;
        }
        let ordinal = self.trace_ordinal;
        self.trace_ordinal += 1;
        if !ordinal.is_multiple_of(every) {
            return TraceContext::NONE;
        }
        TraceContext {
            trace_id: trace_id_for(self.config.synth.seed, ordinal),
            parent_span_id: 0,
        }
    }

    /// The primary ack ladder for one record on one partition:
    /// log → commit → apply → replicate → ack. Mirrors the server's
    /// `log_apply` + `replicate` exactly, with the harness as the wire.
    fn ack_ladder(&mut self, p: usize, record: WalRecord) -> Result<(), String> {
        let trace = self.sample_trace();
        let part = &mut self.parts[p];
        let primary = &mut part.nodes[part.serving];
        if primary.state.fenced || !primary.alive {
            return Err(format!(
                "partition {p}: routed a write to a dead/fenced node"
            ));
        }
        let lsn = primary.durability.log(&record).map_err(|e| e.to_string())?;
        primary.durability.commit().map_err(|e| e.to_string())?;
        let payload = record.encode();
        apply_record(&mut primary.store, &mut primary.driver, record.clone())?;
        primary
            .durability
            .maybe_snapshot(&primary.store, &primary.driver);

        let mut replicated = false;
        if let Some(f) = part.follower {
            if part.isolated > 0 {
                // Link down: the primary degrades to local-durable acks
                // (the record is still acked — fsynced locally).
                self.c.dropped_shipments += 1;
            } else {
                let epoch = part.epoch;
                self.ship(p, f, epoch, lsn, payload, trace)?;
                replicated = true;
            }
        }
        let part = &mut self.parts[p];
        part.acked_log.push(record);
        self.c.acked_records += 1;
        if trace.sampled() {
            // The transcript's trace line is computed purely from the
            // config (never read back from the shared span ring, which a
            // double-run in one process would pollute): the id from the
            // sampling function, the hop list from the ladder just run.
            let ladder = if replicated {
                "replicate,follower_commit,follower_apply"
            } else {
                "local_durable"
            };
            self.line(format!(
                "trace partition={p} id={:016x} ladder={ladder}",
                trace.trace_id
            ));
        }
        Ok(())
    }

    /// Deliver one shipment to the follower; a gap triggers the
    /// snapshot-transfer catch-up, exactly like the live sink path.
    fn ship(
        &mut self,
        p: usize,
        f: usize,
        epoch: u64,
        lsn: u64,
        payload: bytes::Bytes,
        trace: TraceContext,
    ) -> Result<(), String> {
        let partition = p as u16;
        let follower = &mut self.parts[p].nodes[f];
        follower
            .state
            .admit(partition, epoch)
            .map_err(|e| format!("partition {p}: follower refused shipment: {e}"))?;
        match replica_append(
            &mut follower.durability,
            &mut follower.store,
            &mut follower.driver,
            trace.child(SpanKind::Replicate, partition as u64),
            &[(lsn, payload)],
        ) {
            Ok(_) => {
                self.c.shipments += 1;
                Ok(())
            }
            Err(ReplicaError::LsnGap { .. }) => {
                self.c.lsn_gap_refusals += 1;
                self.catch_up(p, f)?;
                Ok(())
            }
            Err(e) => Err(format!("partition {p}: replica append failed: {e}")),
        }
    }

    /// Snapshot-transfer catch-up: capture the primary's post-apply
    /// image, rebuild the follower from it, and prove the installed
    /// state recaptures to the exact shipped bytes.
    fn catch_up(&mut self, p: usize, f: usize) -> Result<(), String> {
        let part = &mut self.parts[p];
        let snapshot = {
            let primary = &part.nodes[part.serving];
            EngineSetSnapshot::capture(
                primary.durability.next_lsn(),
                &primary.store,
                &primary.driver,
            )
            .encode()
        };
        let setup = ReplicaSetup {
            backend: Arc::clone(&part.nodes[f].backend) as Arc<dyn StorageBackend>,
            options: DurabilityOptions {
                wal: self.config.wal,
                snapshot_every: self.config.snapshot_every,
                keep_snapshots: self.config.keep_snapshots,
            },
            engine: self.config.engine.clone(),
        };
        // The follower is unready for the duration of the install, and
        // the transcript pins both edges of the flip (the live server
        // drives the same `/readyz` bit around its own install path).
        self.line(format!("readyz partition={p} state=catching_up"));
        readiness().set(UNREADY_CATCHING_UP, true);
        let installed = install_snapshot_on(&setup, snapshot.clone());
        readiness().set(UNREADY_CATCHING_UP, false);
        self.line(format!("readyz partition={p} state=ready"));
        let (store, driver, durability) =
            installed.map_err(|e| format!("partition {p}: snapshot install failed: {e}"))?;
        let part = &mut self.parts[p];
        let follower = &mut part.nodes[f];
        follower.store = store;
        follower.driver = driver;
        follower.durability = durability;
        part.snapshot_seeded = true;
        if follower.state_bytes() != snapshot.to_vec() {
            return Err(format!(
                "partition {p}: installed snapshot recaptures differently"
            ));
        }
        self.c.catch_up_snapshots += 1;
        self.c.twin_checks += 1;
        self.line(format!(
            "catch_up partition={p} lsn={}",
            self.parts[p].nodes[f].durability.next_lsn()
        ));
        Ok(())
    }

    fn fire(&mut self, fault: ClusterFault) -> Result<(), String> {
        match fault {
            ClusterFault::KillPrimary { partition } => {
                let p = usize::from(partition);
                {
                    let part = &mut self.parts[p];
                    let primary = &mut part.nodes[part.serving];
                    primary.alive = false;
                    primary.backend.crash();
                }
                self.c.kills += 1;
                self.line(format!("fault kill_primary partition={p}"));
                self.promote_follower(p)?;
                // Zero acked loss: every acked record is durable and
                // applied on the promoted node, byte-for-byte.
                self.check_promoted_twin(p)
            }
            ClusterFault::IsolateFollower { partition, batches } => {
                let p = usize::from(partition);
                if self.parts[p].follower.is_none() {
                    return Err(format!("partition {p} has no follower to isolate"));
                }
                self.parts[p].isolated = batches;
                self.line(format!(
                    "fault isolate_follower partition={p} batches={batches}"
                ));
                Ok(())
            }
            ClusterFault::SplitPromote { partition } => {
                let p = usize::from(partition);
                let deposed = self.parts[p].serving;
                self.line(format!("fault split_promote partition={p}"));
                self.promote_follower(p)?;
                // The deposed primary is still alive and doesn't know:
                // it takes one more write and tries to ship it. Fencing
                // refuses the shipment, the node fences itself, and the
                // write is never acked.
                self.stale_write(p, deposed)?;
                // It then rejoins as a follower of the new primary via
                // snapshot transfer.
                self.rejoin(p, deposed)
            }
        }
    }

    /// The router's failover: bump the epoch and promote the follower.
    fn promote_follower(&mut self, p: usize) -> Result<(), String> {
        let part = &mut self.parts[p];
        let Some(f) = part.follower else {
            return Err(format!("partition {p}: no follower to promote"));
        };
        let next_epoch = part.epoch + 1;
        promote(&mut part.nodes[f].state, p as u16, next_epoch)
            .map_err(|e| format!("partition {p}: promotion refused: {e}"))?;
        part.epoch = next_epoch;
        part.serving = f;
        part.follower = None;
        part.isolated = 0;
        self.c.promotions += 1;
        self.line(format!(
            "promoted partition={p} epoch={next_epoch} lsn={}",
            self.parts[p].nodes[f].durability.next_lsn()
        ));
        Ok(())
    }

    /// A deposed-but-alive primary writes once more; the shipment is
    /// refused by epoch fencing and the node fences itself.
    fn stale_write(&mut self, p: usize, deposed: usize) -> Result<(), String> {
        let stale_epoch = {
            let part = &mut self.parts[p];
            let record = WalRecord::Maintenance {
                now: self.now,
                idle_for: adcast_stream::clock::Duration::from_secs(1),
            };
            let stale = &mut part.nodes[deposed];
            stale.durability.log(&record).map_err(|e| e.to_string())?;
            stale.durability.commit().map_err(|e| e.to_string())?;
            apply_record(&mut stale.store, &mut stale.driver, record)?;
            stale.state.epoch
        };
        // The shipment: the new primary refuses the old epoch.
        let part = &mut self.parts[p];
        let refusal = part.nodes[part.serving].state.admit(p as u16, stale_epoch);
        let Err(WireError::StaleEpoch { current }) = refusal else {
            return Err(format!(
                "partition {p}: stale shipment was admitted (epoch {stale_epoch})"
            ));
        };
        part.nodes[deposed].state.fenced = true;
        self.c.fenced_writes += 1;
        self.line(format!(
            "fenced partition={p} stale_epoch={stale_epoch} current={current}"
        ));
        Ok(())
    }

    /// Re-attach a fenced ex-primary as the follower of the current
    /// primary: adopt the new epoch, rebuild by snapshot transfer.
    fn rejoin(&mut self, p: usize, node: usize) -> Result<(), String> {
        {
            let part = &mut self.parts[p];
            part.nodes[node].state = ClusterState::follower(p as u16, part.epoch);
            part.follower = Some(node);
        }
        // The rejoining node's WAL diverged (the fenced write); the
        // first shipment would refuse with a gap anyway — transfer now.
        self.catch_up(p, node)?;
        self.line(format!("rejoined partition={p} as follower"));
        Ok(())
    }

    /// Follower agreement at end of run: the follower must hold exactly
    /// a clean replay of the acked log up to its LSN — hot standby, not
    /// a cold log copy. Serve-time engine state (score caches, work
    /// counters) lives only on the node that served, so the comparison
    /// is against a replay twin, not the live primary's bytes; a pair
    /// whose standby was seeded by a live snapshot is checked by LSN
    /// accounting alone.
    fn check_replica_agreement(&mut self, p: usize) -> Result<(), String> {
        let part = &self.parts[p];
        let Some(f) = part.follower else {
            return Ok(());
        };
        let primary = &part.nodes[part.serving];
        let follower = &part.nodes[f];
        let follower_lsn = follower.durability.next_lsn();
        if part.isolated == 0 && follower_lsn != primary.durability.next_lsn() {
            return Err(format!(
                "partition {p}: follower at lsn {follower_lsn}, primary at {}",
                primary.durability.next_lsn()
            ));
        }
        if part.snapshot_seeded {
            return Ok(());
        }
        let twin_bytes = self.replay_twin(p, follower_lsn)?;
        let part = &self.parts[p];
        if part.nodes[f].state_bytes() != twin_bytes {
            return Err(format!(
                "partition {p}: follower diverges from acked-log replay at lsn {follower_lsn}"
            ));
        }
        self.c.twin_checks += 1;
        Ok(())
    }

    /// The promoted node must hold exactly the acked log: nothing lost,
    /// nothing extra — and, unless its state was seeded by a live
    /// snapshot, byte-identical to a clean replay.
    fn check_promoted_twin(&mut self, p: usize) -> Result<(), String> {
        let part = &self.parts[p];
        let promoted = &part.nodes[part.serving];
        let next_lsn = promoted.durability.next_lsn();
        if next_lsn != part.acked_log.len() as u64 {
            return Err(format!(
                "partition {p}: acked {} records but promoted node is at lsn {next_lsn}",
                part.acked_log.len()
            ));
        }
        if !part.snapshot_seeded {
            let twin_bytes = self.replay_twin(p, next_lsn)?;
            let part = &self.parts[p];
            if part.nodes[part.serving].state_bytes() != twin_bytes {
                return Err(format!(
                    "partition {p}: promoted state diverges from acked-log replay at lsn {next_lsn}"
                ));
            }
            self.c.twin_checks += 1;
        }
        self.line(format!("twin partition={p} lsn={next_lsn} ok"));
        Ok(())
    }

    /// Replay the first `upto` acked records into a fresh pair and
    /// capture the result — the oracle for log-derived state.
    fn replay_twin(&self, p: usize, upto: u64) -> Result<Vec<u8>, String> {
        let part = &self.parts[p];
        let mut twin_store = AdStore::new();
        let mut twin_driver = ShardedDriver::new(
            part.nodes[part.serving].driver.num_users(),
            self.config.num_shards,
            self.config.engine.clone(),
        );
        for record in part.acked_log.iter().take(upto as usize) {
            apply_record(&mut twin_store, &mut twin_driver, record.clone())?;
        }
        Ok(EngineSetSnapshot::capture(upto, &twin_store, &twin_driver)
            .encode()
            .to_vec())
    }

    fn serve_wave(&mut self, num_users: u32) -> Result<(), String> {
        let num_partitions = self.parts.len();
        let mut served = 0u64;
        let mut top = None;
        for _ in 0..self.config.wave_users {
            let user = UserId(self.rng.gen_range(0..num_users));
            let p = user.index() % num_partitions;
            let part = &mut self.parts[p];
            let serving = part.serving;
            let node = &mut part.nodes[serving];
            let recs = node.driver.recommend(
                &node.store,
                user,
                self.now,
                adcast_stream::event::LocationId(0),
                self.config.engine.k,
            );
            served += recs.len() as u64;
            if top.is_none() {
                top = recs.first().map(|r| r.ad);
            }
        }
        self.c.recommends += self.config.wave_users as u64;
        self.c.served += served;
        // Impressions are control-plane: broadcast the charge to every
        // partition in the same order, like the router does.
        if let Some(ad) = top {
            let clicked = self.rng.gen_range(0..10u32) == 0;
            for p in 0..num_partitions {
                self.ack_ladder(
                    p,
                    WalRecord::Impression {
                        ad,
                        cost: self.config.impression_cost,
                        clicked,
                        now: self.now,
                    },
                )?;
            }
            self.c.impressions += 1;
        }
        self.line(format!(
            "wave users={} served={served} impressions={}",
            self.config.wave_users, self.c.impressions
        ));
        Ok(())
    }

    fn line(&mut self, body: String) {
        self.transcript.push(format!("t={} {body}", self.now));
    }

    fn render_summary(&self) -> String {
        let c = &self.c;
        let mut s = String::new();
        for (key, value) in [
            ("partitions", c.partitions),
            ("batches", c.batches),
            ("acked_deltas", c.acked_deltas),
            ("acked_records", c.acked_records),
            ("recommends", c.recommends),
            ("served", c.served),
            ("impressions", c.impressions),
            ("shipments", c.shipments),
            ("dropped_shipments", c.dropped_shipments),
            ("kills", c.kills),
            ("promotions", c.promotions),
            ("fenced_writes", c.fenced_writes),
            ("lsn_gap_refusals", c.lsn_gap_refusals),
            ("catch_up_snapshots", c.catch_up_snapshots),
            ("twin_checks", c.twin_checks),
        ] {
            s.push_str(key);
            s.push('=');
            s.push_str(&value.to_string());
            s.push('\n');
        }
        // The shared clock only sequences fsyncs; assert it advanced so
        // a future refactor can't silently bypass the simulated disk.
        debug_assert!(self.clock.now_ns() > 0 || c.acked_records == 0);
        s
    }
}
