#!/usr/bin/env bash
# The full local gate: everything CI runs, in the order that fails fastest.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== adcast-lint (workspace invariants) =="
cargo run -q -p adcast-lint -- --workspace-root .

echo "== cargo build --release =="
cargo build --release

echo "== cargo test (workspace) =="
cargo test -q --workspace

echo "== cargo test (debug-stats: zero-alloc hot path) =="
cargo test -q -p adcast-core --features debug-stats

echo "== serving-layer loopback smoke (adcast-serve + adcast-loadgen + /metrics) =="
serve_log=$(mktemp)
./target/release/adcast-serve --users 400 --shards 2 --obs-addr 127.0.0.1:0 \
  >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(awk '/^listening on /{print $3; exit}' "$serve_log")
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "adcast-serve never reported its address:" >&2
  cat "$serve_log" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
obs_addr=$(awk '/^obs listening on /{print $4; exit}' "$serve_log")
if [ -z "$obs_addr" ]; then
  echo "adcast-serve never reported its obs address:" >&2
  cat "$serve_log" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
# --obs-addr makes the loadgen scrape /metrics + /healthz at end of run and
# hard-fail on malformed exposition or an unhealthy server.
loadgen_out=$(./target/release/adcast-loadgen --addr "$addr" --smoke --conns 2 \
  --obs-addr "$obs_addr")
echo "$loadgen_out"
# --smoke sends Shutdown at the end; the server must exit cleanly on it.
wait "$serve_pid"
grep -q 'responses=[1-9]' <<<"$loadgen_out" || {
  echo "loadgen smoke returned zero responses" >&2
  exit 1
}
grep -q 'obs: families=' <<<"$loadgen_out" || {
  echo "loadgen smoke never scraped /metrics" >&2
  exit 1
}
rm -f "$serve_log"

echo "== crash-recovery smoke (kill -9 mid-load, restart, verify recovered state) =="
data_dir=$(mktemp -d)
serve_log=$(mktemp)
./target/release/adcast-serve --users 400 --shards 2 --data-dir "$data_dir" \
  --fsync always --snapshot-every 2000 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(awk '/^listening on /{print $3; exit}' "$serve_log")
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "durable adcast-serve never reported its address:" >&2
  cat "$serve_log" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
# Drive load in the background (enough messages to still be mid-flight),
# then kill -9 the server under it — acked writes must survive.
./target/release/adcast-loadgen --addr "$addr" --smoke --messages 8000 \
  --no-shutdown >/dev/null 2>&1 &
loadgen_pid=$!
sleep 1.5
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
# The loadgen will spin on reconnect against the dead port; its fate is
# not the check — the recovered server's counters are.
kill -9 "$loadgen_pid" 2>/dev/null || true
wait "$loadgen_pid" 2>/dev/null || true
# Restart from the same data directory (fresh ephemeral port) and verify
# the pre-crash state came back: recovered_records counts the WAL tail
# replayed on top of the last periodic snapshot.
./target/release/adcast-serve --users 400 --shards 2 --data-dir "$data_dir" \
  --fsync always --snapshot-every 2000 >"$serve_log" 2>&1 &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr=$(awk '/^listening on /{print $3; exit}' "$serve_log")
  [ -n "$addr" ] && break
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "restarted adcast-serve never reported its address:" >&2
  cat "$serve_log" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
fi
loadgen_out=$(./target/release/adcast-loadgen --addr "$addr" --smoke --conns 2)
echo "$loadgen_out"
wait "$serve_pid"
grep -q 'responses=[1-9]' <<<"$loadgen_out" || {
  echo "post-recovery loadgen returned zero responses" >&2
  exit 1
}
grep -q 'recovered_records=[1-9]' <<<"$loadgen_out" || {
  echo "restarted server reports no recovered WAL records — recovery did not happen" >&2
  cat "$serve_log" >&2
  exit 1
}
# Graceful shutdown dumps the flight recorder next to the WAL; after a crash
# plus a recovered run it must exist and be non-empty.
if ! [ -s "$data_dir/flightrec.jsonl" ]; then
  echo "no flight-recorder dump at $data_dir/flightrec.jsonl after recovery" >&2
  ls -la "$data_dir" >&2 || true
  exit 1
fi
rm -rf "$data_dir"
rm -f "$serve_log"

echo "== E15 index-scaling smoke (pruned vs exhaustive, tiny sweep) =="
e15_out=$(ADCAST_E15_SMOKE=1 ./target/release/e15_ad_scaling)
echo "$e15_out"
grep -q 'smoke run' <<<"$e15_out" || {
  echo "E15 smoke did not run in smoke mode" >&2
  exit 1
}

echo "== E16 sim determinism smoke (seeded scenario twice, byte-identical) =="
e16_out=$(ADCAST_E16_SMOKE=1 ./target/release/e16_sim_day)
echo "$e16_out"
grep -q 'smoke run' <<<"$e16_out" || {
  echo "E16 smoke did not run in smoke mode" >&2
  exit 1
}
grep -q 'twin=ok' <<<"$e16_out" || {
  echo "E16 smoke crash recovery did not twin-check" >&2
  exit 1
}

echo "All checks passed."
