//! The end-to-end text analysis pipeline:
//! tokenize → normalize → stop-filter → stem → intern → count → weigh.
//!
//! Two entry points matter:
//!
//! * [`TextPipeline::index_document`] — analyze a document *and* record it
//!   in the corpus statistics (used while ingesting the message stream and
//!   the ad corpus),
//! * [`TextPipeline::analyze`] — analyze without touching statistics (used
//!   for ad-hoc queries and tests).
//!
//! Tokenization runs on the **raw** text so hashtag camel-case splitting
//! can see original capitalization; each token is then normalized
//! individually through a reused buffer, keeping the hot path at one
//! amortized allocation per *novel* term.

use std::collections::HashMap;

use crate::dictionary::{Dictionary, TermId};
use crate::ngrams::bigram_term;
use crate::normalize::normalize_into;
use crate::sparse::SparseVector;
use crate::stemmer::Stemmer;
use crate::stopwords::StopWords;
use crate::tfidf::WeightingConfig;
use crate::tokenizer::{Tokenizer, TokenizerConfig};

/// Configuration for [`TextPipeline`].
#[derive(Debug, Clone, Default)]
pub struct PipelineConfig {
    /// Tokenizer settings.
    pub tokenizer: TokenizerConfig,
    /// Weighting settings. Defaults to log-TF × smooth-IDF, L2-normalized
    /// via [`PipelineConfig::standard`]; the plain `Default` uses the
    /// individual scheme defaults un-normalized.
    pub weighting: WeightingConfig,
    /// Apply the Porter stemmer to word tokens.
    pub stem: bool,
    /// Drop stop words.
    pub filter_stopwords: bool,
    /// Additionally emit bigram terms for adjacent content words
    /// ("running shoes" → `run▪shoe`), weighted like any other term.
    /// Off by default: it enlarges vectors ~2× for a phrase-precision
    /// gain the evaluation quantifies separately.
    pub emit_bigrams: bool,
}

impl PipelineConfig {
    /// The configuration used by the evaluation harness.
    pub fn standard() -> Self {
        PipelineConfig {
            tokenizer: TokenizerConfig::default(),
            weighting: WeightingConfig::standard(),
            stem: true,
            filter_stopwords: true,
            emit_bigrams: false,
        }
    }

    /// The standard configuration plus bigram phrase features.
    pub fn with_bigrams() -> Self {
        PipelineConfig {
            emit_bigrams: true,
            ..PipelineConfig::standard()
        }
    }
}

/// The analyzer. Owns the dictionary (vocabulary grows as documents are
/// indexed) and all scratch buffers.
#[derive(Debug)]
pub struct TextPipeline {
    config: PipelineConfig,
    tokenizer: Tokenizer,
    stopwords: StopWords,
    stemmer: Stemmer,
    dictionary: Dictionary,
    // Scratch buffers, reused across calls.
    norm_buf: String,
    counts_buf: HashMap<TermId, u32>,
}

impl TextPipeline {
    /// Create a pipeline with defaults for everything but `config`.
    pub fn new(config: PipelineConfig) -> Self {
        let stopwords = if config.filter_stopwords {
            StopWords::english()
        } else {
            StopWords::none()
        };
        TextPipeline {
            tokenizer: Tokenizer::new(config.tokenizer.clone()),
            stopwords,
            stemmer: Stemmer::new(),
            dictionary: Dictionary::new(),
            norm_buf: String::new(),
            counts_buf: HashMap::new(),
            config,
        }
    }

    /// A pipeline with the standard evaluation configuration
    /// (stemming + stop words + log-TF/smooth-IDF/L2).
    pub fn standard() -> Self {
        TextPipeline::new(PipelineConfig::standard())
    }

    /// Replace the stop-word set.
    pub fn set_stopwords(&mut self, stopwords: StopWords) {
        self.stopwords = stopwords;
    }

    /// The term dictionary (vocabulary + document frequencies).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dictionary
    }

    /// The active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Turn `text` into term counts, interning novel terms.
    ///
    /// Returns the scratch count map; callers must copy what they need
    /// before the next call.
    fn count_terms(&mut self, text: &str) -> &HashMap<TermId, u32> {
        self.counts_buf.clear();
        let tokens = self.tokenizer.tokenize(text);
        let mut prev_stem: Option<String> = None;
        for token in &tokens {
            normalize_into(&token.text, &mut self.norm_buf);
            if self.norm_buf.is_empty() {
                continue;
            }
            if self.config.filter_stopwords && self.stopwords.contains(&self.norm_buf) {
                // Stop words break phrase adjacency.
                prev_stem = None;
                continue;
            }
            let term = if self.config.stem {
                self.stemmer.stem(&self.norm_buf)
            } else {
                self.norm_buf.as_str()
            };
            if term.len() < self.config.tokenizer.min_token_len {
                prev_stem = None;
                continue;
            }
            let id = self.dictionary.intern(term);
            *self.counts_buf.entry(id).or_insert(0) += 1;
            if self.config.emit_bigrams {
                if let Some(prev) = &prev_stem {
                    let bid = self.dictionary.intern(&bigram_term(prev, term));
                    *self.counts_buf.entry(bid).or_insert(0) += 1;
                }
                prev_stem = Some(term.to_string());
            }
        }
        &self.counts_buf
    }

    /// Analyze `text` into a weighted sparse vector **without** recording
    /// it in the corpus statistics.
    pub fn analyze(&mut self, text: &str) -> SparseVector {
        self.count_terms(text);
        let counts: Vec<(TermId, u32)> = self.counts_buf.iter().map(|(&t, &c)| (t, c)).collect();
        self.config.weighting.weigh(counts, &self.dictionary)
    }

    /// Analyze `text` **and** record it as one document in the corpus
    /// statistics (document frequencies, document count).
    ///
    /// Note the returned weights use the statistics *including* this
    /// document, so repeated indexing of the same text converges.
    pub fn index_document(&mut self, text: &str) -> SparseVector {
        self.count_terms(text);
        let counts: Vec<(TermId, u32)> = self.counts_buf.iter().map(|(&t, &c)| (t, c)).collect();
        self.dictionary
            .record_document(counts.iter().map(|&(t, _)| t));
        self.config.weighting.weigh(counts, &self.dictionary)
    }

    /// Analyze a bag of raw keywords (ad keyword lists), bypassing the
    /// tokenizer but applying normalization, stemming, and weighting.
    pub fn analyze_keywords<S: AsRef<str>>(&mut self, keywords: &[S]) -> SparseVector {
        self.counts_buf.clear();
        for kw in keywords {
            normalize_into(kw.as_ref(), &mut self.norm_buf);
            if self.norm_buf.is_empty() {
                continue;
            }
            let term = if self.config.stem {
                self.stemmer.stem(&self.norm_buf)
            } else {
                self.norm_buf.as_str()
            };
            if term.is_empty() {
                continue;
            }
            let id = self.dictionary.intern(term);
            *self.counts_buf.entry(id).or_insert(0) += 1;
        }
        let counts: Vec<(TermId, u32)> = self.counts_buf.iter().map(|(&t, &c)| (t, c)).collect();
        self.config.weighting.weigh(counts, &self.dictionary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_pipeline_end_to_end() {
        let mut p = TextPipeline::standard();
        let v = p.index_document("The nation's best volleyball returns tomorrow night!");
        assert!(!v.is_empty());
        // Stop words gone; "volleyball" stemmed and present.
        let stemmed = p.dictionary().get("volleybal").expect("volleyball indexed");
        assert!(v.get(stemmed) > 0.0);
        assert!(p.dictionary().get("the").is_none());
    }

    #[test]
    fn doc_example_from_lib_rs() {
        let mut p = TextPipeline::new(PipelineConfig::default());
        let v = p.index_document("Running shoes and RUNNING gear! #running");
        // Default config: no stemming/stopword filtering is OFF by default
        // Default derive => stem=false, filter=false: "running", "shoes",
        // "and", "gear", hashtag "running".
        assert!(v.len() >= 3);
    }

    #[test]
    fn stemming_folds_variants() {
        let mut p = TextPipeline::standard();
        let v = p.analyze("running runs ran runner");
        // "running"/"runs" → "run"; "runner" → "runner"; "ran" → "ran".
        let run = p.dictionary().get("run").unwrap();
        assert!(v.get(run) > 0.0);
    }

    #[test]
    fn analyze_does_not_touch_statistics() {
        let mut p = TextPipeline::standard();
        p.analyze("volleyball match tonight");
        assert_eq!(p.dictionary().num_docs(), 0);
        p.index_document("volleyball match tonight");
        assert_eq!(p.dictionary().num_docs(), 1);
    }

    #[test]
    fn keywords_share_vocabulary_with_documents() {
        let mut p = TextPipeline::standard();
        p.index_document("big volleyball sale this weekend");
        let ad = p.analyze_keywords(&["Volleyball", "Sale", "Shoes"]);
        let doc = p.analyze("volleyball sale");
        assert!(
            ad.dot(&doc) > 0.0,
            "ad and document must overlap on shared stems"
        );
    }

    #[test]
    fn repeated_terms_counted() {
        let mut p = TextPipeline::new(PipelineConfig {
            stem: false,
            filter_stopwords: false,
            weighting: WeightingConfig {
                tf: crate::tfidf::TfScheme::Raw,
                idf: crate::tfidf::IdfScheme::None,
                l2_normalize: false,
            },
            ..PipelineConfig::standard()
        });
        let v = p.analyze("buy buy buy now");
        let buy = p.dictionary().get("buy").unwrap();
        assert_eq!(v.get(buy), 3.0);
    }

    #[test]
    fn hashtag_parts_match_plain_words() {
        let mut p = TextPipeline::standard();
        p.index_document("flash sale on shoes");
        let tagged = p.analyze("#FlashSale");
        let plain = p.analyze("flash sale");
        assert!(tagged.dot(&plain) > 0.0);
    }

    #[test]
    fn bigrams_connect_phrases() {
        let mut p = TextPipeline::new(PipelineConfig::with_bigrams());
        p.index_document("running shoes on sale");
        p.index_document("marathon running gear");
        let query = p.analyze("new running shoes");
        let phrase = p
            .dictionary()
            .get(&crate::ngrams::bigram_term("run", "shoe"));
        let id = phrase.expect("bigram interned");
        assert!(
            query.get(id) > 0.0,
            "phrase term present in the query vector"
        );
        // A scrambled mention shares unigrams but not the phrase.
        let scrambled = p.analyze("shoes for my running club");
        assert_eq!(scrambled.get(id), 0.0, "non-adjacent words emit no bigram");
    }

    #[test]
    fn stopwords_break_bigram_adjacency() {
        let mut p = TextPipeline::new(PipelineConfig::with_bigrams());
        let v = p.index_document("coffee and espresso");
        let direct = crate::ngrams::bigram_term("coffe", "espresso");
        let coffee = crate::ngrams::bigram_term("coffee", "espresso");
        // Whatever the exact stems, no bigram joins across "and".
        for (_, term, _) in p.dictionary().iter() {
            assert!(
                !crate::ngrams::is_bigram(term),
                "bigram {term:?} must not span the stop word"
            );
        }
        let _ = (v, direct, coffee);
    }

    #[test]
    fn empty_text_gives_empty_vector() {
        let mut p = TextPipeline::standard();
        assert!(p.analyze("").is_empty());
        assert!(p.analyze("the and or").is_empty(), "pure stop words vanish");
        assert!(p.analyze_keywords::<&str>(&[]).is_empty());
    }

    #[test]
    fn short_stems_are_dropped() {
        let mut p = TextPipeline::standard();
        // "ties" stems to "ti" (length 2) which passes min_token_len=2;
        // verify nothing shorter leaks in.
        p.index_document("ties");
        for (_, term, _) in p.dictionary().iter() {
            assert!(term.chars().count() >= 2, "leaked short term {term:?}");
        }
    }
}
