//! End-to-end observability test: a scripted workload over a loopback
//! server, then a real HTTP scrape of `/metrics` whose histogram counts
//! must agree with the `Stats` RPC's counters.
//!
//! This file holds exactly ONE `#[test]`: the metrics registry and the
//! flight recorder are process-wide by design, so a second concurrent
//! server in the same binary would fold its RPCs into the same families
//! and break the exact-count assertions below.

use adcast::ads::AdStore;
use adcast::core::{EngineConfig, ShardedDriver};
use adcast::net::client::{Client, ClientConfig};
use adcast::net::server::{Server, ServerConfig};
use adcast::net::synth::{self, SynthConfig};
use adcast::obs::{find_family, histogram_quantile, http_get, parse_exposition, ObsServer};

#[test]
fn metrics_scrape_matches_server_stats() {
    let dir = std::env::temp_dir().join(format!("adcast-obs-loopback-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let flightrec_path = dir.join("flightrec.jsonl");

    let workload = synth::build(&SynthConfig {
        num_users: 96,
        num_ads: 40,
        messages: 300,
        batch_size: 60,
        msgs_per_sec: 200.0,
        seed: 7,
    });
    let driver = ShardedDriver::new(workload.num_users, 2, EngineConfig::default());
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            flightrec_path: Some(flightrec_path.clone()),
            ..ServerConfig::default()
        },
        AdStore::new(),
        driver,
    )
    .expect("bind loopback");
    let obs = ObsServer::start("127.0.0.1:0", adcast::obs::registry()).expect("bind obs");
    let obs_addr = obs.addr().to_string();

    // Scripted workload on one connection so every count is exact.
    let mut client = Client::connect(server.addr().to_string(), &ClientConfig::default()).unwrap();
    for spec in &workload.campaigns {
        client.submit_campaign(spec.clone()).unwrap();
    }
    let mut ingests = 0u64;
    for batch in &workload.batches {
        client.ingest(batch.clone()).unwrap();
        ingests += 1;
    }
    let recommends = 25u64;
    for u in 0..recommends {
        let user = adcast::graph::UserId(u as u32 % workload.num_users);
        let location = workload.homes[user.index()];
        client
            .recommend(user, workload.end_time, location, 5)
            .unwrap();
    }
    // One lifecycle maintenance pass, far enough past the workload that
    // every user is idle; its telemetry must land in the same scrape.
    let maint_now = adcast::stream::clock::Timestamp(workload.end_time.0 + 10_000_000);
    let idle_for = adcast::stream::clock::Duration::from_secs(1);
    let (scanned, decayed, pruned) = client.maintain(maint_now, idle_for).unwrap();
    assert!(scanned > 0, "maintenance must scan the user set");
    assert!(decayed > 0, "every user is idle 10s with a 1s threshold");
    let stats = client.stats().unwrap();

    // Scrape between the Stats RPC and any further traffic, so the
    // families and the RPC snapshot describe the same history.
    let (status, body) = http_get(&obs_addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    let families = parse_exposition(&body).expect("exposition validates");

    let ingest_ns = find_family(&families, "adcast_net_ingest_ns").expect("ingest family");
    assert_eq!(
        ingest_ns.sample_value("adcast_net_ingest_ns_count"),
        Some(ingests as f64),
        "ingest histogram count vs scripted ingest RPCs"
    );
    let recommend_ns = find_family(&families, "adcast_net_recommend_ns").expect("recommend family");
    assert_eq!(
        recommend_ns.sample_value("adcast_net_recommend_ns_count"),
        Some(stats.recommends as f64),
        "recommend histogram count vs ServerStats.recommends"
    );
    assert_eq!(stats.recommends, recommends);
    let rpcs = find_family(&families, "adcast_net_rpcs_total").expect("rpcs family");
    assert_eq!(
        rpcs.sample_value("adcast_net_rpcs_total"),
        Some(stats.rpcs as f64),
        "rpcs counter vs ServerStats.rpcs"
    );
    let queue_wait = find_family(&families, "adcast_net_queue_wait_ns").expect("queue family");
    assert_eq!(
        queue_wait.sample_value("adcast_net_queue_wait_ns_count"),
        Some(stats.rpcs as f64),
        "every engine-served RPC gets a queue-wait observation"
    );
    // Maintenance counters agree with the RPC's returned counts, and the
    // pass span recorded exactly one observation.
    let maint_scanned =
        find_family(&families, "adcast_maint_scanned_total").expect("maint scanned family");
    assert_eq!(
        maint_scanned.sample_value("adcast_maint_scanned_total"),
        Some(scanned as f64),
        "scanned counter vs Maintain reply"
    );
    let maint_decayed =
        find_family(&families, "adcast_maint_decayed_total").expect("maint decayed family");
    assert_eq!(
        maint_decayed.sample_value("adcast_maint_decayed_total"),
        Some(decayed as f64),
        "decayed counter vs Maintain reply"
    );
    let maint_pruned =
        find_family(&families, "adcast_maint_pruned_total").expect("maint pruned family");
    assert_eq!(
        maint_pruned.sample_value("adcast_maint_pruned_total"),
        Some(pruned as f64),
        "pruned counter vs Maintain reply"
    );
    let maint_pass = find_family(&families, "adcast_maint_pass_ns").expect("maint span family");
    assert_eq!(
        maint_pass.sample_value("adcast_maint_pass_ns_count"),
        Some(1.0),
        "exactly one maintenance pass ran"
    );
    let p50 = histogram_quantile(recommend_ns, 0.50).unwrap();
    let p99 = histogram_quantile(recommend_ns, 0.99).unwrap();
    assert!(p50 <= p99, "recommend p50 {p50} > p99 {p99}");
    // The bugfixed reaping gauge exists and a live connection keeps it ≥ 1.
    let readers = find_family(&families, "adcast_net_reader_threads").expect("reader gauge");
    assert!(
        readers.sample_value("adcast_net_reader_threads") >= Some(1.0),
        "a connected client must show as a live reader thread"
    );

    let (health_status, health_body) = http_get(&obs_addr, "/healthz").unwrap();
    assert_eq!(health_status, 200);
    assert_eq!(health_body, "ok\n");

    // The ObsDump RPC writes the flight recorder; the scripted admissions
    // must be in it.
    let events = client.obs_dump().expect("obs dump");
    assert!(events > 0, "flight recorder captured nothing");
    let dump = std::fs::read_to_string(&flightrec_path).unwrap();
    assert!(dump.contains("\"event\":\"admission\""), "{dump}");
    assert!(
        dump.contains("\"event\":\"maintenance\""),
        "maintenance pass must leave a flight-recorder event: {dump}"
    );

    client.shutdown().unwrap();
    server.join();

    // After join every reader has exited and decremented the gauge.
    let (_, body) = http_get(&obs_addr, "/metrics").unwrap();
    let families = parse_exposition(&body).expect("exposition validates after shutdown");
    let readers = find_family(&families, "adcast_net_reader_threads").unwrap();
    assert_eq!(
        readers.sample_value("adcast_net_reader_threads"),
        Some(0.0),
        "reader threads must all be reaped after join()"
    );
    // The shutdown path also dumps the ring.
    let dump = std::fs::read_to_string(&flightrec_path).unwrap();
    assert!(dump.contains("\"event\":\"shutdown\""), "{dump}");

    obs.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
