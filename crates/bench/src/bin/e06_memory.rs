//! E6 (Figure/Table): memory footprint by component, vs #ads and #users.
//!
//! Paper shape: the incremental engine's extra state (buffers + bounds)
//! is a small constant per user — far below the feed windows themselves —
//! and the ad index grows linearly in total ad keywords.

use adcast_bench::{fmt_u, Report, Scale};
use adcast_core::runner::EngineKind;
use adcast_core::{Simulation, SimulationConfig};
use adcast_metrics::memory::format_bytes;
use adcast_stream::generator::WorkloadConfig;

fn main() {
    let scale = Scale::from_env();
    let sweeps: &[(u32, usize)] = if scale == Scale::Paper {
        &[
            (2_000, 5_000),
            (10_000, 5_000),
            (50_000, 5_000),
            (10_000, 1_000),
            (10_000, 50_000),
        ]
    } else {
        &[
            (1_000, 2_000),
            (5_000, 2_000),
            (5_000, 500),
            (5_000, 10_000),
        ]
    };
    let messages = scale.pick(5_000, 20_000);

    let mut report = Report::new(
        "E6",
        "memory footprint by component",
        vec![
            "users",
            "ads",
            "cache_cap",
            "graph_B",
            "feeds_B",
            "ad_store_B",
            "engine_B",
            "engine_pretty",
        ],
    );
    let default_cache = adcast_core::EngineConfig::default().cache_capacity;
    let mut runs: Vec<(u32, usize, usize)> =
        sweeps.iter().map(|&(u, a)| (u, a, default_cache)).collect();
    // The space/time knob: cache capacity at the largest sweep point.
    if let Some(&(u, a)) = sweeps.last() {
        runs.push((u, a, 1024));
        runs.push((u, a, 0));
    }
    for (num_users, num_ads, cache_capacity) in runs {
        let mut sim = Simulation::build(SimulationConfig {
            workload: WorkloadConfig {
                num_users,
                ..WorkloadConfig::default()
            },
            num_ads,
            engine_kind: EngineKind::Incremental,
            engine: adcast_core::EngineConfig {
                cache_capacity,
                ..Default::default()
            },
            ..SimulationConfig::default()
        });
        sim.run(messages);
        let engine_bytes = sim.engine().memory_bytes();
        report.row(vec![
            num_users.to_string(),
            num_ads.to_string(),
            cache_capacity.to_string(),
            fmt_u(sim.graph().memory_bytes() as u64),
            fmt_u(sim.delivery().memory_bytes() as u64),
            fmt_u(sim.store().memory_bytes() as u64),
            fmt_u(engine_bytes as u64),
            format_bytes(engine_bytes),
        ]);
    }
    report.finish();
}
