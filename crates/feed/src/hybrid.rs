//! Hybrid push/pull delivery (Silberstein et al., "Feeding Frenzy",
//! SIGMOD 2010 style).
//!
//! Producers with more than `celebrity_threshold` followers are handled
//! pull-side (their posts land in an outbox; O(1) per post no matter how
//! many followers). Everyone else pushes. Reads take the materialized push
//! window and merge in the celebrity outboxes of the followees.
//!
//! This caps write amplification at `threshold` per post while keeping
//! read-side merge work bounded by the (small) number of celebrities a
//! user follows — the classic sweet spot the E8 experiment sweeps.

use std::collections::VecDeque;

use adcast_graph::{SocialGraph, UserId};
use adcast_stream::event::SharedMessage;

use crate::stats::DeliveryStats;
use crate::store::FeedStore;
use crate::window::{FeedDelta, WindowConfig};
use crate::FeedDelivery;

/// Hybrid push/pull delivery.
#[derive(Debug)]
pub struct HybridDelivery {
    store: FeedStore,
    outboxes: Vec<VecDeque<SharedMessage>>,
    window: WindowConfig,
    celebrity_threshold: usize,
    stats: DeliveryStats,
}

impl HybridDelivery {
    /// Create with the given celebrity threshold (in followers).
    pub fn new(num_users: u32, window: WindowConfig, celebrity_threshold: usize) -> Self {
        HybridDelivery {
            store: FeedStore::new(num_users, window),
            outboxes: (0..num_users).map(|_| VecDeque::new()).collect(),
            window,
            celebrity_threshold,
            stats: DeliveryStats::default(),
        }
    }

    /// Is `u` handled pull-side?
    pub fn is_celebrity(&self, graph: &SocialGraph, u: UserId) -> bool {
        graph.in_degree(u) > self.celebrity_threshold
    }

    /// The celebrity threshold.
    pub fn celebrity_threshold(&self) -> usize {
        self.celebrity_threshold
    }

    /// Approximate resident bytes.
    pub fn memory_bytes(&self) -> usize {
        self.store.memory_bytes()
            + self
                .outboxes
                .iter()
                .map(|o| o.capacity() * std::mem::size_of::<SharedMessage>())
                .sum::<usize>()
    }
}

impl FeedDelivery for HybridDelivery {
    fn post(&mut self, graph: &SocialGraph, msg: SharedMessage) -> Vec<(UserId, FeedDelta)> {
        self.stats.posts += 1;
        if self.is_celebrity(graph, msg.author) {
            self.stats.outbox_appends += 1;
            let outbox = &mut self.outboxes[msg.author.index()];
            outbox.push_back(msg);
            while outbox.len() > self.window.capacity {
                outbox.pop_front();
            }
            Vec::new()
        } else {
            let followers = graph.followers(msg.author);
            let mut out = Vec::with_capacity(followers.len() + 1);
            for &f in followers {
                self.stats.push_deliveries += 1;
                out.push((f, self.store.deliver(f, msg.clone())));
            }
            self.stats.push_deliveries += 1;
            out.push((msg.author, self.store.deliver(msg.author, msg.clone())));
            out
        }
    }

    fn read(&mut self, graph: &SocialGraph, user: UserId) -> Vec<SharedMessage> {
        self.stats.reads += 1;
        let mut merged: Vec<SharedMessage> = self.store.window(user).snapshot();
        for &followee in graph.followees(user) {
            if graph.in_degree(followee) > self.celebrity_threshold {
                for m in &self.outboxes[followee.index()] {
                    self.stats.merge_examined += 1;
                    merged.push(m.clone());
                }
            }
        }
        merged.sort_by_key(|m| (m.ts, m.id));
        let keep = self.window.capacity.min(merged.len());
        merged.split_off(merged.len() - keep)
    }

    fn stats(&self) -> &DeliveryStats {
        &self.stats
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcast_graph::GraphBuilder;
    use adcast_stream::clock::Timestamp;
    use adcast_stream::event::{LocationId, Message, MessageId};
    use adcast_text::SparseVector;
    use std::sync::Arc;

    /// User 0 is a celebrity (3 followers), user 1 is not (1 follower).
    fn graph() -> SocialGraph {
        let mut b = GraphBuilder::new(5);
        for u in [2, 3, 4] {
            b.follow(UserId(u), UserId(0));
        }
        b.follow(UserId(2), UserId(1));
        b.build()
    }

    fn msg(id: u64, author: u32, secs: u64) -> SharedMessage {
        Arc::new(Message {
            id: MessageId(id),
            author: UserId(author),
            ts: Timestamp::from_secs(secs),
            location: LocationId(0),
            vector: SparseVector::new(),
        })
    }

    #[test]
    fn celebrity_posts_go_pull_side() {
        let g = graph();
        let mut d = HybridDelivery::new(5, WindowConfig::count(10), 2);
        assert!(d.is_celebrity(&g, UserId(0)));
        assert!(!d.is_celebrity(&g, UserId(1)));
        let deltas = d.post(&g, msg(0, 0, 1));
        assert!(deltas.is_empty(), "celebrity post is an outbox append");
        assert_eq!(d.stats().outbox_appends, 1);
        assert_eq!(d.stats().push_deliveries, 0);
    }

    #[test]
    fn normal_posts_push() {
        let g = graph();
        let mut d = HybridDelivery::new(5, WindowConfig::count(10), 2);
        let deltas = d.post(&g, msg(0, 1, 1));
        // follower 2 + self.
        assert_eq!(deltas.len(), 2);
        assert_eq!(d.stats().push_deliveries, 2);
    }

    #[test]
    fn reads_merge_both_sides_in_order() {
        let g = graph();
        let mut d = HybridDelivery::new(5, WindowConfig::count(10), 2);
        d.post(&g, msg(0, 1, 1)); // pushed to user 2
        d.post(&g, msg(1, 0, 2)); // celebrity outbox
        d.post(&g, msg(2, 1, 3)); // pushed
        let feed = d.read(&g, UserId(2));
        let ids: Vec<_> = feed.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, [0, 1, 2]);
        assert_eq!(
            d.stats().merge_examined,
            1,
            "only the celebrity outbox is merged"
        );
    }

    #[test]
    fn non_follower_sees_no_celebrity_posts() {
        let g = graph();
        let mut d = HybridDelivery::new(5, WindowConfig::count(10), 2);
        d.post(&g, msg(0, 0, 1));
        // User 1 does not follow the celebrity.
        assert!(d.read(&g, UserId(1)).is_empty());
    }

    #[test]
    fn threshold_zero_degenerates_to_pull_for_anyone_with_followers() {
        let g = graph();
        let mut d = HybridDelivery::new(5, WindowConfig::count(10), 0);
        assert!(d.is_celebrity(&g, UserId(1)));
        let deltas = d.post(&g, msg(0, 1, 1));
        assert!(deltas.is_empty());
        let feed = d.read(&g, UserId(2));
        assert_eq!(feed.len(), 1);
    }

    #[test]
    fn huge_threshold_degenerates_to_push() {
        let g = graph();
        let mut d = HybridDelivery::new(5, WindowConfig::count(10), 1000);
        let deltas = d.post(&g, msg(0, 0, 1));
        assert_eq!(deltas.len(), 4, "3 followers + self");
        assert_eq!(d.stats().outbox_appends, 0);
    }

    #[test]
    fn window_cap_respected_across_sides() {
        let g = graph();
        let mut d = HybridDelivery::new(5, WindowConfig::count(2), 2);
        d.post(&g, msg(0, 1, 1));
        d.post(&g, msg(1, 0, 2));
        d.post(&g, msg(2, 1, 3));
        d.post(&g, msg(3, 0, 4));
        let feed = d.read(&g, UserId(2));
        let ids: Vec<_> = feed.iter().map(|m| m.id.0).collect();
        assert_eq!(ids, [2, 3]);
    }
}
