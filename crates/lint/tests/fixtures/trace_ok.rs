//! Fixture: a forwarder that propagates the trace context correctly —
//! it derives a child span for the downstream hop and puts it in the
//! Routed envelope. `trace-propagation` must stay silent.

fn forward(&mut self, inner: &Request, trace: TraceContext) -> Result<Response, WireError> {
    let req = Request::Routed {
        partition: self.partition,
        epoch: self.epoch,
        trace: trace.child(SpanKind::RouterForward, u64::from(self.partition)),
        inner: Box::new(inner.clone()),
    };
    self.client.call(req)
}
