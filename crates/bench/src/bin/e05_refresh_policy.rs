//! E5 (Figure): the staleness/throughput trade-off of lazy refreshing.
//!
//! Sweeps the `Budgeted` slack. Paper shape: refresh counts fall steeply
//! with slack while ranking quality (nDCG vs the exact baseline)
//! declines only gently — the knee justifies the default policy choice.

use std::collections::HashMap;

use adcast_bench::{fmt, fmt_u, Report, Scale};
use adcast_core::runner::EngineKind;
use adcast_core::{EngineConfig, RefreshPolicy, Simulation, SimulationConfig};
use adcast_graph::UserId;
use adcast_metrics::ranking::ndcg;
use adcast_stream::generator::WorkloadConfig;

fn main() {
    let scale = Scale::from_env();
    let slacks: &[Option<f32>] = &[
        None,
        Some(0.1),
        Some(0.25),
        Some(0.5),
        Some(1.0),
        Some(2.0),
        Some(5.0),
    ];
    let messages = scale.pick(3_000, 25_000);
    let num_ads = scale.pick(2_000, 15_000);
    let num_users = scale.pick(800, 4_000);
    let probe_users = scale.pick(150, 800);

    let mut report = Report::new(
        "E5",
        "refresh policy: slack vs refreshes and ranking quality",
        vec![
            "slack",
            "refreshes",
            "refresh_per_delta",
            "ndcg_vs_exact",
            "postings_per_delta",
        ],
    );

    // Exact reference rankings come from the index-scan baseline.
    let build = |policy: RefreshPolicy, kind: EngineKind| {
        Simulation::build(SimulationConfig {
            workload: WorkloadConfig {
                num_users,
                ..WorkloadConfig::default()
            },
            num_ads,
            engine_kind: kind,
            // The refresh policy only matters when certification actually
            // fires: disable the score cache and shrink the buffer so the
            // bound machinery is load-bearing (the cached configuration is
            // ablated in E9).
            engine: EngineConfig {
                refresh: policy,
                cache_capacity: 0,
                buffer_headroom: 2,
                ..EngineConfig::default()
            },
            ..SimulationConfig::default()
        })
    };
    let mut exact = build(RefreshPolicy::Eager, EngineKind::IndexScan);
    exact.run(messages);
    let mut reference: HashMap<UserId, Vec<(adcast_ads::AdId, f64)>> = HashMap::new();
    for u in 0..probe_users {
        let user = UserId(u as u32);
        let recs = exact.recommend(user, 10);
        reference.insert(user, recs.iter().map(|r| (r.ad, r.score as f64)).collect());
    }

    for &slack in slacks {
        let policy = match slack {
            None => RefreshPolicy::Eager,
            Some(s) => RefreshPolicy::Budgeted { slack: s },
        };
        let mut sim = build(policy, EngineKind::Incremental);
        sim.run(messages);
        let mut ndcg_sum = 0.0;
        let mut ndcg_n = 0usize;
        for u in 0..probe_users {
            let user = UserId(u as u32);
            let Some(ref_list) = reference.get(&user) else {
                continue;
            };
            if ref_list.is_empty() {
                continue;
            }
            let gains: HashMap<adcast_ads::AdId, f64> = ref_list.iter().copied().collect();
            let got: Vec<adcast_ads::AdId> = sim.recommend(user, 10).iter().map(|r| r.ad).collect();
            ndcg_sum += ndcg(&got, &gains, 10);
            ndcg_n += 1;
        }
        let stats = sim.engine().stats();
        report.row(vec![
            slack.map_or("eager".to_string(), |s| fmt(s as f64)),
            fmt_u(stats.refreshes),
            fmt(stats.refreshes as f64 / stats.deltas.max(1) as f64),
            fmt(ndcg_sum / ndcg_n.max(1) as f64),
            fmt(stats.postings_scanned as f64 / stats.deltas.max(1) as f64),
        ]);
    }
    report.finish();
}
