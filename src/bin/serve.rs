//! `adcast-serve` — stand up the TCP serving layer.
//!
//! ```text
//! adcast-serve [--addr HOST:PORT] [--users N] [--shards N] [--queue-depth N]
//! ```
//!
//! Binds the listener (port 0 picks an ephemeral port), prints
//! `listening on HOST:PORT` on stdout — scripts parse that line — and
//! serves until a client sends the Shutdown RPC. The engine state starts
//! empty: campaigns arrive via SubmitCampaign and feed state via Ingest.

use std::process::ExitCode;

use adcast::ads::AdStore;
use adcast::core::{EngineConfig, ShardedDriver};
use adcast::net::{Server, ServerConfig};

fn main() -> ExitCode {
    match run(&std::env::args().skip(1).collect::<Vec<_>>()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == name) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{name} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|e| format!("{name}: {e}")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    if args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: adcast-serve [--addr HOST:PORT] [--users N] [--shards N] [--queue-depth N]"
        );
        return Ok(());
    }
    let addr = args
        .iter()
        .position(|a| a == "--addr")
        .and_then(|i| args.get(i + 1))
        .map_or("127.0.0.1:0", String::as_str);
    let users = flag(args, "--users")?.unwrap_or(4_000) as u32;
    let shards = flag(args, "--shards")?.unwrap_or(2) as usize;
    let queue_depth = flag(args, "--queue-depth")?.unwrap_or(64) as usize;

    let driver = ShardedDriver::new(users, shards.max(1), EngineConfig::default());
    let server = Server::start(
        addr,
        ServerConfig {
            queue_depth,
            ..ServerConfig::default()
        },
        AdStore::new(),
        driver,
    )
    .map_err(|e| format!("bind {addr}: {e}"))?;
    // Scripts wait for this exact line to learn the ephemeral port.
    println!("listening on {}", server.addr());
    eprintln!("serving {users} users across {shards} shard(s), queue depth {queue_depth}");
    server.join();
    eprintln!("shut down cleanly");
    Ok(())
}
