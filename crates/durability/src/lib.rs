//! # adcast-durability — WAL, snapshots, and crash recovery
//!
//! The serving engine is a long-lived process whose state (budget spend,
//! pacing, CTR statistics, per-user context) lives in memory; this crate
//! makes that state survive crashes:
//!
//! * [`backend`] — the storage seam: named files + explicit durability
//!   barriers ([`FsBackend`] in production; the simulation harness
//!   substitutes an in-memory backend with fault injection),
//! * [`codec`] — shared length-prefixed record helpers (vectors, feed
//!   deltas, time slots) reused by the `adcast-net` wire codec,
//! * [`record`] — the WAL record vocabulary: every store/engine mutation,
//! * [`wal`] — segmented, CRC-checked write-ahead log with group commit,
//!   configurable fsync policy, rotation, and torn-tail truncation,
//! * [`snapshot`] — versioned, checksummed full-state snapshots written
//!   atomically (tmp + rename) by a background persister thread,
//! * [`apply`] — the one mutation-application path shared by the live
//!   server and recovery replay (what makes replay ≡ original execution),
//! * [`recovery`] — snapshot load (with fallback to older snapshots on
//!   corruption) plus WAL-tail replay,
//! * [`manager`] — the [`Durability`] handle the server drives: log →
//!   commit → apply → ack, periodic snapshot triggering, counters.
//!
//! Everything is std-only and hand-rolled on the `bytes` crate, like the
//! rest of the workspace; no serde formats are available offline.

pub mod apply;
pub mod backend;
pub mod codec;
pub mod crc;
pub mod manager;
pub mod record;
pub mod recovery;
pub mod snapshot;
pub mod wal;

pub use apply::{apply_record, ApplyEffect};
pub use backend::{fs_backend, FsBackend, StorageBackend, StorageFile};
pub use manager::{Durability, DurabilityCounters, DurabilityOptions};
pub use record::WalRecord;
pub use recovery::{recover, recover_on, RecoveredState, RecoveryError, RecoveryReport};
pub use snapshot::EngineSetSnapshot;
pub use wal::{FsyncPolicy, WalError, WalOptions, WalWriter};
