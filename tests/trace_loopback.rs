//! End-to-end distributed-tracing test: a real router, cluster primary,
//! and follower (three "nodes" in one process, over real TCP) serve a
//! routed workload with head sampling on, and every sampled mutation
//! must leave exactly the ack ladder in the span ring — one trace, eight
//! spans, parent-linked in ladder order across all three hops. Also
//! pins `/readyz`: ready while the partition replicates, 503 `degraded`
//! once the follower is gone.
//!
//! This file holds exactly ONE `#[test]`: the trace ring, the metrics
//! registry, and the readiness mask are process-wide by design, so a
//! second concurrent cluster in this binary would interleave spans and
//! break the exact-chain assertions below.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use adcast::ads::AdStore;
use adcast::cluster::{PartitionMap, Router, RouterConfig, TcpSink};
use adcast::core::{EngineConfig, ShardedDriver};
use adcast::durability::{
    fs_backend, Durability, DurabilityOptions, RecoveryReport, StorageBackend, WalOptions,
    WalWriter,
};
use adcast::graph::UserId;
use adcast::net::client::{Client, ClientConfig};
use adcast::net::server::{ClusterConfig, Server, ServerConfig};
use adcast::net::synth::{self, SynthConfig};
use adcast::net::{ClusterState, ReplicaSetup, ReplicationSink};
use adcast::obs::tracestore::{trace_id_for, tracestore, Span, SpanKind};
use adcast::obs::{http_get, ObsServer};

const TRACE_SEED: u64 = 0x51EED;

fn temp_backend(tag: &str) -> Arc<dyn StorageBackend> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "adcast-trace-loop-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    fs_backend(&dir)
}

fn fresh_durability(backend: &Arc<dyn StorageBackend>) -> Durability {
    let wal = WalWriter::create_on(Arc::clone(backend), WalOptions::default(), 0).unwrap();
    Durability::new_on(
        Arc::clone(backend),
        wal,
        DurabilityOptions::default(),
        RecoveryReport::default(),
    )
}

fn cluster_node(
    state: ClusterState,
    sink: Option<Box<dyn ReplicationSink>>,
    backend: &Arc<dyn StorageBackend>,
    num_users: u32,
) -> Server {
    Server::start_cluster(
        "127.0.0.1:0",
        ServerConfig::default(),
        AdStore::new(),
        ShardedDriver::new(num_users, 1, EngineConfig::default()),
        Some(fresh_durability(backend)),
        ClusterConfig {
            state,
            sink,
            replica: Some(ReplicaSetup {
                backend: Arc::clone(backend),
                options: DurabilityOptions::default(),
                engine: EngineConfig::default(),
            }),
        },
    )
    .expect("bind cluster node")
}

/// Follow the parent chain of one trace from its root (parent 0) and
/// return the span kinds in chain order. Panics if the trace is not one
/// unbroken chain — forks, orphans, or a missing root all fail loudly.
fn ladder_kinds(spans: &[Span]) -> Vec<SpanKind> {
    let roots: Vec<&Span> = spans.iter().filter(|s| s.parent_span_id == 0).collect();
    assert_eq!(roots.len(), 1, "one root per trace: {spans:?}");
    let mut kinds = vec![roots[0].kind];
    let mut cur = roots[0].span_id;
    let mut seen = 1usize;
    while seen < spans.len() {
        let next: Vec<&Span> = spans.iter().filter(|s| s.parent_span_id == cur).collect();
        assert_eq!(
            next.len(),
            1,
            "span {cur:#x} must have exactly one child: {spans:?}"
        );
        kinds.push(next[0].kind);
        cur = next[0].span_id;
        seen += 1;
    }
    kinds
}

/// The full routed-mutation ack ladder, in parent-chain order: three
/// processes (router, primary, follower), eight spans.
const MUTATION_LADDER: &[SpanKind] = &[
    SpanKind::RouterForward,
    SpanKind::QueueWait,
    SpanKind::WalCommit,
    SpanKind::EngineApply,
    SpanKind::Replicate,
    SpanKind::QueueWait,
    SpanKind::FollowerCommit,
    SpanKind::FollowerApply,
];

#[test]
fn routed_rpcs_leave_exact_ack_ladder_traces() {
    let workload = synth::build(&SynthConfig {
        num_users: 64,
        num_ads: 16,
        messages: 120,
        batch_size: 60,
        msgs_per_sec: 200.0,
        seed: 7,
    });

    let follower_backend = temp_backend("follower");
    let follower = cluster_node(ClusterState::follower(0, 0), None, &follower_backend, 64);
    let primary_backend = temp_backend("primary");
    let sink: Box<dyn ReplicationSink> = Box::new(TcpSink::new(
        0,
        follower.addr().to_string(),
        ClientConfig::default(),
    ));
    let primary = cluster_node(
        ClusterState::primary(0, 0),
        Some(sink),
        &primary_backend,
        64,
    );

    let map = PartitionMap::parse(&[primary.addr().to_string()]).expect("partition map");
    let router = Router::start(
        "127.0.0.1:0",
        &map,
        RouterConfig {
            trace_sample: 1,
            trace_seed: TRACE_SEED,
            ..RouterConfig::default()
        },
    )
    .expect("bind router");
    let obs = ObsServer::start("127.0.0.1:0", adcast::obs::registry()).expect("bind obs");
    let obs_addr = obs.addr().to_string();

    let mut client = Client::connect(router.addr().to_string(), &ClientConfig::default()).unwrap();
    for spec in &workload.campaigns {
        client.submit_campaign(spec.clone()).unwrap();
    }
    client.ingest(workload.batches[0].clone()).unwrap();
    let user = UserId(0);
    client
        .recommend(user, workload.end_time, workload.homes[0], 5)
        .unwrap();

    // Every RPC above was head-sampled (every=1) with a deterministic
    // id: ordinal 0 was the first campaign submission.
    let store = tracestore();
    assert!(
        !store.trace(trace_id_for(TRACE_SEED, 0)).is_empty(),
        "ordinal 0's trace id must be derivable from (seed, ordinal) alone"
    );

    // Campaign submissions and the ingest are mutations: each must have
    // left the full 8-span, 3-process ladder as one unbroken chain.
    let traces = store.trace_ids();
    let rpcs = workload.campaigns.len() + 2;
    assert_eq!(traces.len(), rpcs, "one trace per sampled RPC: {traces:?}");
    let mut mutations = 0usize;
    let mut recommends = 0usize;
    for (id, _) in &traces {
        let kinds = ladder_kinds(&store.trace(*id));
        if kinds.contains(&SpanKind::Replicate) {
            assert_eq!(kinds, MUTATION_LADDER, "trace {id:#x}");
            mutations += 1;
        } else if kinds.contains(&SpanKind::Recommend) {
            assert_eq!(
                kinds,
                [
                    SpanKind::RouterForward,
                    SpanKind::QueueWait,
                    SpanKind::Recommend
                ],
                "trace {id:#x}"
            );
            recommends += 1;
        }
    }
    assert_eq!(
        mutations,
        workload.campaigns.len() + 1,
        "every submit and the ingest rode the full ladder"
    );
    assert_eq!(recommends, 1);

    // Replication healthy: the node (and so the process) is ready.
    let (status, body) = http_get(&obs_addr, "/readyz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ready\n"));

    // Kill the follower. The next mutation's shipment fails, the primary
    // degrades to local-durable acks (the client still succeeds), and
    // /readyz must flip to 503 with the degraded marker.
    follower.shutdown();
    follower.join();
    client.ingest(workload.batches[1].clone()).unwrap();
    let (status, body) = http_get(&obs_addr, "/readyz").unwrap();
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("degraded"), "{body}");

    client.shutdown().unwrap();
    router.join();
    primary.join();
    obs.stop();
}
