//! CLI for `adcast-lint`.
//!
//! ```text
//! adcast-lint [--workspace-root <dir>] [--rule <name>] [--json] [--list-rules]
//! ```
//!
//! Exits 0 when the tree is clean, 1 when any diagnostic fires, 2 on usage
//! or I/O errors. Diagnostics print as `file:line: [rule] message`.

use std::path::PathBuf;
use std::process::ExitCode;

use adcast_lint::{json_escape, lint_workspace, rules, RULES, SUPPRESSION_RULE};

/// One line per rule: `name  doc`. Shared by `--list-rules` and the
/// unknown-`--rule` error so both always agree with the registry.
fn rule_listing() -> String {
    let mut out = String::new();
    for r in RULES.iter().chain(std::iter::once(&SUPPRESSION_RULE)) {
        out.push_str(&format!("{r:<22} {}\n", rules::rule_doc(r)));
    }
    out
}

struct Args {
    root: PathBuf,
    rule: Option<String>,
    json: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        rule: None,
        json: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace-root" => {
                args.root = PathBuf::from(it.next().ok_or("--workspace-root needs a directory")?);
            }
            "--rule" => {
                let r = it.next().ok_or("--rule needs a rule name")?;
                if !RULES.contains(&r.as_str()) && r != SUPPRESSION_RULE {
                    return Err(format!(
                        "unknown rule `{r}`; known rules:\n{}",
                        rule_listing()
                    ));
                }
                args.rule = Some(r);
            }
            "--json" => args.json = true,
            "--list-rules" => args.list_rules = true,
            "--help" | "-h" => {
                return Err(
                    "usage: adcast-lint [--workspace-root <dir>] [--rule <name>] [--json] \
                     [--list-rules]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("adcast-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        print!("{}", rule_listing());
        return ExitCode::SUCCESS;
    }

    let report = match lint_workspace(&args.root, args.rule.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("adcast-lint: failed to scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.json {
        let mut body = String::from("{\"diagnostics\":[");
        for (i, d) in report.diagnostics.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                json_escape(&d.file),
                d.line,
                d.rule,
                json_escape(&d.message)
            ));
        }
        body.push_str(&format!(
            "],\"files_scanned\":{},\"rules\":{},\"suppressions\":{}}}",
            report.files_scanned,
            report.rule_count(),
            report.suppressions
        ));
        println!("{body}");
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
        eprintln!(
            "adcast-lint: {} file(s) scanned, {} rule(s), {} suppression(s), {} diagnostic(s)",
            report.files_scanned,
            report.rule_count(),
            report.suppressions,
            report.diagnostics.len()
        );
    }

    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
