//! The [`Durability`] handle a serving layer drives.
//!
//! Lifecycle per mutating RPC on the engine thread:
//!
//! ```text
//! validate → log() every record → commit() → apply → ack
//! ```
//!
//! `commit` failing means the records are **not durable** and the caller
//! must refuse the ack (and not apply). Snapshots are taken at batch
//! boundaries: the engine thread serializes a consistent cut (cheap —
//! memory traversal only) and a background persister thread does the
//! slow part: atomic file write, fsync, pruning. [`Durability::checkpoint`]
//! is the synchronous variant behind the `Checkpoint` RPC; periodic
//! snapshots via [`Durability::maybe_snapshot`] are fire-and-forget.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

use adcast_ads::AdStore;
use adcast_core::ShardedDriver;
use adcast_stream::clock::now_ns;
use bytes::Bytes;

use crate::backend::{fs_backend, StorageBackend};
use crate::record::WalRecord;
use crate::recovery::RecoveryReport;
use crate::snapshot::{prune_on, write_snapshot_atomic_on, EngineSetSnapshot, SnapshotError};
use crate::wal::{WalError, WalOptions, WalWriter};

/// Durability subsystem failure, as surfaced to the serving layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum DurabilityError {
    /// The WAL writer failed; logged records are **not durable** and the
    /// caller must refuse the ack.
    Wal(WalError),
    /// A synchronous checkpoint failed to persist its snapshot.
    Snapshot(SnapshotError),
    /// The background persister thread is gone; checkpoints cannot
    /// complete (periodic snapshots degrade to no-ops).
    PersisterDied,
}

impl std::fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurabilityError::Wal(e) => write!(f, "durability wal: {e}"),
            DurabilityError::Snapshot(e) => write!(f, "durability snapshot: {e}"),
            DurabilityError::PersisterDied => write!(f, "snapshot persister died"),
        }
    }
}

impl std::error::Error for DurabilityError {}

impl From<WalError> for DurabilityError {
    fn from(e: WalError) -> Self {
        DurabilityError::Wal(e)
    }
}

impl From<SnapshotError> for DurabilityError {
    fn from(e: SnapshotError) -> Self {
        DurabilityError::Snapshot(e)
    }
}

/// Knobs for the durability subsystem.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityOptions {
    /// WAL writer knobs (fsync policy, segment size).
    pub wal: WalOptions,
    /// Take a background snapshot every this many WAL records
    /// (0 disables periodic snapshots; `Checkpoint` still works).
    pub snapshot_every: u64,
    /// Snapshot files to retain (older ones are pruned after each
    /// successful write). At least 1.
    pub keep_snapshots: usize,
}

impl Default for DurabilityOptions {
    fn default() -> Self {
        DurabilityOptions {
            wal: WalOptions::default(),
            snapshot_every: 0,
            keep_snapshots: 2,
        }
    }
}

/// Counters surfaced through the server's `Stats` RPC.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityCounters {
    /// WAL records appended since startup.
    pub wal_records: u64,
    /// WAL bytes appended (framing included).
    pub wal_bytes: u64,
    /// fsync calls issued by the WAL writer.
    pub wal_fsyncs: u64,
    /// Snapshots successfully persisted since startup.
    pub snapshots_written: u64,
    /// WAL records replayed during startup recovery.
    pub recovered_records: u64,
    /// Torn-tail bytes truncated during startup recovery.
    pub recovered_truncated_bytes: u64,
}

struct SnapshotJob {
    bytes: Bytes,
    next_lsn: u64,
    /// `Some` for a synchronous checkpoint; the persister reports the
    /// outcome (the final file name). `None` for fire-and-forget
    /// periodic snapshots.
    ack: Option<Sender<Result<String, SnapshotError>>>,
}

/// WAL writer + background snapshot persister, owned by the engine
/// thread. Dropping it drains pending snapshot jobs and joins the
/// persister.
pub struct Durability {
    wal: WalWriter,
    options: DurabilityOptions,
    records_since_snapshot: u64,
    snapshots_written: Arc<AtomicU64>,
    report: RecoveryReport,
    job_tx: Option<Sender<SnapshotJob>>,
    persister: Option<JoinHandle<()>>,
}

impl Durability {
    /// Wrap a recovered (or fresh) WAL writer and spawn the persister.
    ///
    /// # Panics
    ///
    /// Panics when `keep_snapshots` is 0 or the persister thread cannot
    /// be spawned.
    pub fn new(
        dir: &Path,
        wal: WalWriter,
        options: DurabilityOptions,
        report: RecoveryReport,
    ) -> Durability {
        Durability::new_on(fs_backend(dir), wal, options, report)
    }

    /// [`Durability::new`] against an explicit [`StorageBackend`] — the
    /// simulation harness hands in its in-memory backend here.
    ///
    /// # Panics
    ///
    /// As [`Durability::new`].
    pub fn new_on(
        backend: Arc<dyn StorageBackend>,
        wal: WalWriter,
        options: DurabilityOptions,
        report: RecoveryReport,
    ) -> Durability {
        assert!(options.keep_snapshots > 0, "must keep at least 1 snapshot");
        let snapshots_written = Arc::new(AtomicU64::new(0));
        let (job_tx, job_rx) = mpsc::channel::<SnapshotJob>();
        let snapshot_write_ns = adcast_obs::registry().hist(
            "adcast_durability_snapshot_write_ns",
            "Background persister time per snapshot (atomic write + fsync).",
        );
        let persister = {
            let written = Arc::clone(&snapshots_written);
            let keep = options.keep_snapshots;
            let snapshot_write_ns = snapshot_write_ns.clone();
            // adcast-lint: allow(no-panic-hot-path) -- one-time startup
            // spawn, documented under "# Panics"; no request is in flight.
            std::thread::Builder::new()
                .name("adcast-persister".to_owned())
                .spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        let started = now_ns();
                        let outcome = write_snapshot_atomic_on(&*backend, job.next_lsn, &job.bytes);
                        snapshot_write_ns.record(now_ns().saturating_sub(started));
                        if outcome.is_ok() {
                            written.fetch_add(1, Ordering::Relaxed);
                            // Pruning failures are not fatal: the snapshot
                            // itself is durable, stale files only waste disk.
                            let _ = prune_on(&*backend, job.next_lsn, keep);
                        }
                        if let Some(ack) = job.ack {
                            let _ = ack.send(outcome);
                        }
                    }
                })
                .expect("spawn persister thread")
        };
        Durability {
            wal,
            options,
            records_since_snapshot: 0,
            snapshots_written,
            report,
            job_tx: Some(job_tx),
            persister: Some(persister),
        }
    }

    /// Append one record (buffered; not durable until [`Self::commit`]).
    /// Returns the record's LSN.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Wal`] on append failures (oversized record or
    /// filesystem trouble).
    pub fn log(&mut self, record: &WalRecord) -> Result<u64, DurabilityError> {
        let lsn = self.wal.append(record)?;
        self.records_since_snapshot += 1;
        Ok(lsn)
    }

    /// Group-commit everything logged since the last commit (one fsync
    /// per policy covers the whole group).
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Wal`] on commit failures — the caller must treat
    /// the logged records as not durable and refuse the ack.
    pub fn commit(&mut self) -> Result<(), DurabilityError> {
        self.wal.commit().map_err(DurabilityError::Wal)
    }

    /// Fire-and-forget a periodic snapshot when `snapshot_every` records
    /// have accumulated since the last one. Returns whether a snapshot
    /// was enqueued. Call between batches — the capture walks live
    /// engine state.
    pub fn maybe_snapshot(&mut self, store: &AdStore, driver: &ShardedDriver) -> bool {
        if self.options.snapshot_every == 0
            || self.records_since_snapshot < self.options.snapshot_every
        {
            return false;
        }
        self.enqueue(store, driver, None);
        true
    }

    /// Synchronously snapshot (the `Checkpoint` RPC): commit the WAL,
    /// capture a cut, and block until the persister reports the file
    /// durable. Returns the snapshot's `next_lsn`.
    ///
    /// # Errors
    ///
    /// [`DurabilityError::Wal`] on commit failures,
    /// [`DurabilityError::Snapshot`] when the snapshot write fails, and
    /// [`DurabilityError::PersisterDied`] when the persister is gone.
    pub fn checkpoint(
        &mut self,
        store: &AdStore,
        driver: &ShardedDriver,
    ) -> Result<u64, DurabilityError> {
        self.wal.commit()?;
        let (ack_tx, ack_rx) = mpsc::channel();
        let next_lsn = self.enqueue(store, driver, Some(ack_tx));
        match ack_rx.recv() {
            Ok(outcome) => outcome.map(|_| next_lsn).map_err(DurabilityError::Snapshot),
            Err(_) => Err(DurabilityError::PersisterDied),
        }
    }

    fn enqueue(
        &mut self,
        store: &AdStore,
        driver: &ShardedDriver,
        ack: Option<Sender<Result<String, SnapshotError>>>,
    ) -> u64 {
        let next_lsn = self.wal.next_lsn();
        let bytes = EngineSetSnapshot::capture(next_lsn, store, driver).encode();
        self.records_since_snapshot = 0;
        let job = SnapshotJob {
            bytes,
            next_lsn,
            ack,
        };
        if let Some(tx) = &self.job_tx {
            let _ = tx.send(job);
        }
        next_lsn
    }

    /// Current counters (WAL side read directly; snapshot side atomic).
    pub fn counters(&self) -> DurabilityCounters {
        DurabilityCounters {
            wal_records: self.wal.records(),
            wal_bytes: self.wal.bytes(),
            wal_fsyncs: self.wal.fsyncs(),
            snapshots_written: self.snapshots_written.load(Ordering::Relaxed),
            recovered_records: self.report.replayed_records,
            recovered_truncated_bytes: self.report.truncated_bytes,
        }
    }

    /// The startup recovery report.
    pub fn recovery_report(&self) -> RecoveryReport {
        self.report
    }

    /// LSN the next logged record will carry.
    pub fn next_lsn(&self) -> u64 {
        self.wal.next_lsn()
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        // Closing the channel lets the persister drain pending jobs and
        // exit; joining bounds shutdown on the last in-flight snapshot.
        drop(self.job_tx.take());
        if let Some(join) = self.persister.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply::apply_record;
    use crate::recovery::recover;
    use crate::snapshot::list_snapshots;
    use crate::wal::FsyncPolicy;
    use adcast_ads::{AdId, AdSubmission, Budget, Targeting};
    use adcast_core::EngineConfig;
    use adcast_feed::FeedDelta;
    use adcast_graph::UserId;
    use adcast_stream::clock::Timestamp;
    use adcast_stream::event::{LocationId, Message, MessageId};
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;
    use std::fs;
    use std::path::PathBuf;
    use std::sync::atomic::AtomicU64 as SeqU64;
    use std::sync::Arc as StdArc;

    fn temp_dir(tag: &str) -> PathBuf {
        static SEQ: SeqU64 = SeqU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "adcast-mgr-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    fn delta(term: u32, secs: u64) -> FeedDelta {
        FeedDelta {
            entered: Some(StdArc::new(Message {
                id: MessageId(secs),
                author: UserId(0),
                ts: Timestamp::from_secs(secs),
                location: LocationId(0),
                vector: v(&[(term, 1.0)]),
            })),
            evicted: vec![],
        }
    }

    fn config() -> EngineConfig {
        EngineConfig {
            half_life: None,
            ..Default::default()
        }
    }

    #[test]
    fn periodic_snapshots_fire_and_prune() {
        let dir = temp_dir("periodic");
        let wal = WalWriter::create(
            &dir,
            WalOptions {
                fsync: FsyncPolicy::Off,
                segment_bytes: 1 << 20,
            },
            0,
        )
        .unwrap();
        let options = DurabilityOptions {
            wal: WalOptions {
                fsync: FsyncPolicy::Off,
                segment_bytes: 1 << 20,
            },
            snapshot_every: 4,
            keep_snapshots: 2,
        };
        let mut durability = Durability::new(&dir, wal, options, RecoveryReport::default());
        let mut store = AdStore::new();
        let mut driver = ShardedDriver::new(4, 1, config());
        store
            .submit(AdSubmission {
                vector: v(&[(0, 1.0)]),
                bid: 1.0,
                targeting: Targeting::everywhere(),
                budget: Budget::unlimited(),
                topic_hint: None,
            })
            .unwrap();

        let mut fired = 0;
        for i in 0..20u64 {
            let record = WalRecord::IngestBatch(vec![(UserId((i % 4) as u32), delta(0, i + 1))]);
            durability.log(&record).unwrap();
            durability.commit().unwrap();
            apply_record(&mut store, &mut driver, record).unwrap();
            if durability.maybe_snapshot(&store, &driver) {
                fired += 1;
            }
        }
        assert_eq!(fired, 5, "every=4 over 20 records");
        drop(durability); // joins the persister: all jobs flushed
        let snapshots = list_snapshots(&dir).unwrap();
        assert_eq!(snapshots.len(), 2, "pruned to keep_snapshots");
        assert_eq!(snapshots.last().unwrap().next_lsn, 20);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_blocks_until_durable_and_recovers() {
        let dir = temp_dir("checkpoint");
        let wal = WalWriter::create(&dir, WalOptions::default(), 0).unwrap();
        let mut durability = Durability::new(
            &dir,
            wal,
            DurabilityOptions::default(),
            RecoveryReport::default(),
        );
        let mut store = AdStore::new();
        let mut driver = ShardedDriver::new(4, 1, config());

        let submit = WalRecord::Submit(AdSubmission {
            vector: v(&[(1, 1.0)]),
            bid: 2.0,
            targeting: Targeting::everywhere(),
            budget: Budget::new(5.0),
            topic_hint: None,
        });
        durability.log(&submit).unwrap();
        durability.commit().unwrap();
        apply_record(&mut store, &mut driver, submit).unwrap();

        let lsn = durability.checkpoint(&store, &driver).unwrap();
        assert_eq!(lsn, 1);
        assert!(dir.join(crate::snapshot::snapshot_file_name(lsn)).exists());
        let counters = durability.counters();
        assert_eq!(counters.wal_records, 1);
        assert_eq!(counters.snapshots_written, 1);
        assert!(counters.wal_fsyncs >= 1);
        drop(durability);

        // A restart from this directory sees the campaign without
        // replaying anything (the checkpoint covers the whole log).
        let recovered = recover(&dir, 4, 1, config(), WalOptions::default()).unwrap();
        assert_eq!(recovered.report.snapshot_lsn, Some(1));
        assert_eq!(recovered.report.replayed_records, 0);
        assert!(recovered.store.campaign(AdId(0)).is_some());
        assert_eq!(recovered.wal.next_lsn(), 1);
        fs::remove_dir_all(&dir).ok();
    }
}
