//! A minimal hand-rolled HTTP/1.1 listener for `GET /metrics` and
//! `GET /healthz`, plus the matching one-shot client the loadgen and
//! `check.sh` use in place of `curl`.
//!
//! This is deliberately not a web server: request parsing stops at the
//! request line, every response closes the connection, and the accept
//! loop polls a nonblocking listener so `stop()` takes effect within one
//! poll interval. Scrapes are rare (seconds apart) and tiny, so none of
//! this is performance-sensitive.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::registry::Registry;

const POLL_INTERVAL: Duration = Duration::from_millis(25);
const IO_TIMEOUT: Duration = Duration::from_secs(2);
/// Largest request head we bother reading before answering.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// A running exposition endpoint. Dropping the handle leaves the thread
/// running until process exit; call [`ObsServer::stop`] for a clean join.
pub struct ObsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl ObsServer {
    /// Bind `addr` (e.g. `127.0.0.1:0`) and serve `reg` until stopped.
    pub fn start(addr: &str, reg: &'static Registry) -> io::Result<ObsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = thread::Builder::new()
            .name("adcast-obs-http".to_string())
            .spawn(move || accept_loop(&listener, reg, &stop_flag))?;
        Ok(ObsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the listener thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, reg: &'static Registry, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => serve_connection(stream, reg),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                thread::sleep(POLL_INTERVAL);
            }
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                thread::sleep(POLL_INTERVAL);
            }
        }
    }
}

fn serve_connection(mut stream: TcpStream, reg: &Registry) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            reg.expose(),
        ),
        ("GET", "/healthz") => ("200 OK", "text/plain; charset=utf-8", "ok\n".to_string()),
        ("GET", _) => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
        _ => (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "method not allowed\n".to_string(),
        ),
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Read up to the end of the request head and return the request line.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 512];
    loop {
        let n = stream.read(&mut chunk).ok()?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    head.lines().next().map(|l| l.to_string())
}

/// Fetch `path` from an HTTP/1.1 server at `addr` and return
/// `(status_code, body)`. The std-only stand-in for `curl` used by the
/// loadgen's `--obs-addr` scrape and the `check.sh` smoke.
pub fn http_get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let sock_addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&sock_addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header/body separator"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;

    #[test]
    fn serves_metrics_healthz_and_404() {
        let c = registry().counter("adcast_test_http_total", "http test counter");
        c.add(3);
        let server = ObsServer::start("127.0.0.1:0", registry()).expect("bind");
        let addr = server.addr().to_string();

        let (status, body) = http_get(&addr, "/healthz").expect("healthz");
        assert_eq!(status, 200);
        assert_eq!(body, "ok\n");

        let (status, body) = http_get(&addr, "/metrics").expect("metrics");
        assert_eq!(status, 200);
        let families = crate::expo::parse_exposition(&body).expect("valid exposition");
        let f = crate::expo::find_family(&families, "adcast_test_http_total").expect("family");
        assert!(f.sample_value("adcast_test_http_total").unwrap() >= 3.0);

        let (status, _) = http_get(&addr, "/nope").expect("404 path");
        assert_eq!(status, 404);

        server.stop();
    }
}
