//! Crash recovery: snapshot load + WAL tail replay.
//!
//! [`recover`] rebuilds a `(AdStore, ShardedDriver)` pair from a data
//! directory:
//!
//! 1. load the newest **valid** snapshot (falling back to older files on
//!    corruption; cold start when none exists),
//! 2. replay every WAL record with `lsn >= snapshot.next_lsn` through
//!    [`crate::apply::apply_record`] — the same code path the live
//!    server took, which is what makes the result bit-identical to an
//!    uninterrupted twin,
//! 3. heal a torn final segment by physically truncating it to its valid
//!    prefix, and hand back a [`wal::WalWriter`] positioned at the next
//!    LSN.
//!
//! Corruption in a *non-final* position (a damaged middle segment, a gap
//! in the LSN sequence between segments) is a hard error: those records
//! were acknowledged durable, so silently skipping them would serve
//! wrong budgets.

use std::fs;
use std::io;
use std::path::Path;
use std::sync::Arc;

use adcast_ads::AdStore;
use adcast_core::{EngineConfig, ShardedDriver};
use adcast_stream::trace::TraceError;

use crate::apply::apply_record;
use crate::backend::{fs_backend, StorageBackend};
use crate::record::WalRecord;
use crate::snapshot::load_latest_on;
use crate::wal::{self, WalError, WalOptions, WalWriter};

/// Why recovery failed.
#[derive(Debug)]
#[non_exhaustive]
pub enum RecoveryError {
    /// Filesystem failure.
    Io(io::Error),
    /// WAL damage that truncation may not heal (non-final segment).
    Wal(WalError),
    /// A CRC-valid record failed to decode — framing and payload disagree.
    Decode {
        /// The record's LSN.
        lsn: u64,
        /// The decode failure.
        error: TraceError,
    },
    /// A decoded record failed to apply (snapshot/WAL mismatch).
    Apply {
        /// The record's LSN.
        lsn: u64,
        /// The application failure.
        error: String,
    },
    /// The snapshot is incompatible with the requested topology, or its
    /// contents fail store validation.
    Snapshot(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::Io(e) => write!(f, "recovery io: {e}"),
            RecoveryError::Wal(e) => write!(f, "recovery wal: {e}"),
            RecoveryError::Decode { lsn, error } => {
                write!(f, "wal record {lsn} failed to decode: {error}")
            }
            RecoveryError::Apply { lsn, error } => {
                write!(f, "wal record {lsn} failed to apply: {error}")
            }
            RecoveryError::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

impl From<io::Error> for RecoveryError {
    fn from(e: io::Error) -> Self {
        RecoveryError::Io(e)
    }
}

impl From<WalError> for RecoveryError {
    fn from(e: WalError) -> Self {
        RecoveryError::Wal(e)
    }
}

impl From<crate::snapshot::SnapshotError> for RecoveryError {
    fn from(e: crate::snapshot::SnapshotError) -> Self {
        match e {
            crate::snapshot::SnapshotError::Io(io) => RecoveryError::Io(io),
            crate::snapshot::SnapshotError::Wal(w) => RecoveryError::Wal(w),
        }
    }
}

/// What recovery did (surfaced through server stats and logs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `next_lsn` of the snapshot used (`None` for a cold start).
    pub snapshot_lsn: Option<u64>,
    /// Newer snapshot files skipped as corrupt before one loaded.
    pub snapshots_skipped: u32,
    /// WAL records replayed on top of the snapshot.
    pub replayed_records: u64,
    /// Torn-tail bytes physically truncated from the final segment.
    pub truncated_bytes: u64,
}

/// A recovered serving state, ready to serve.
pub struct RecoveredState {
    /// The store, replayed to the WAL tip.
    pub store: AdStore,
    /// The sharded engines, replayed to the WAL tip.
    pub driver: ShardedDriver,
    /// A writer positioned at the next LSN (fresh segment).
    pub wal: WalWriter,
    /// What happened.
    pub report: RecoveryReport,
}

/// Rebuild serving state from `dir` (see module docs). An empty or
/// missing directory is a cold start: fresh store, fresh engines, a WAL
/// beginning at LSN 0.
///
/// # Errors
///
/// [`RecoveryError`] — see its variants. Never panics, whatever the
/// directory contains.
pub fn recover(
    dir: &Path,
    num_users: u32,
    num_shards: usize,
    config: EngineConfig,
    options: WalOptions,
) -> Result<RecoveredState, RecoveryError> {
    fs::create_dir_all(dir)?;
    recover_on(fs_backend(dir), num_users, num_shards, config, options)
}

/// [`recover`] against an explicit [`StorageBackend`] — the entry point
/// the simulation harness uses to crash-recover an in-memory data dir.
///
/// # Errors
///
/// As [`recover`].
pub fn recover_on(
    backend: Arc<dyn StorageBackend>,
    num_users: u32,
    num_shards: usize,
    config: EngineConfig,
    options: WalOptions,
) -> Result<RecoveredState, RecoveryError> {
    // 1. Snapshot.
    let loaded = load_latest_on(&*backend)?;
    let mut report = RecoveryReport::default();
    let (mut store, mut driver, replay_from) = match loaded {
        Some((snapshot, skipped_corrupt)) => {
            if snapshot.num_users != num_users || snapshot.num_shards as usize != num_shards {
                return Err(RecoveryError::Snapshot(format!(
                    "snapshot topology is {} users × {} shards, requested {num_users} × {num_shards}",
                    snapshot.num_users, snapshot.num_shards
                )));
            }
            report.snapshot_lsn = Some(snapshot.next_lsn);
            report.snapshots_skipped = skipped_corrupt;
            let store = AdStore::from_snapshot(snapshot.store).map_err(RecoveryError::Snapshot)?;
            let mut driver = ShardedDriver::new(num_users, num_shards, config);
            driver
                .restore_snapshots(&snapshot.engines)
                .map_err(RecoveryError::Snapshot)?;
            (store, driver, snapshot.next_lsn)
        }
        None => (
            AdStore::new(),
            ShardedDriver::new(num_users, num_shards, config),
            0,
        ),
    };

    // 2. WAL tail replay.
    let segments = wal::list_segment_lsns_on(&*backend)?;
    let mut next_lsn = replay_from;
    for (i, &base_lsn) in segments.iter().enumerate() {
        let is_last = i + 1 == segments.len();
        let name = wal::segment_file_name(base_lsn);
        let raw = backend.read(&name).map_err(WalError::Io)?;
        let raw_len = raw.len() as u64;
        let contents = match wal::parse_segment(raw, base_lsn, is_last) {
            Ok(contents) => contents,
            // A *final* segment whose header itself is torn can only be a
            // freshly rotated (or freshly created) segment that crashed
            // before its first commit fsync: any durable record in it
            // would have carried the full header to disk with the same
            // fsync. Nothing in it was ever acked, so drop the file —
            // treating it as damage would brick recovery on a crash
            // window every rotation opens.
            Err(WalError::Header(_)) if is_last => {
                report.truncated_bytes += raw_len;
                backend.remove(&name)?;
                break;
            }
            Err(e) => return Err(e.into()),
        };
        // Cross-segment continuity: every record up to the next segment's
        // base must be present — a short non-final segment that happens to
        // end exactly at a record boundary still lost durable records.
        if let Some(&next_base) = segments.get(i + 1) {
            let end = base_lsn + contents.records.len() as u64;
            if end != next_base {
                return Err(RecoveryError::Wal(WalError::Corrupt {
                    segment: base_lsn,
                    offset: contents.valid_len,
                    what: "segment ends before the next segment's base lsn",
                }));
            }
        }
        // Records below replay_from are already covered by the snapshot
        // but still advance the LSN cursor past them.
        next_lsn = next_lsn.max(base_lsn + contents.records.len() as u64);
        for (lsn, payload) in contents.records {
            if lsn < replay_from {
                continue;
            }
            let record =
                WalRecord::decode(payload).map_err(|error| RecoveryError::Decode { lsn, error })?;
            apply_record(&mut store, &mut driver, record)
                .map_err(|error| RecoveryError::Apply { lsn, error })?;
            report.replayed_records += 1;
        }
        // 3. Heal the torn tail so the next open sees a clean log.
        if is_last && contents.truncated_bytes > 0 {
            report.truncated_bytes = contents.truncated_bytes;
            backend.truncate(&wal::segment_file_name(base_lsn), contents.valid_len)?;
        }
    }

    let wal = WalWriter::create_on(backend, options, next_lsn)?;
    Ok(RecoveredState {
        store,
        driver,
        wal,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::WalRecord;
    use adcast_ads::{AdSubmission, Budget, Targeting};
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "adcast-rec-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn torn_final_segment_header_is_dropped_not_fatal() {
        let dir = temp_dir("torn-header");
        let mut wal = WalWriter::create(&dir, WalOptions::default(), 0).unwrap();
        wal.append(&WalRecord::Submit(AdSubmission {
            vector: SparseVector::from_pairs([(TermId(1), 1.0)]),
            bid: 1.0,
            targeting: Targeting::everywhere(),
            budget: Budget::unlimited(),
            topic_hint: None,
        }))
        .unwrap();
        wal.commit().unwrap();
        drop(wal);

        // A crash right after rotation can leave the next segment with a
        // half-written header: the file name is durable (sync_dir) but no
        // content fsync ever covered it.
        let torn = dir.join(wal::segment_file_name(1));
        let mut f = fs::File::create(&torn).unwrap();
        f.write_all(&wal::WAL_MAGIC[..2]).unwrap();
        drop(f);

        let recovered = recover(
            &dir,
            4,
            1,
            adcast_core::EngineConfig::default(),
            WalOptions::default(),
        )
        .unwrap();
        assert_eq!(recovered.report.replayed_records, 1);
        assert_eq!(recovered.report.truncated_bytes, 2);
        assert_eq!(recovered.wal.next_lsn(), 1);
        assert!(recovered.store.campaign(adcast_ads::AdId(0)).is_some());
        // The returned writer recreated the segment with an intact header.
        assert_eq!(fs::metadata(&torn).unwrap().len(), wal::SEGMENT_HEADER);
        fs::remove_dir_all(&dir).ok();
    }
}
