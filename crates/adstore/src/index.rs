//! Inverted index over ad keyword vectors.
//!
//! For every term the index keeps the posting list of `(ad, weight)`
//! pairs, sorted by ad id, plus the **maximum weight** in the list. The
//! max-weights are the upper-bound metadata that powers both baselines and
//! the incremental engine:
//!
//! * WAND-style re-evaluation bounds a candidate's score by
//!   `Σ_term ctx_weight(term) · max_weight(term)`,
//! * the incremental engine screens buffer promotions: an untouched ad's
//!   score can only have increased by `Σ_{t ∈ Δ⁺} Δ(t) · max_weight(t)`.
//!
//! Removals are tombstone-free: the posting list is compacted immediately
//! (campaign churn is orders of magnitude rarer than scoring), and the max
//! weight is recomputed on the spot.

use std::collections::HashMap;

use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;

use crate::ad::AdId;

/// One entry in a posting list.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posting {
    /// The ad containing the term.
    pub ad: AdId,
    /// The ad vector's weight for the term.
    pub weight: f32,
}

#[derive(Debug, Default, Clone)]
struct TermPostings {
    /// Sorted by ad id.
    list: Vec<Posting>,
    /// `max(list.weight)`; 0.0 when empty.
    max_weight: f32,
}

impl TermPostings {
    fn recompute_max(&mut self) {
        self.max_weight = self.list.iter().map(|p| p.weight).fold(0.0, f32::max);
    }
}

/// The inverted index over ads.
#[derive(Debug, Default, Clone)]
pub struct AdIndex {
    postings: HashMap<TermId, TermPostings>,
    num_ads: usize,
    num_postings: usize,
}

impl AdIndex {
    /// An empty index.
    pub fn new() -> Self {
        AdIndex::default()
    }

    /// Index `ad`'s vector. The caller guarantees the id is not already
    /// present (the store enforces this).
    pub fn insert(&mut self, ad: AdId, vector: &SparseVector) {
        for (term, weight) in vector.iter() {
            let tp = self.postings.entry(term).or_default();
            let pos = tp.list.partition_point(|p| p.ad < ad);
            debug_assert!(
                pos >= tp.list.len() || tp.list[pos].ad != ad,
                "ad {ad:?} already indexed under {term:?}"
            );
            tp.list.insert(pos, Posting { ad, weight });
            if weight > tp.max_weight {
                tp.max_weight = weight;
            }
            self.num_postings += 1;
        }
        self.num_ads += 1;
    }

    /// Remove `ad`'s postings (vector must be the one it was inserted
    /// with). Returns the number of postings removed.
    pub fn remove(&mut self, ad: AdId, vector: &SparseVector) -> usize {
        let mut removed = 0;
        for (term, _) in vector.iter() {
            if let Some(tp) = self.postings.get_mut(&term) {
                if let Ok(pos) = tp.list.binary_search_by_key(&ad, |p| p.ad) {
                    let gone = tp.list.remove(pos);
                    removed += 1;
                    self.num_postings -= 1;
                    // Only a departing maximum forces a rescan.
                    if gone.weight >= tp.max_weight {
                        tp.recompute_max();
                    }
                }
                if tp.list.is_empty() {
                    self.postings.remove(&term);
                }
            }
        }
        if removed > 0 {
            self.num_ads -= 1;
        }
        removed
    }

    /// The posting list for `term` (sorted by ad id; empty slice if the
    /// term is unknown).
    pub fn postings(&self, term: TermId) -> &[Posting] {
        self.postings
            .get(&term)
            .map_or(&[], |tp| tp.list.as_slice())
    }

    /// The maximum term weight across ads containing `term`.
    pub fn max_weight(&self, term: TermId) -> f32 {
        self.postings.get(&term).map_or(0.0, |tp| tp.max_weight)
    }

    /// Upper bound on `vector · ad_vector` over **all** indexed ads:
    /// `Σ_t |v(t)| · max_weight(t)`.
    pub fn score_upper_bound(&self, vector: &SparseVector) -> f32 {
        vector
            .iter()
            .map(|(t, w)| w.abs() * self.max_weight(t))
            .sum()
    }

    /// Number of indexed ads.
    pub fn num_ads(&self) -> usize {
        self.num_ads
    }

    /// Total postings across all terms.
    pub fn num_postings(&self) -> usize {
        self.num_postings
    }

    /// Number of distinct terms with non-empty posting lists.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Approximate resident bytes.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.postings.capacity()
                * (std::mem::size_of::<TermId>() + std::mem::size_of::<TermPostings>())
            + self
                .postings
                .values()
                .map(|tp| tp.list.capacity() * std::mem::size_of::<Posting>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    #[test]
    fn insert_builds_sorted_postings() {
        let mut idx = AdIndex::new();
        idx.insert(AdId(2), &v(&[(1, 0.5), (2, 0.3)]));
        idx.insert(AdId(0), &v(&[(1, 0.9)]));
        idx.insert(AdId(1), &v(&[(2, 0.7)]));
        let p1 = idx.postings(TermId(1));
        assert_eq!(p1.len(), 2);
        assert_eq!(p1[0].ad, AdId(0));
        assert_eq!(p1[1].ad, AdId(2));
        assert_eq!(idx.max_weight(TermId(1)), 0.9);
        assert_eq!(idx.max_weight(TermId(2)), 0.7);
        assert_eq!(idx.num_ads(), 3);
        assert_eq!(idx.num_postings(), 4);
        assert_eq!(idx.num_terms(), 2);
    }

    #[test]
    fn unknown_term_is_empty() {
        let idx = AdIndex::new();
        assert!(idx.postings(TermId(9)).is_empty());
        assert_eq!(idx.max_weight(TermId(9)), 0.0);
    }

    #[test]
    fn remove_compacts_and_fixes_max() {
        let mut idx = AdIndex::new();
        let va = v(&[(1, 0.9), (2, 0.2)]);
        let vb = v(&[(1, 0.5)]);
        idx.insert(AdId(0), &va);
        idx.insert(AdId(1), &vb);
        assert_eq!(idx.remove(AdId(0), &va), 2);
        assert_eq!(
            idx.max_weight(TermId(1)),
            0.5,
            "max recomputed after top removal"
        );
        assert!(
            idx.postings(TermId(2)).is_empty(),
            "empty lists are dropped"
        );
        assert_eq!(idx.num_ads(), 1);
        assert_eq!(idx.num_postings(), 1);
    }

    #[test]
    fn remove_nonmax_keeps_max() {
        let mut idx = AdIndex::new();
        idx.insert(AdId(0), &v(&[(1, 0.9)]));
        idx.insert(AdId(1), &v(&[(1, 0.5)]));
        idx.remove(AdId(1), &v(&[(1, 0.5)]));
        assert_eq!(idx.max_weight(TermId(1)), 0.9);
    }

    #[test]
    fn remove_absent_ad_is_noop() {
        let mut idx = AdIndex::new();
        idx.insert(AdId(0), &v(&[(1, 0.9)]));
        assert_eq!(idx.remove(AdId(5), &v(&[(1, 0.9)])), 0);
        assert_eq!(idx.num_ads(), 1);
    }

    #[test]
    fn upper_bound_dominates_every_ad() {
        let mut idx = AdIndex::new();
        let ads = [
            v(&[(1, 0.8), (3, 0.6)]),
            v(&[(1, 0.4), (2, 0.9)]),
            v(&[(3, 0.99)]),
        ];
        for (i, a) in ads.iter().enumerate() {
            idx.insert(AdId(i as u32), a);
        }
        let ctx = v(&[(1, 0.5), (2, 0.5), (3, 0.5)]);
        let ub = idx.score_upper_bound(&ctx);
        for a in &ads {
            assert!(ub >= ctx.dot(a) - 1e-6, "ub {ub} < dot {}", ctx.dot(a));
        }
    }

    #[test]
    fn reinsert_after_remove() {
        let mut idx = AdIndex::new();
        let va = v(&[(1, 0.9)]);
        idx.insert(AdId(0), &va);
        idx.remove(AdId(0), &va);
        idx.insert(AdId(0), &v(&[(1, 0.3)]));
        assert_eq!(idx.max_weight(TermId(1)), 0.3);
        assert_eq!(idx.num_ads(), 1);
    }

    #[test]
    fn memory_grows_with_postings() {
        let mut idx = AdIndex::new();
        let before = idx.memory_bytes();
        for i in 0..50 {
            idx.insert(AdId(i), &v(&[(i, 0.5), (i + 1, 0.5)]));
        }
        assert!(idx.memory_bytes() > before);
    }
}
