//! # adcast-text — text-processing substrate for `adcast`
//!
//! Everything needed to turn raw microblog text (tweets, ad copy) into the
//! weighted sparse term vectors consumed by the recommendation engines:
//!
//! * [`normalize`] — lossy ASCII-folding normalization tuned for social text,
//! * [`tokenizer`] — tweet-aware tokenization (mentions, hashtags, URLs),
//! * [`stopwords`] — embedded English stop-word list with user extensions,
//! * [`stemmer`] — a from-scratch Porter stemmer,
//! * [`dictionary`] — term interning and corpus document-frequency statistics,
//! * [`ngrams`] — bigram phrase features and PMI collocation statistics,
//! * [`tfidf`] — TF and IDF weighting schemes (including BM25 saturation),
//! * [`sparse`] — sorted sparse vectors with the kernel operations used by
//!   the scoring engines (dot, cosine, axpy-style merges, deltas),
//! * [`kernels`] — chunked autovectorization-friendly loops over the
//!   blocked ad index's SoA posting lanes (scale, block max),
//! * [`pipeline`] — the end-to-end analyzer gluing the stages together.
//!
//! The crate is dependency-free (std only) because no NLP crates are
//! available in the offline registry; see `DESIGN.md` §2.
//!
//! ## Example
//!
//! ```
//! use adcast_text::pipeline::TextPipeline;
//!
//! let mut pipeline = TextPipeline::standard();
//! let vector = pipeline.index_document("Running shoes and RUNNING gear! #running");
//! // "and" is a stop word; "running"/"RUNNING"/#running stem to "run".
//! assert_eq!(vector.len(), 3); // run, shoe, gear
//! ```

pub mod dictionary;
pub mod kernels;
pub mod ngrams;
pub mod normalize;
pub mod pipeline;
pub mod sparse;
pub mod stemmer;
pub mod stopwords;
pub mod tfidf;
pub mod tokenizer;

pub use dictionary::{Dictionary, TermId};
pub use pipeline::{PipelineConfig, TextPipeline};
pub use sparse::{ScratchSpace, SparseVector};
pub use tfidf::{IdfScheme, TfScheme, WeightingConfig};
