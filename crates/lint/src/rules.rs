//! The rule implementations. Each rule is a pure function from a
//! [`FileAnalysis`] to diagnostics; path gating lives in [`crate::config`]
//! so a fixture can be linted "as if" it were a hot-path file.

use crate::analysis::{matching_close, Directive, FileAnalysis};
use crate::config;
use crate::context::Workspace;
use crate::lexer::TokKind;
use crate::Diagnostic;

pub const UNSAFE_NEEDS_SAFETY: &str = "unsafe-needs-safety";
pub const NO_PANIC_HOT_PATH: &str = "no-panic-hot-path";
pub const NO_ALLOC_STEADY_STATE: &str = "no-alloc-steady-state";
pub const WAL_ORDERING: &str = "wal-ordering";
pub const ERROR_HYGIENE: &str = "error-hygiene";
pub const NO_LOCK_IN_RECORD: &str = "no-lock-in-record";
pub const NO_WALLCLOCK: &str = "no-wallclock";
pub const RPC_EXHAUSTIVE: &str = "rpc-exhaustive";
pub const ACK_LADDER: &str = "ack-ladder";
pub const TRACE_PROPAGATION: &str = "trace-propagation";
pub const LOCK_DISCIPLINE: &str = "lock-discipline";
pub const BOUNDED_CHANNEL: &str = "bounded-channel";

/// One-line documentation per rule, in [`crate::RULES`] order plus the
/// suppression meta-rule; `--list-rules` prints this table and the DESIGN
/// §10 drift test diffs it against the documented rule table.
pub const RULE_DOCS: &[(&str, &str)] = &[
    (
        UNSAFE_NEEDS_SAFETY,
        "every `unsafe` needs an immediately preceding `// SAFETY:` comment",
    ),
    (
        NO_PANIC_HOT_PATH,
        "no unwrap/expect/panic!-family (and, in the strict set, no bare indexing) on hot-path files",
    ),
    (
        NO_ALLOC_STEADY_STATE,
        "fns marked `// adcast-lint: zero-alloc` may not allocate; scratch reuse only",
    ),
    (
        WAL_ORDERING,
        "mutation handlers WAL-commit before they apply to the store",
    ),
    (
        ERROR_HYGIENE,
        "public fallible APIs return typed errors and pub error enums are #[non_exhaustive]",
    ),
    (
        NO_LOCK_IN_RECORD,
        "obs record paths stay lock-free (atomics only)",
    ),
    (
        NO_WALLCLOCK,
        "simulated crates read time via adcast_stream::clock, never Instant/SystemTime::now()",
    ),
    (
        RPC_EXHAUSTIVE,
        "every protocol Request/Response variant is handled at each codec/dispatch/router site",
    ),
    (
        ACK_LADDER,
        "replication-path fns keep their configured token order (commit -> apply -> replicate -> ack)",
    ),
    (
        TRACE_PROPAGATION,
        "trace-context plumbing sites (codec envelope, router forward, server dispatch, replication) keep the context flowing",
    ),
    (
        LOCK_DISCIPLINE,
        "no blocking calls or undeclared nested locks while a lock guard is live",
    ),
    (
        BOUNDED_CHANNEL,
        "serving crates use mpsc::sync_channel, never unbounded mpsc::channel()",
    ),
    (
        crate::SUPPRESSION_RULE,
        "pragma hygiene: allow() needs a known rule, a reason, and must suppress something",
    ),
];

/// The one-line doc for `name` (empty for unknown names).
pub fn rule_doc(name: &str) -> &'static str {
    RULE_DOCS
        .iter()
        .find(|(n, _)| *n == name)
        .map_or("", |(_, d)| d)
}

fn diag(fa: &FileAnalysis, line: u32, rule: &'static str, message: String) -> Diagnostic {
    Diagnostic {
        file: fa.rel_path.clone(),
        line,
        rule,
        message,
    }
}

/// Rule 1: every `unsafe` keyword (block, fn, impl) must be immediately
/// preceded by a `// SAFETY:` comment — attributes may sit between, blank
/// lines may not. Applies to every file, test code included: unsoundness in
/// tests is still unsoundness.
pub fn unsafe_needs_safety(fa: &FileAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for t in &fa.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let mut l = t.line.saturating_sub(1);
        let mut ok = false;
        while l > 0 {
            if let Some(c) = fa.comment_on(l) {
                if c.text.contains("SAFETY:") {
                    ok = true;
                    break;
                }
                l = c.line.saturating_sub(1);
            } else if fa.attr_lines.binary_search(&l).is_ok() {
                l -= 1;
            } else {
                break;
            }
        }
        if !ok {
            out.push(diag(
                fa,
                t.line,
                UNSAFE_NEEDS_SAFETY,
                "`unsafe` without an immediately preceding `// SAFETY:` comment".to_string(),
            ));
        }
    }
    out
}

/// Rule 2: no panicking constructs in the configured hot-path modules
/// (outside `#[cfg(test)]`). A narrower sub-set of files also bans bare
/// slice indexing in favour of `.get()`.
pub fn no_panic_hot_path(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::is_hot_path(&fa.rel_path) {
        return Vec::new();
    }
    let index_checked = config::is_index_checked(&fa.rel_path);
    let mut out = Vec::new();
    for (i, t) in fa.tokens.iter().enumerate() {
        if fa.in_test[i] {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &fa.tokens[p]);
        let next = fa.tokens.get(i + 1);
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "unwrap" | "expect")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
        {
            out.push(diag(
                fa,
                t.line,
                NO_PANIC_HOT_PATH,
                format!(
                    "`.{}()` on a hot path; return a typed error instead",
                    t.text
                ),
            ));
            continue;
        }
        if t.kind == TokKind::Ident
            && matches!(
                t.text.as_str(),
                "panic" | "unimplemented" | "todo" | "unreachable"
            )
            && next.is_some_and(|n| n.is_punct('!'))
        {
            out.push(diag(
                fa,
                t.line,
                NO_PANIC_HOT_PATH,
                format!("`{}!` on a hot path; return a typed error instead", t.text),
            ));
            continue;
        }
        if index_checked
            && t.is_punct('[')
            && prev.is_some_and(|p| p.kind == TokKind::Ident || p.is_punct(')') || p.is_punct(']'))
        {
            out.push(diag(
                fa,
                t.line,
                NO_PANIC_HOT_PATH,
                "bare slice index on a hot path; use `.get()` and handle `None`".to_string(),
            ));
        }
    }
    out
}

/// Rule 3: a fn marked `// adcast-lint: zero-alloc` may not allocate.
/// Scratch re-use is the sanctioned pattern: pushes are allowed only when
/// the receiver chain goes through `scratch` or a local taken from
/// `self.scratch` via `mem::take`. This is the static complement to the
/// `debug-stats` counting-allocator test (which proves the property
/// dynamically for the inputs it runs).
pub fn no_alloc_steady_state(fa: &FileAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for p in &fa.pragmas {
        if !matches!(p.directive, Directive::ZeroAlloc) {
            continue;
        }
        let Some(f) = fa
            .fns
            .iter()
            .filter(|f| f.line > p.line && f.body_open.is_some())
            .min_by_key(|f| f.line)
        else {
            out.push(diag(
                fa,
                p.line,
                NO_ALLOC_STEADY_STATE,
                "zero-alloc marker is not followed by a function with a body".to_string(),
            ));
            continue;
        };
        let (open, close) = (f.body_open.unwrap_or(0), f.body_close.unwrap_or(0));
        check_zero_alloc_body(fa, open + 1, close, &f.name, &mut out);
    }
    out
}

fn check_zero_alloc_body(
    fa: &FileAnalysis,
    start: usize,
    end: usize,
    fn_name: &str,
    out: &mut Vec<Diagnostic>,
) {
    // Locals bound from `... = std::mem::take(&mut self.scratch.<field>)`.
    let mut scratch_locals: Vec<&str> = Vec::new();
    for i in start..end {
        let t = &fa.tokens[i];
        if !t.is_ident("take") || !fa.tokens.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let has_mem = (i.saturating_sub(4)..i).any(|j| fa.tokens[j].is_ident("mem"));
        if !has_mem {
            continue;
        }
        let Some(close) = matching_close(&fa.tokens, i + 1) else {
            continue;
        };
        let takes_scratch = fa.tokens[i + 1..close]
            .iter()
            .any(|t| t.is_ident("scratch"));
        if !takes_scratch {
            continue;
        }
        // Walk back over the `std::mem::take` chain to the `=`, then the
        // binding name sits just before it.
        let mut j = i;
        while j > start {
            let prev = &fa.tokens[j - 1];
            if prev.is_punct(':') || prev.is_punct('.') || prev.kind == TokKind::Ident {
                j -= 1;
            } else {
                break;
            }
        }
        if j > start && fa.tokens[j - 1].is_punct('=') && j >= 2 {
            let name = &fa.tokens[j - 2];
            if name.kind == TokKind::Ident {
                scratch_locals.push(name.text.as_str());
            }
        }
    }

    for i in start..end {
        let t = &fa.tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &fa.tokens[p]);
        let next = fa.tokens.get(i + 1);
        let called = next.is_some_and(|n| n.is_punct('(') || n.is_punct(':'));

        // `Vec::new` / `Box::new` / `String::new` and friends, with or
        // without a turbofish (`Vec::<u32>::new`).
        if matches!(
            t.text.as_str(),
            "Vec" | "Box" | "String" | "HashMap" | "BTreeMap"
        ) && fa.tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && fa.tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
        {
            let mut m = i + 3;
            if fa.tokens.get(m).is_some_and(|x| x.is_punct('<')) {
                let mut angle = 0i64;
                while let Some(x) = fa.tokens.get(m) {
                    if x.is_punct('<') {
                        angle += 1;
                    } else if x.is_punct('>') {
                        angle -= 1;
                        if angle == 0 {
                            m += 1;
                            break;
                        }
                    }
                    m += 1;
                }
                // Expect `::` after the closing `>`.
                if fa.tokens.get(m).is_some_and(|x| x.is_punct(':'))
                    && fa.tokens.get(m + 1).is_some_and(|x| x.is_punct(':'))
                {
                    m += 2;
                } else {
                    m = usize::MAX;
                }
            }
            let ctor = fa
                .tokens
                .get(m.min(fa.tokens.len()))
                .filter(|c| c.is_ident("new") || c.is_ident("from") || c.is_ident("with_capacity"));
            if let Some(ctor) = ctor {
                out.push(diag(
                    fa,
                    t.line,
                    NO_ALLOC_STEADY_STATE,
                    format!(
                        "`{}::{}` allocates inside zero-alloc fn `{fn_name}`",
                        t.text, ctor.text
                    ),
                ));
                continue;
            }
        }
        // `vec![...]` / `format!(...)`.
        if matches!(t.text.as_str(), "vec" | "format") && next.is_some_and(|n| n.is_punct('!')) {
            out.push(diag(
                fa,
                t.line,
                NO_ALLOC_STEADY_STATE,
                format!("`{}!` allocates inside zero-alloc fn `{fn_name}`", t.text),
            ));
            continue;
        }
        // Allocating method calls.
        if matches!(
            t.text.as_str(),
            "to_vec" | "collect" | "clone" | "to_owned" | "to_string"
        ) && prev.is_some_and(|p| p.is_punct('.'))
            && called
        {
            out.push(diag(
                fa,
                t.line,
                NO_ALLOC_STEADY_STATE,
                format!("`.{}()` allocates inside zero-alloc fn `{fn_name}`", t.text),
            ));
            continue;
        }
        // `push` is allowed only onto scratch-owned storage (capacity is
        // retained across deltas, so steady-state pushes do not allocate).
        if t.is_ident("push")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
        {
            let mut chain: Vec<&str> = Vec::new();
            let mut j = i - 1; // the `.`
            while j >= 1 && fa.tokens[j].is_punct('.') && fa.tokens[j - 1].kind == TokKind::Ident {
                chain.push(fa.tokens[j - 1].text.as_str());
                if j < 2 {
                    break;
                }
                j -= 2;
            }
            // `chain` reads receiver-outward: `self.scratch.promote.push`
            // yields ["promote", "scratch", "self"].
            let allowed = chain.iter().any(|n| n.contains("scratch"))
                || chain
                    .first()
                    .is_some_and(|recv| scratch_locals.contains(recv));
            if !allowed {
                out.push(diag(
                    fa,
                    t.line,
                    NO_ALLOC_STEADY_STATE,
                    format!(
                        "`.push()` onto non-scratch storage `{}` inside zero-alloc fn `{fn_name}`",
                        chain.first().copied().unwrap_or("<expr>")
                    ),
                ));
            }
        }
    }
}

/// Rule 4: in mutation handlers, the WAL commit must happen before the store
/// apply. Token-order check: within any fn body that mentions
/// `apply_record`, a `commit(` call must appear earlier in the body.
pub fn wal_ordering(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::wants_wal_ordering(&fa.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &fa.fns {
        let (Some(open), Some(close)) = (f.body_open, f.body_close) else {
            continue;
        };
        if fa.in_test[open] {
            continue;
        }
        let apply_at = (open + 1..close).find(|&i| fa.tokens[i].is_ident("apply_record"));
        let Some(apply_at) = apply_at else {
            continue;
        };
        let commit_before = (open + 1..apply_at).any(|i| {
            fa.tokens[i].is_ident("commit") && fa.tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        });
        if !commit_before {
            out.push(diag(
                fa,
                fa.tokens[apply_at].line,
                WAL_ORDERING,
                format!(
                    "`apply_record` in `{}` without a preceding WAL `commit()`: \
                     durable order is validate-log-commit-apply-ack",
                    f.name
                ),
            ));
        }
    }
    out
}

/// Rule 5: public fallible APIs in `net`/`durability` return the crate's
/// typed error, never `io::Result`/`io::Error` directly; and public error
/// enums are `#[non_exhaustive]` so adding a variant is not a breaking
/// change downstream.
pub fn error_hygiene(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::wants_error_hygiene(&fa.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for f in &fa.fns {
        if !f.is_pub || fa.in_test[f.fn_idx] {
            continue;
        }
        let Some((rs, re)) = f.ret else {
            continue;
        };
        let mentions_io = (rs..re.saturating_sub(2)).any(|i| {
            fa.tokens[i].is_ident("io")
                && fa.tokens[i + 1].is_punct(':')
                && fa.tokens[i + 2].is_punct(':')
                && fa
                    .tokens
                    .get(i + 3)
                    .is_some_and(|t| t.is_ident("Result") || t.is_ident("Error"))
        });
        if mentions_io {
            out.push(diag(
                fa,
                f.line,
                ERROR_HYGIENE,
                format!(
                    "pub fn `{}` returns `io::Error` directly; wrap it in the crate's typed error",
                    f.name
                ),
            ));
        }
    }
    // `pub enum <Name>Error` must carry #[non_exhaustive].
    for (i, t) in fa.tokens.iter().enumerate() {
        if !t.is_ident("enum") || fa.in_test[i] {
            continue;
        }
        if !i
            .checked_sub(1)
            .is_some_and(|p| fa.tokens[p].is_ident("pub"))
        {
            continue; // private or restricted visibility
        }
        let Some(name) = fa.tokens.get(i + 1) else {
            continue;
        };
        if name.kind != TokKind::Ident || !name.text.ends_with("Error") {
            continue;
        }
        if !has_non_exhaustive_attr(fa, i - 1) {
            out.push(diag(
                fa,
                t.line,
                ERROR_HYGIENE,
                format!(
                    "pub error enum `{}` is not `#[non_exhaustive]`; adding a variant would \
                     break downstream matches",
                    name.text
                ),
            ));
        }
    }
    out
}

/// Rule 6: the obs record paths must stay lock-free. A metric handle or the
/// flight recorder is hit from every serving thread — the accept loop, each
/// reader, the engine, the durability persister — and from inside the
/// zero-alloc engine kernel, so a lock here would serialize the very paths
/// the telemetry exists to measure. Bans lock type names (`Mutex`,
/// `RwLock`) and `.lock()` calls outside `#[cfg(test)]`.
pub fn no_lock_in_record(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::wants_no_lock(&fa.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in fa.tokens.iter().enumerate() {
        if fa.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "Mutex" | "RwLock") {
            out.push(diag(
                fa,
                t.line,
                NO_LOCK_IN_RECORD,
                format!(
                    "`{}` in an obs record path; recording must stay lock-free (atomics only)",
                    t.text
                ),
            ));
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &fa.tokens[p]);
        let next = fa.tokens.get(i + 1);
        if t.is_ident("lock")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
        {
            out.push(diag(
                fa,
                t.line,
                NO_LOCK_IN_RECORD,
                "`.lock()` in an obs record path; recording must stay lock-free (atomics only)"
                    .to_string(),
            ));
        }
    }
    out
}

/// Rule 7: the deterministic-simulation seam. Core, durability and net run
/// unmodified under the sim harness's virtual clock, so their non-test code
/// must read time through `adcast_stream::clock::now_ns()`; a raw
/// `Instant::now()` / `SystemTime::now()` is invisible to the simulator and
/// breaks same-seed reproducibility. The clock module itself lives in
/// `crates/stream/` — outside the gated set — and needs no exemption here.
pub fn no_wallclock(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::wants_no_wallclock(&fa.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in fa.tokens.iter().enumerate() {
        if fa.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if !matches!(t.text.as_str(), "Instant" | "SystemTime") {
            continue;
        }
        let now_call = fa.tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && fa.tokens.get(i + 2).is_some_and(|b| b.is_punct(':'))
            && fa.tokens.get(i + 3).is_some_and(|c| c.is_ident("now"))
            && fa.tokens.get(i + 4).is_some_and(|d| d.is_punct('('));
        if now_call {
            out.push(diag(
                fa,
                t.line,
                NO_WALLCLOCK,
                format!(
                    "`{}::now()` reads the wall clock on a simulated path; use \
                     `adcast_stream::clock::now_ns()` so virtual time stays authoritative",
                    t.text
                ),
            ));
        }
    }
    out
}

/// Rule 8 (cross-file): every variant of the protocol's `Request`/
/// `Response` enums must be mentioned at each conformance site declared in
/// [`config::RPC_SITES`] — codec encode/decode, server dispatch, the
/// flight-recorder kind table, and the router's forward/broadcast merge
/// tables. Adding an RPC kind and forgetting one site is a lint error,
/// not a runtime `BadRequest`. Sites list by-design exemptions in config;
/// an exemption the site does handle anyway is itself diagnosed so the
/// table cannot rot. Inert when the protocol file or a site file is not
/// in the linted set (single-file fixture runs).
pub fn rpc_exhaustive(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for site in config::RPC_SITES {
        let Some(decl) = ws.enum_decl(config::PROTOCOL_FILE, site.enum_name) else {
            continue;
        };
        let Some(file) = ws.file(site.file) else {
            continue;
        };
        let Some(anchor) = file
            .fns
            .iter()
            .find(|f| f.name == site.func)
            .map(|f| f.line)
        else {
            out.push(Diagnostic {
                file: site.file.to_string(),
                line: 1,
                rule: RPC_EXHAUSTIVE,
                message: format!(
                    "{} fn `{}` not found; update config::RPC_SITES if the site moved",
                    site.role, site.func
                ),
            });
            continue;
        };
        let used = ws.variants_used(site.file, site.func, site.enum_name);
        for v in &decl.variants {
            let handled = used.contains(v.as_str());
            let excepted = site.except.contains(&v.as_str());
            if !handled && !excepted {
                out.push(Diagnostic {
                    file: site.file.to_string(),
                    line: anchor,
                    rule: RPC_EXHAUSTIVE,
                    message: format!(
                        "`{}::{v}` (declared in {}:{}) is not handled in the {} (`{}`)",
                        site.enum_name,
                        config::PROTOCOL_FILE,
                        decl.line,
                        site.role,
                        site.func
                    ),
                });
            } else if handled && excepted {
                out.push(Diagnostic {
                    file: site.file.to_string(),
                    line: anchor,
                    rule: RPC_EXHAUSTIVE,
                    message: format!(
                        "stale exemption: `{}::{v}` is handled in the {} (`{}`) but still \
                         listed in config::RPC_SITES.except; remove the exemption",
                        site.enum_name, site.role, site.func
                    ),
                });
            }
        }
    }
    out
}

/// Rule 9: the generalized `wal-ordering` — a configurable token-order
/// state machine over the replication path. For each [`config::Ladder`]
/// matching this file, every fn with the ladder's name must mention the
/// anchor tokens so that their first occurrences are in ladder order, and
/// a later step may not appear without every earlier one.
pub fn ack_ladder(fa: &FileAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for ladder in config::ACK_LADDERS {
        if ladder.file != fa.rel_path {
            continue;
        }
        for f in fa.fns.iter().filter(|f| f.name == ladder.func) {
            let (Some(open), Some(close)) = (f.body_open, f.body_close) else {
                continue;
            };
            if fa.in_test[f.fn_idx] {
                continue;
            }
            let first: Vec<Option<usize>> = ladder
                .steps
                .iter()
                .map(|s| (open + 1..close).find(|&i| !fa.in_test[i] && fa.tokens[i].is_ident(s)))
                .collect();
            for (j, pj) in first.iter().enumerate() {
                let Some(pj) = *pj else { continue };
                // Report the first broken prerequisite only: one swap
                // should read as one diagnostic, not a cascade.
                for (i, earlier) in first.iter().enumerate().take(j) {
                    match *earlier {
                        Some(pi) if pi < pj => {}
                        Some(_) => {
                            out.push(diag(
                                fa,
                                fa.tokens[pj].line,
                                ACK_LADDER,
                                format!(
                                    "`{}` before `{}` in `{}`; required order is {} ({})",
                                    ladder.steps[j],
                                    ladder.steps[i],
                                    ladder.func,
                                    ladder.steps.join(" -> "),
                                    ladder.doc
                                ),
                            ));
                            break;
                        }
                        None => {
                            out.push(diag(
                                fa,
                                fa.tokens[pj].line,
                                ACK_LADDER,
                                format!(
                                    "`{}` without any preceding `{}` in `{}`; required order is {} ({})",
                                    ladder.steps[j],
                                    ladder.steps[i],
                                    ladder.func,
                                    ladder.steps.join(" -> "),
                                    ladder.doc
                                ),
                            ));
                            break;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Rule 12: `trace-propagation` — each [`config::TraceSite`] fn must
/// mention every anchor token of the trace plumbing it owns. Membership,
/// not order (`ack-ladder` owns ordering); a missing token means the
/// refactored site dropped the context and every cross-node trace now
/// stops at that hop. Like `ack-ladder`, test fns are skipped and a
/// configured fn that no longer exists is itself a diagnostic — a moved
/// site with a stale config entry silently checks nothing.
pub fn trace_propagation(fa: &FileAnalysis) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // The rule engages only for files that handle the trace envelope at
    // all (they name `TraceContext` somewhere outside tests). This keeps
    // fixtures and pre-tracing snapshots of a site file inert while still
    // catching the real failure mode: a refactor that keeps the plumbing
    // imports but drops the handoff at one site.
    let handles_traces = fa
        .tokens
        .iter()
        .enumerate()
        .any(|(i, t)| !fa.in_test[i] && t.is_ident("TraceContext"));
    if !handles_traces {
        return out;
    }
    for site in config::TRACE_SITES {
        if site.file != fa.rel_path {
            continue;
        }
        let mut found = false;
        for f in fa.fns.iter().filter(|f| f.name == site.func) {
            let (Some(open), Some(close)) = (f.body_open, f.body_close) else {
                continue;
            };
            if fa.in_test[f.fn_idx] {
                continue;
            }
            found = true;
            for token in site.must_mention {
                let mentioned =
                    (open + 1..close).any(|i| !fa.in_test[i] && fa.tokens[i].is_ident(token));
                if !mentioned {
                    out.push(diag(
                        fa,
                        f.line,
                        TRACE_PROPAGATION,
                        format!("`{}` never mentions `{token}`; {}", site.func, site.doc),
                    ));
                }
            }
        }
        if !found {
            out.push(diag(
                fa,
                1,
                TRACE_PROPAGATION,
                format!(
                    "trace-propagation fn `{}` not found; update config::TRACE_SITES if the \
                     site moved",
                    site.func
                ),
            ));
        }
    }
    out
}

/// A lock acquisition and the token region its guard is live over.
struct LiveGuard {
    /// Token index of the `lock`/`read`/`write` ident.
    call: usize,
    /// Token index closing the acquisition's own `(...)` argument list.
    args_close: usize,
    /// The lock's name: nearest receiver ident before the call.
    name: String,
    /// Exclusive region end: `drop(<binding>)` if present, else the close
    /// of the smallest enclosing block.
    region_end: usize,
    line: u32,
}

/// Rule 10 (scope-aware): while a lock guard is live — from a `.lock()` /
/// RwLock `.read()`/`.write()` acquisition to the end of its enclosing
/// block or an explicit `drop(guard)` — ban calls that can block the
/// thread (socket read/write, channel `recv`, `join`, fsync, sleeps) and
/// nested lock acquisition, except for nestings declared in
/// [`config::LOCK_ORDER`]. Guards returned out of the acquiring fn (the
/// `lock_engine` idiom) are followed to that fn's end; callers of such
/// helpers are out of scope by design — the helper's name documents it.
pub fn lock_discipline(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::is_serving(&fa.rel_path) {
        return Vec::new();
    }
    // `.read()`/`.write()` are lock acquisitions only where RwLock is in
    // scope; elsewhere they are I/O calls (handled by the blocking list).
    let has_rwlock = fa
        .tokens
        .iter()
        .enumerate()
        .any(|(i, t)| !fa.in_test[i] && t.is_ident("RwLock"));
    let mut guards: Vec<LiveGuard> = Vec::new();
    for (i, t) in fa.tokens.iter().enumerate() {
        if fa.in_test[i] {
            continue;
        }
        let is_acquire =
            t.is_ident("lock") || (has_rwlock && (t.is_ident("read") || t.is_ident("write")));
        if !is_acquire
            || !i.checked_sub(1).is_some_and(|p| fa.tokens[p].is_punct('.'))
            || !fa.tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
        {
            continue;
        }
        let args_close = matching_close(&fa.tokens, i + 1).unwrap_or(i + 1);
        let block_close = fa
            .tree
            .enclosing_block(i)
            .map_or(fa.tokens.len().saturating_sub(1), |b| b.close);
        let mut region_end = block_close;
        if let Some(binding) = binding_name(fa, i) {
            for j in args_close..block_close {
                if fa.tokens[j].is_ident("drop")
                    && fa.tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
                    && fa.tokens.get(j + 2).is_some_and(|n| n.is_ident(&binding))
                {
                    region_end = j;
                    break;
                }
            }
        }
        guards.push(LiveGuard {
            call: i,
            args_close,
            name: receiver_name(fa, i - 1),
            region_end,
            line: t.line,
        });
    }
    let mut out = Vec::new();
    for g in &guards {
        for j in g.args_close + 1..g.region_end {
            if fa.in_test[j] || fa.tokens[j].kind != TokKind::Ident {
                continue;
            }
            if let Some(inner) = guards.iter().find(|h| h.call == j) {
                if !config::lock_order_allows(&g.name, &inner.name) {
                    out.push(diag(
                        fa,
                        fa.tokens[j].line,
                        LOCK_DISCIPLINE,
                        format!(
                            "nested lock `{}` acquired while the `{}` guard (line {}) is live; \
                             declare the order in config::LOCK_ORDER or narrow the guard's scope",
                            inner.name, g.name, g.line
                        ),
                    ));
                }
                continue;
            }
            let t = &fa.tokens[j];
            if config::BLOCKING_IN_LOCK.contains(&t.text.as_str())
                && fa.tokens.get(j + 1).is_some_and(|n| n.is_punct('('))
                && !j
                    .checked_sub(1)
                    .is_some_and(|p| fa.tokens[p].is_ident("fn"))
            {
                out.push(diag(
                    fa,
                    t.line,
                    LOCK_DISCIPLINE,
                    format!(
                        "`{}()` may block while the `{}` lock guard (line {}) is live; \
                         drop the guard first or move the call out of the critical section",
                        t.text, g.name, g.line
                    ),
                ));
            }
        }
    }
    out
}

/// The nearest receiver ident left of the `.` at `dot`: walks back over
/// one trailing index/call group (`partitions[i].lock()`, `cell().lock()`).
fn receiver_name(fa: &FileAnalysis, dot: usize) -> String {
    let Some(mut k) = dot.checked_sub(1) else {
        return "<expr>".to_string();
    };
    let closer = fa.tokens[k].text.as_str();
    if closer == "]" || closer == ")" {
        let opener = if closer == "]" { "[" } else { "(" };
        let mut depth = 0i64;
        loop {
            if fa.tokens[k].text == closer {
                depth += 1;
            } else if fa.tokens[k].text == opener {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            match k.checked_sub(1) {
                Some(p) => k = p,
                None => return "<expr>".to_string(),
            }
        }
        match k.checked_sub(1) {
            Some(p) => k = p,
            None => return "<expr>".to_string(),
        }
    }
    if fa.tokens[k].kind == TokKind::Ident {
        fa.tokens[k].text.clone()
    } else {
        "<expr>".to_string()
    }
}

/// The `let` binding receiving the lock call at `call`, if its statement
/// reads `let [mut] <name> = ...`: scan back to the statement boundary.
fn binding_name(fa: &FileAnalysis, call: usize) -> Option<String> {
    let mut k = call;
    while k > 0 {
        let t = &fa.tokens[k - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        k -= 1;
    }
    if !fa.tokens.get(k).is_some_and(|t| t.is_ident("let")) {
        return None;
    }
    let mut n = k + 1;
    if fa.tokens.get(n).is_some_and(|t| t.is_ident("mut")) {
        n += 1;
    }
    fa.tokens
        .get(n)
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
}

/// Rule 11: serving crates may not create unbounded `mpsc::channel()`s —
/// every queue between serving threads is a `sync_channel` whose capacity
/// states the intended backpressure (depth-1 reply slots, protocol-bounded
/// job queues). Test code is exempt.
pub fn bounded_channel(fa: &FileAnalysis) -> Vec<Diagnostic> {
    if !config::is_serving(&fa.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (i, t) in fa.tokens.iter().enumerate() {
        if fa.in_test[i] || !t.is_ident("channel") || i < 3 {
            continue;
        }
        let from_mpsc = fa.tokens[i - 1].is_punct(':')
            && fa.tokens[i - 2].is_punct(':')
            && fa.tokens[i - 3].is_ident("mpsc");
        if from_mpsc {
            out.push(diag(
                fa,
                t.line,
                BOUNDED_CHANNEL,
                "unbounded `mpsc::channel()` on a serving path; use `mpsc::sync_channel` \
                 with an explicit bound so backpressure is a decision, not an accident"
                    .to_string(),
            ));
        }
    }
    out
}

/// Walk backwards from the token at `before` (the `pub` of an item) over
/// contiguous attribute groups, looking for `non_exhaustive`.
fn has_non_exhaustive_attr(fa: &FileAnalysis, before: usize) -> bool {
    let mut j = before;
    while j >= 1 && fa.tokens[j - 1].is_punct(']') {
        // Find the matching `[` going backwards.
        let mut depth = 0i64;
        let mut k = j - 1;
        loop {
            if fa.tokens[k].is_punct(']') {
                depth += 1;
            } else if fa.tokens[k].is_punct('[') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        if fa.tokens[k..j].iter().any(|t| t.is_ident("non_exhaustive")) {
            return true;
        }
        if k >= 1 && fa.tokens[k - 1].is_punct('#') {
            j = k - 1;
        } else {
            return false;
        }
    }
    false
}
