//! RPC message types for the adcast wire protocol.
//!
//! Every request carries a caller-assigned request id; the server echoes
//! it on the response so a client can detect stream desynchronization.
//! Failures travel as a typed [`WireError`] variant rather than a closed
//! connection, so clients can distinguish "retry later" ([`WireError::
//! Overloaded`]) from "give up" ([`WireError::Unavailable`]).

use adcast_ads::{AdId, AdSubmission, Budget, Targeting};
use adcast_core::Recommendation;
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::{LocationId, TimeSlot};
use adcast_text::SparseVector;
use bytes::Bytes;

pub use adcast_obs::tracestore::TraceContext;

/// A client → server RPC.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Apply a batch of feed deltas (the write hot path).
    Ingest {
        /// Per-user deltas in arrival order.
        deltas: Vec<(UserId, FeedDelta)>,
    },
    /// Serve the top-`k` ads for a user (the read hot path).
    Recommend {
        /// The user to serve.
        user: UserId,
        /// Serve-time "now" for decay/targeting.
        now: Timestamp,
        /// The user's current location cell.
        location: LocationId,
        /// Results wanted.
        k: u16,
    },
    /// Submit a new campaign.
    SubmitCampaign(CampaignSpec),
    /// Pause an active campaign (de-indexes it everywhere).
    PauseCampaign {
        /// The campaign to pause.
        ad: AdId,
    },
    /// Charge a served impression against a campaign's budget and CTR
    /// prior (and its pacing controller when one is attached).
    Impression {
        /// The charged campaign.
        ad: AdId,
        /// Cost in currency units (finite, non-negative).
        cost: f64,
        /// Did the user click?
        clicked: bool,
        /// Charge time (drives pacing throttle updates).
        now: Timestamp,
    },
    /// Run a lifecycle maintenance pass: evict finished-flight campaigns
    /// from the index and reset users idle for at least `idle_for`.
    /// WAL-logged like any other mutation, so recovery twins replay the
    /// identical pass.
    Maintain {
        /// Pass time (expiry cut for pacing flights and idleness).
        now: Timestamp,
        /// Users idle at least this long are reset.
        idle_for: adcast_stream::clock::Duration,
    },
    /// Force a durable snapshot now; blocks until the snapshot file is
    /// on disk. Refused with [`WireError::BadRequest`] when the server
    /// runs without a data directory.
    Checkpoint,
    /// Dump the in-memory flight recorder to `flightrec.jsonl` in the
    /// server's data directory. Refused with [`WireError::BadRequest`]
    /// when the server runs without a data directory.
    ObsDump,
    /// Snapshot server + engine counters and RPC latency percentiles.
    Stats,
    /// Graceful shutdown: drain queued requests, then stop serving.
    Shutdown,
    /// A partition-routed envelope (wire v5). The router stamps the
    /// target partition and its view of the partition's epoch; the
    /// node refuses the inner request with a typed error when either
    /// disagrees ([`WireError::WrongPartition`] /
    /// [`WireError::StaleEpoch`]), which is how a fenced stale primary
    /// or a router with an outdated map finds out. Nesting a `Routed`
    /// inside a `Routed` is a decode error.
    Routed {
        /// Partition the router believes owns this request's user(s).
        partition: u16,
        /// Router's view of the partition epoch (bumped on promotion).
        epoch: u64,
        /// Distributed-tracing context (wire v6): 16 bytes after the
        /// epoch, all-zero when the request is unsampled. The node
        /// records its spans under `trace.trace_id`, parented on
        /// `trace.parent_span_id` (the router's forward span).
        trace: TraceContext,
        /// The request being routed.
        inner: Box<Request>,
    },
    /// Primary → follower: append committed WAL records. Each entry is
    /// `(lsn, WalRecord encoding)`; LSNs must continue the follower's
    /// sequence exactly or the follower answers [`WireError::LsnGap`]
    /// (the primary then falls back to snapshot transfer).
    ReplAppend {
        /// Partition these records belong to.
        partition: u16,
        /// Sender's epoch; a lower epoch than the follower's is fenced
        /// with [`WireError::StaleEpoch`].
        epoch: u64,
        /// Distributed-tracing context (wire v6), parented on the
        /// primary's replicate span; all-zero when unsampled.
        trace: TraceContext,
        /// `(lsn, encoded record)` pairs in LSN order.
        entries: Vec<(u64, Bytes)>,
    },
    /// Primary → rejoining/rebalanced node: install a full engine-set
    /// snapshot ([`adcast_durability::EngineSetSnapshot`] encoding,
    /// which carries its own `next_lsn`), replacing the target's WAL
    /// and state wholesale.
    InstallSnapshot {
        /// Partition the snapshot belongs to.
        partition: u16,
        /// Sender's epoch (same fencing rule as `ReplAppend`).
        epoch: u64,
        /// `EngineSetSnapshot::encode()` bytes.
        snapshot: Bytes,
    },
    /// Router → follower: take over the partition under a bumped epoch.
    /// Idempotent — re-promoting at the same or lower epoch than one
    /// already held answers [`WireError::StaleEpoch`].
    Promote {
        /// Partition being promoted.
        partition: u16,
        /// The new (bumped) epoch the node must adopt.
        epoch: u64,
    },
    /// Ask a node for its cluster role/epoch/durable-LSN view (used by
    /// the router's failure detector and the cluster smoke scripts).
    ClusterStatus,
}

/// A node's replication role as reported by [`Request::ClusterStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// Not participating in a cluster (no partition assigned).
    Standalone,
    /// Owns its partition and accepts client writes.
    Primary,
    /// Mirrors a primary; refuses client writes with
    /// [`WireError::NotPrimary`].
    Follower,
}

/// A node's cluster identity and replication position, as assembled by
/// [`crate::Client::cluster_status`] from the
/// [`Response::ClusterStatusReply`] fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeStatus {
    /// Current role.
    pub role: NodeRole,
    /// Partition the node owns/mirrors (0 for standalone).
    pub partition: u16,
    /// Epoch the node holds.
    pub epoch: u64,
    /// The node's `next_lsn`: every LSN below it is locally durable.
    pub durable_lsn: u64,
    /// A fenced stale primary refuses writes until re-enrolled.
    pub fenced: bool,
    /// Primary running without a reachable follower.
    pub degraded: bool,
}

/// Campaign ingredients as they travel on the wire ([`AdSubmission`]
/// itself holds validated domain types that are not all encodable).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Weighted keyword vector (strictly sorted terms, finite non-zero
    /// weights — the codec enforces this on decode).
    pub vector: SparseVector,
    /// Bid per impression.
    pub bid: f32,
    /// Eligible location cells; empty = everywhere.
    pub locations: Vec<LocationId>,
    /// Eligible time slots; empty = always.
    pub slots: Vec<TimeSlot>,
    /// Budget in currency units; `None` = unlimited.
    pub budget: Option<f64>,
    /// Ground-truth topic (evaluation only).
    pub topic_hint: Option<u32>,
}

impl CampaignSpec {
    /// An unrestricted, unlimited-budget spec for `vector` and `bid`.
    pub fn unrestricted(vector: SparseVector, bid: f32) -> Self {
        CampaignSpec {
            vector,
            bid,
            locations: Vec::new(),
            slots: Vec::new(),
            budget: None,
            topic_hint: None,
        }
    }

    /// Convert into a store submission.
    ///
    /// # Errors
    ///
    /// Returns a description when the budget is not a finite non-negative
    /// number (the store's own validation then covers vector and bid).
    pub fn try_into_submission(self) -> Result<AdSubmission, String> {
        let budget = match self.budget {
            None => Budget::unlimited(),
            Some(b) if b.is_finite() && b >= 0.0 => Budget::new(b),
            Some(b) => return Err(format!("invalid budget {b}")),
        };
        Ok(AdSubmission {
            vector: self.vector,
            bid: self.bid,
            targeting: Targeting::everywhere()
                .in_locations(self.locations)
                .in_slots(self.slots),
            budget,
            topic_hint: self.topic_hint.map(|t| t as usize),
        })
    }
}

/// A server → client reply. Each variant answers exactly one [`Request`]
/// variant; [`Response::Error`] can answer any of them.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The batch was applied.
    Ingested {
        /// Deltas applied.
        accepted: u32,
    },
    /// The served ranking.
    Recommendations(Vec<Recommendation>),
    /// The campaign was accepted under this id.
    CampaignAccepted {
        /// Assigned id.
        ad: AdId,
    },
    /// The campaign is now paused.
    CampaignPaused {
        /// The paused campaign.
        ad: AdId,
    },
    /// The impression was charged.
    ImpressionRecorded {
        /// The charged campaign.
        ad: AdId,
        /// Did this charge exhaust the campaign's budget (it is no
        /// longer served)?
        exhausted: bool,
    },
    /// The maintenance pass completed.
    Maintained {
        /// Users examined across shards.
        scanned: u64,
        /// Idle users reset to fresh state.
        decayed: u64,
        /// Finished-flight campaigns evicted from the index.
        pruned: u64,
    },
    /// The checkpoint is durable on disk.
    Checkpointed {
        /// WAL position the snapshot covers: every record below this LSN
        /// is inside it.
        lsn: u64,
    },
    /// The flight-recorder dump is on disk.
    ObsDumped {
        /// Events written to the dump file.
        events: u64,
    },
    /// Counter + latency snapshot.
    Stats(ServerStats),
    /// Shutdown acknowledged; the server is draining.
    ShutdownAck,
    /// The replicated records are durable on the follower up to (but not
    /// including) this LSN.
    ReplAck {
        /// The follower's `next_lsn` after logging, fsyncing, and
        /// applying the batch — every LSN below it is durable there.
        durable_lsn: u64,
    },
    /// The snapshot is installed; the node's WAL restarts here.
    SnapshotInstalled {
        /// First LSN the node will assign after the install.
        next_lsn: u64,
    },
    /// The node now serves its partition as primary under this epoch.
    Promoted {
        /// Epoch the node adopted.
        epoch: u64,
        /// Next LSN the node will assign (== every acked delta it has).
        next_lsn: u64,
    },
    /// The node's cluster view.
    ClusterStatusReply {
        /// Current role.
        role: NodeRole,
        /// Partition the node owns/mirrors (0 for standalone).
        partition: u16,
        /// Epoch the node holds.
        epoch: u64,
        /// The node's `next_lsn`: every LSN below it is locally durable
        /// (0 when the node runs without a data directory).
        durable_lsn: u64,
        /// A fenced stale primary refuses writes until re-enrolled.
        fenced: bool,
        /// Primary running without a reachable follower (acks are
        /// local-durable only).
        degraded: bool,
    },
    /// The request failed.
    Error(WireError),
}

/// Typed RPC failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The bounded request queue was full: the server shed this request
    /// instead of buffering unboundedly. Back off and retry.
    Overloaded,
    /// The engine driver is dead (a shard worker died); writes are
    /// refused for the life of the process.
    Unavailable,
    /// The server is draining for shutdown.
    ShuttingDown,
    /// Malformed or out-of-range request.
    BadRequest(String),
    /// No such active campaign.
    UnknownCampaign(AdId),
    /// The frame's epoch does not match the node's. Carries the node's
    /// current epoch so the sender can reconcile (a router refreshes
    /// its map; a stale primary fences itself).
    StaleEpoch {
        /// Epoch the node currently holds.
        current: u64,
    },
    /// The routed partition is not the one this node owns.
    WrongPartition {
        /// Partition the node actually owns.
        expected: u16,
    },
    /// Replicated LSNs do not continue the follower's sequence; the
    /// sender must fall back to snapshot transfer.
    LsnGap {
        /// LSN the follower expected next.
        expected: u64,
    },
    /// A client write reached a follower; only the primary accepts
    /// writes.
    NotPrimary,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Overloaded => write!(f, "server overloaded (request shed)"),
            WireError::Unavailable => write!(f, "engine unavailable"),
            WireError::ShuttingDown => write!(f, "server shutting down"),
            WireError::BadRequest(why) => write!(f, "bad request: {why}"),
            WireError::UnknownCampaign(ad) => write!(f, "unknown campaign {}", ad.0),
            WireError::StaleEpoch { current } => {
                write!(f, "stale epoch (node is at epoch {current})")
            }
            WireError::WrongPartition { expected } => {
                write!(f, "wrong partition (node owns partition {expected})")
            }
            WireError::LsnGap { expected } => {
                write!(f, "replication lsn gap (follower expects lsn {expected})")
            }
            WireError::NotPrimary => write!(f, "node is a follower; writes go to the primary"),
        }
    }
}

impl std::error::Error for WireError {}

/// Server-side counters and latency percentiles, served by
/// [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Feed deltas applied by the engine (cumulative).
    pub deltas: u64,
    /// Recommendations served by the engine (cumulative).
    pub recommends: u64,
    /// Active campaigns right now.
    pub active_campaigns: u64,
    /// RPCs that reached the engine (cumulative, all kinds).
    pub rpcs: u64,
    /// Requests shed with [`WireError::Overloaded`] (cumulative).
    pub shed: u64,
    /// Connections accepted (cumulative).
    pub connections: u64,
    /// Configured bound of the request queue.
    pub queue_capacity: u64,
    /// Ingest RPC service time, 50th percentile (ns).
    pub ingest_p50_ns: u64,
    /// Ingest RPC service time, 99th percentile (ns).
    pub ingest_p99_ns: u64,
    /// Recommend RPC service time, 50th percentile (ns).
    pub recommend_p50_ns: u64,
    /// Recommend RPC service time, 99th percentile (ns).
    pub recommend_p99_ns: u64,
    /// WAL records appended since startup (0 when serving without a data
    /// directory — as are the five counters below).
    pub wal_records: u64,
    /// WAL bytes appended (framing included).
    pub wal_bytes: u64,
    /// fsync calls issued by the WAL writer.
    pub wal_fsyncs: u64,
    /// Snapshots persisted since startup (periodic + checkpoints).
    pub snapshots_written: u64,
    /// WAL records replayed during startup recovery.
    pub recovered_records: u64,
    /// Torn-tail bytes truncated during startup recovery.
    pub recovered_truncated_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use adcast_text::dictionary::TermId;

    #[test]
    fn spec_roundtrips_into_submission() {
        let spec = CampaignSpec {
            vector: SparseVector::from_pairs([(TermId(3), 0.5), (TermId(9), 0.2)]),
            bid: 1.5,
            locations: vec![LocationId(2)],
            slots: vec![TimeSlot::Morning],
            budget: Some(12.5),
            topic_hint: Some(4),
        };
        let sub = spec.try_into_submission().unwrap();
        assert_eq!(sub.bid, 1.5);
        assert_eq!(sub.targeting.locations(), &[LocationId(2)]);
        assert_eq!(sub.targeting.slots(), &[TimeSlot::Morning]);
        assert!((sub.budget.remaining() - 12.5).abs() < 1e-9);
        assert_eq!(sub.topic_hint, Some(4));
    }

    #[test]
    fn bad_budget_rejected_without_panic() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            let spec = CampaignSpec {
                budget: Some(bad),
                ..CampaignSpec::unrestricted(SparseVector::from_pairs([(TermId(0), 1.0)]), 1.0)
            };
            assert!(spec.try_into_submission().is_err(), "budget {bad}");
        }
    }

    #[test]
    fn wire_error_display() {
        assert!(WireError::Overloaded.to_string().contains("shed"));
        assert!(WireError::UnknownCampaign(AdId(7))
            .to_string()
            .contains('7'));
    }
}
