//! The WAL record vocabulary.
//!
//! One [`WalRecord`] per externally-visible mutation of the serving
//! state: feed ingestion, campaign lifecycle, budget debits, pacing
//! attachment. Recommends are deliberately *not* logged — under the
//! default eager refresh policy serve-time certification makes
//! recommendation output a pure function of the mutation history, so
//! replaying mutations alone reproduces bit-identical answers.
//!
//! Record payload layout (all little-endian), after the per-record WAL
//! framing ([`crate::wal`]):
//!
//! ```text
//! tag u8 | body…
//! 1 IngestBatch: count u32 | count × delta       (shared delta codec)
//! 2 Submit:      vector | bid f32 | budget 2×u64 | nloc u16 | locs
//!              | nslots u8 | slots | topic u8 [u64]
//! 3 Pause:       ad u32
//! 4 Resume:      ad u32
//! 5 Remove:      ad u32
//! 6 SetPacing:   ad u32 | start u64 | end u64 | budget f64
//! 7 Impression:  ad u32 | cost f64 | clicked u8 | now u64
//! 8 Maintenance: now u64 | idle_for u64
//! ```

use adcast_ads::{AdId, AdSubmission, Budget, Targeting};
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::clock::{Duration, Timestamp};
use adcast_stream::event::LocationId;
use adcast_stream::trace::TraceError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::codec::{get_delta, get_slot, get_vector, need, put_delta, put_slot, put_vector};

const T_INGEST: u8 = 1;
const T_SUBMIT: u8 = 2;
const T_PAUSE: u8 = 3;
const T_RESUME: u8 = 4;
const T_REMOVE: u8 = 5;
const T_SET_PACING: u8 = 6;
const T_IMPRESSION: u8 = 7;
const T_MAINTENANCE: u8 = 8;

/// One logged mutation.
#[derive(Debug, Clone)]
pub enum WalRecord {
    /// A batch of feed deltas, acked as one unit (one fsync covers the
    /// whole batch — the WAL-level face of group commit).
    IngestBatch(Vec<(UserId, FeedDelta)>),
    /// A campaign submission (the store assigns the next sequential id,
    /// so replay reproduces identical ids).
    Submit(AdSubmission),
    /// Pause a campaign.
    Pause(AdId),
    /// Resume a paused campaign.
    Resume(AdId),
    /// Remove a campaign permanently.
    Remove(AdId),
    /// Attach a pacing controller for a flight `[start, end]`.
    SetPacing {
        /// Campaign to pace.
        ad: AdId,
        /// Flight start.
        start: Timestamp,
        /// Flight end (must be after `start`).
        end: Timestamp,
        /// Flight budget (positive, finite).
        budget: f64,
    },
    /// A served impression charged at `cost`, with its engagement.
    Impression {
        /// Campaign charged.
        ad: AdId,
        /// Charge amount (finite, non-negative).
        cost: f64,
        /// Whether the impression was clicked.
        clicked: bool,
        /// Serving time (drives pacing adjustment).
        now: Timestamp,
    },
    /// A lifecycle maintenance pass: evict exhausted/expired campaigns
    /// from the index and reset users idle longer than `idle_for`.
    /// WAL-logged so recovery twins replay the same decay and eviction
    /// decisions and stay bit-identical.
    Maintenance {
        /// Pass time (expiry cut for pacing flights).
        now: Timestamp,
        /// Users whose last activity is at least this old are reset.
        idle_for: Duration,
    },
}

impl WalRecord {
    /// Encode the record payload (no WAL framing).
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        match self {
            WalRecord::IngestBatch(deltas) => {
                buf.put_u8(T_INGEST);
                buf.put_u32_le(u32::try_from(deltas.len()).expect("batch too large"));
                for (user, delta) in deltas {
                    put_delta(&mut buf, *user, delta);
                }
            }
            WalRecord::Submit(sub) => {
                buf.put_u8(T_SUBMIT);
                put_vector(&mut buf, &sub.vector);
                buf.put_f32_le(sub.bid);
                let (total, spent) = sub.budget.to_micros();
                buf.put_u64_le(total);
                buf.put_u64_le(spent);
                let locations = sub.targeting.locations();
                buf.put_u16_le(u16::try_from(locations.len()).expect("too many locations"));
                for loc in locations {
                    buf.put_u16_le(loc.0);
                }
                let slots = sub.targeting.slots();
                buf.put_u8(u8::try_from(slots.len()).expect("too many slots"));
                for slot in slots {
                    put_slot(&mut buf, *slot);
                }
                match sub.topic_hint {
                    Some(t) => {
                        buf.put_u8(1);
                        buf.put_u64_le(t as u64);
                    }
                    None => buf.put_u8(0),
                }
            }
            WalRecord::Pause(ad) => {
                buf.put_u8(T_PAUSE);
                buf.put_u32_le(ad.0);
            }
            WalRecord::Resume(ad) => {
                buf.put_u8(T_RESUME);
                buf.put_u32_le(ad.0);
            }
            WalRecord::Remove(ad) => {
                buf.put_u8(T_REMOVE);
                buf.put_u32_le(ad.0);
            }
            WalRecord::SetPacing {
                ad,
                start,
                end,
                budget,
            } => {
                buf.put_u8(T_SET_PACING);
                buf.put_u32_le(ad.0);
                buf.put_u64_le(start.micros());
                buf.put_u64_le(end.micros());
                buf.put_f64_le(*budget);
            }
            WalRecord::Impression {
                ad,
                cost,
                clicked,
                now,
            } => {
                buf.put_u8(T_IMPRESSION);
                buf.put_u32_le(ad.0);
                buf.put_f64_le(*cost);
                buf.put_u8(u8::from(*clicked));
                buf.put_u64_le(now.micros());
            }
            WalRecord::Maintenance { now, idle_for } => {
                buf.put_u8(T_MAINTENANCE);
                buf.put_u64_le(now.micros());
                buf.put_u64_le(idle_for.micros());
            }
        }
        buf.freeze()
    }

    /// Decode one record payload, consuming `data` entirely.
    ///
    /// # Errors
    ///
    /// Typed [`TraceError`] on truncation, unknown tags, trailing bytes,
    /// or semantically invalid payloads (non-finite costs, empty pacing
    /// flights) — anything that could later panic an `assert!` in the
    /// store must be rejected here. Never panics.
    pub fn decode(mut data: Bytes) -> Result<WalRecord, TraceError> {
        need(&data, 1)?;
        let record = match data.get_u8() {
            T_INGEST => {
                need(&data, 4)?;
                let n = data.get_u32_le() as usize;
                let mut deltas = Vec::with_capacity(n.min(65_536));
                for _ in 0..n {
                    deltas.push(get_delta(&mut data)?);
                }
                WalRecord::IngestBatch(deltas)
            }
            T_SUBMIT => {
                let vector = get_vector(&mut data)?;
                need(&data, 4 + 16)?;
                let bid = data.get_f32_le();
                let total = data.get_u64_le();
                let spent = data.get_u64_le();
                if spent > total {
                    return Err(TraceError::Corrupt("budget spent above total"));
                }
                need(&data, 2)?;
                let nloc = data.get_u16_le() as usize;
                need(&data, nloc * 2)?;
                let locations: Vec<LocationId> =
                    (0..nloc).map(|_| LocationId(data.get_u16_le())).collect();
                need(&data, 1)?;
                let nslots = data.get_u8() as usize;
                let mut slots = Vec::with_capacity(nslots);
                for _ in 0..nslots {
                    slots.push(get_slot(&mut data)?);
                }
                need(&data, 1)?;
                let topic_hint = match data.get_u8() {
                    0 => None,
                    1 => {
                        need(&data, 8)?;
                        Some(data.get_u64_le() as usize)
                    }
                    _ => return Err(TraceError::Corrupt("bad topic flag")),
                };
                WalRecord::Submit(AdSubmission {
                    vector,
                    bid,
                    targeting: Targeting::everywhere()
                        .in_locations(locations)
                        .in_slots(slots),
                    budget: Budget::from_micros(total, spent),
                    topic_hint,
                })
            }
            T_PAUSE => {
                need(&data, 4)?;
                WalRecord::Pause(AdId(data.get_u32_le()))
            }
            T_RESUME => {
                need(&data, 4)?;
                WalRecord::Resume(AdId(data.get_u32_le()))
            }
            T_REMOVE => {
                need(&data, 4)?;
                WalRecord::Remove(AdId(data.get_u32_le()))
            }
            T_SET_PACING => {
                need(&data, 4 + 8 + 8 + 8)?;
                let ad = AdId(data.get_u32_le());
                let start = Timestamp(data.get_u64_le());
                let end = Timestamp(data.get_u64_le());
                let budget = data.get_f64_le();
                if end <= start {
                    return Err(TraceError::Corrupt("empty pacing flight"));
                }
                if !(budget.is_finite() && budget > 0.0) {
                    return Err(TraceError::Corrupt("invalid pacing budget"));
                }
                WalRecord::SetPacing {
                    ad,
                    start,
                    end,
                    budget,
                }
            }
            T_IMPRESSION => {
                need(&data, 4 + 8 + 1 + 8)?;
                let ad = AdId(data.get_u32_le());
                let cost = data.get_f64_le();
                if !(cost.is_finite() && cost >= 0.0) {
                    return Err(TraceError::Corrupt("invalid impression cost"));
                }
                let clicked = match data.get_u8() {
                    0 => false,
                    1 => true,
                    _ => return Err(TraceError::Corrupt("bad clicked flag")),
                };
                let now = Timestamp(data.get_u64_le());
                WalRecord::Impression {
                    ad,
                    cost,
                    clicked,
                    now,
                }
            }
            T_MAINTENANCE => {
                need(&data, 8 + 8)?;
                let now = Timestamp(data.get_u64_le());
                let idle_for = Duration(data.get_u64_le());
                WalRecord::Maintenance { now, idle_for }
            }
            _ => return Err(TraceError::Corrupt("unknown wal record tag")),
        };
        if data.has_remaining() {
            return Err(TraceError::Corrupt("trailing bytes in wal record"));
        }
        Ok(record)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use adcast_stream::event::{Message, MessageId, TimeSlot};
    use adcast_text::dictionary::TermId;
    use adcast_text::SparseVector;
    use std::sync::Arc;

    fn v(pairs: &[(u32, f32)]) -> SparseVector {
        SparseVector::from_pairs(pairs.iter().map(|&(t, w)| (TermId(t), w)))
    }

    fn msg(i: u64) -> Arc<Message> {
        Arc::new(Message {
            id: MessageId(i),
            author: UserId(3),
            ts: Timestamp::from_secs(i),
            location: LocationId(2),
            vector: v(&[(1, 0.5), (7, 0.25)]),
        })
    }

    pub(crate) fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::IngestBatch(vec![
                (
                    UserId(1),
                    FeedDelta {
                        entered: Some(msg(10)),
                        evicted: vec![msg(2), msg(3)],
                    },
                ),
                (
                    UserId(2),
                    FeedDelta {
                        entered: None,
                        evicted: vec![msg(1)],
                    },
                ),
            ]),
            WalRecord::IngestBatch(vec![]),
            WalRecord::Submit(AdSubmission {
                vector: v(&[(0, 1.0), (5, 0.5)]),
                bid: 2.5,
                targeting: Targeting::everywhere()
                    .in_locations([LocationId(1), LocationId(8)])
                    .in_slots([TimeSlot::Morning, TimeSlot::Night]),
                budget: Budget::new(99.5),
                topic_hint: Some(3),
            }),
            WalRecord::Submit(AdSubmission {
                vector: v(&[(2, 0.7)]),
                bid: 1.0,
                targeting: Targeting::everywhere(),
                budget: Budget::unlimited(),
                topic_hint: None,
            }),
            WalRecord::Pause(AdId(12)),
            WalRecord::Resume(AdId(12)),
            WalRecord::Remove(AdId(4)),
            WalRecord::SetPacing {
                ad: AdId(7),
                start: Timestamp::from_secs(0),
                end: Timestamp::from_secs(3600),
                budget: 50.0,
            },
            WalRecord::Impression {
                ad: AdId(9),
                cost: 0.25,
                clicked: true,
                now: Timestamp::from_secs(17),
            },
            WalRecord::Impression {
                ad: AdId(9),
                cost: 0.0,
                clicked: false,
                now: Timestamp::from_secs(18),
            },
            WalRecord::Maintenance {
                now: Timestamp::from_secs(7200),
                idle_for: adcast_stream::clock::Duration::from_secs(3600),
            },
        ]
    }

    #[test]
    fn records_roundtrip() {
        for (i, record) in sample_records().into_iter().enumerate() {
            let bytes = record.encode();
            let decoded = WalRecord::decode(bytes.clone()).unwrap();
            // No PartialEq on AdSubmission; byte-for-byte re-encode is the
            // equality that matters for replay.
            assert_eq!(decoded.encode(), bytes, "record {i}");
        }
    }

    #[test]
    fn truncated_records_never_panic() {
        for (i, record) in sample_records().into_iter().enumerate() {
            let bytes = record.encode();
            for cut in 0..bytes.len() {
                assert!(
                    WalRecord::decode(bytes.slice(0..cut)).is_err(),
                    "record {i} cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = WalRecord::Pause(AdId(1)).encode().to_vec();
        bytes.push(0);
        assert_eq!(
            WalRecord::decode(Bytes::from(bytes)).unwrap_err(),
            TraceError::Corrupt("trailing bytes in wal record")
        );
    }

    #[test]
    fn hostile_payloads_rejected() {
        // NaN impression cost would panic Budget::try_charge on apply.
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(1);
        buf.put_f64_le(f64::NAN);
        buf.put_u8(0);
        buf.put_u64_le(0);
        assert!(WalRecord::decode(buf.freeze()).is_err());
        // Empty pacing flight would panic PacingController::new.
        let mut buf = BytesMut::new();
        buf.put_u8(6);
        buf.put_u32_le(1);
        buf.put_u64_le(5);
        buf.put_u64_le(5);
        buf.put_f64_le(1.0);
        assert!(WalRecord::decode(buf.freeze()).is_err());
        // Unknown tag.
        assert!(WalRecord::decode(Bytes::from_static(&[99])).is_err());
    }
}
