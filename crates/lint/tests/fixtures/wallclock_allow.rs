//! Fixture: a sanctioned wall-clock read with a reasoned pragma.

use std::time::SystemTime;

// adcast-lint: allow(no-wallclock) -- startup banner only; runs once before any simulated path
pub fn boot_banner_epoch_ms() -> u64 {
    SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}
