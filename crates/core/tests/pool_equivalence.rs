//! Sharding-equivalence suite for the persistent worker pool.
//!
//! The sharded driver must be a pure parallelization: for any workload,
//! a direct [`IncrementalEngine`], a 1-shard pool (inline path), and an
//! N-shard pool (worker threads) produce *identical* recommendations and
//! identical aggregate work counters. Feed processing is per-user and the
//! partition preserves per-user delta order, so even the floating-point
//! results must match bit-for-bit.

use std::sync::Arc;

use adcast_ads::{AdStore, AdSubmission, Budget, Targeting};
use adcast_core::driver::ShardedDriver;
use adcast_core::{EngineConfig, IncrementalEngine, Recommendation, RecommendationEngine};
use adcast_feed::FeedDelta;
use adcast_graph::UserId;
use adcast_stream::clock::Timestamp;
use adcast_stream::event::{LocationId, Message, MessageId};
use adcast_text::dictionary::TermId;
use adcast_text::SparseVector;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const USERS: u32 = 96;
const ADS: u32 = 48;
const VOCAB: u32 = 64;
const WINDOW: usize = 6;

fn random_vector(rng: &mut SmallRng, max_terms: usize) -> SparseVector {
    let n = rng.gen_range(1..=max_terms);
    SparseVector::from_pairs(
        (0..n).map(|_| (TermId(rng.gen_range(0..VOCAB)), rng.gen_range(0.1f32..1.0))),
    )
}

fn random_store(rng: &mut SmallRng) -> AdStore {
    let mut s = AdStore::new();
    for _ in 0..ADS {
        s.submit(AdSubmission {
            vector: random_vector(rng, 5),
            bid: rng.gen_range(0.5f32..2.0),
            targeting: Targeting::everywhere(),
            budget: Budget::unlimited(),
            topic_hint: None,
        })
        .unwrap();
    }
    s
}

/// A randomized sliding-window workload: interleaved per-user feed deltas
/// (with real evictions once a user's window fills) in arrival order.
fn random_workload(rng: &mut SmallRng, n: u64) -> Vec<(UserId, FeedDelta)> {
    let mut windows: Vec<Vec<Arc<Message>>> = (0..USERS).map(|_| Vec::new()).collect();
    let mut out = Vec::with_capacity(n as usize);
    for i in 0..n {
        let user = UserId(rng.gen_range(0..USERS));
        let msg = Arc::new(Message {
            id: MessageId(i),
            author: UserId(rng.gen_range(0..USERS)),
            ts: Timestamp::from_secs(i / 4),
            location: LocationId(0),
            vector: random_vector(rng, 4),
        });
        let window = &mut windows[user.index()];
        let evicted = if window.len() >= WINDOW {
            vec![window.remove(0)]
        } else {
            vec![]
        };
        window.push(msg.clone());
        out.push((
            user,
            FeedDelta {
                entered: Some(msg),
                evicted,
            },
        ));
    }
    out
}

fn ads_of(recs: &[Recommendation]) -> Vec<adcast_ads::AdId> {
    recs.iter().map(|r| r.ad).collect()
}

/// Drive the same workload through direct / 1-shard / N-shard engines in
/// interleaved process-then-query rounds, asserting equivalence at every
/// checkpoint (not just at the end).
fn assert_equivalent(seed: u64, config: EngineConfig, shards: usize) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut store = random_store(&mut rng);
    let workload = random_workload(&mut rng, 2_400);

    let mut direct = IncrementalEngine::new(USERS, config.clone());
    let mut one = ShardedDriver::new(USERS, 1, config.clone());
    let mut many = ShardedDriver::new(USERS, shards, config);

    for (round, batch) in workload.chunks(400).enumerate() {
        // Campaign churn mid-workload: every topology must see the same
        // removal and purge identically.
        if round == 2 || round == 4 {
            let ad = adcast_ads::AdId(rng.gen_range(0..ADS));
            if store.remove(ad) {
                direct.on_campaign_removed(ad);
                one.on_campaign_removed(ad);
                many.on_campaign_removed(ad);
            }
        }
        for (u, d) in batch {
            direct.on_feed_delta(&store, *u, d);
        }
        one.process_batch(&store, batch.to_vec())
            .expect("1-shard pool alive");
        many.process_batch(&store, batch.to_vec())
            .expect("N-shard pool alive");

        let now = Timestamp::from_secs(((round as u64 + 1) * 100) / 4);
        for _ in 0..16 {
            let u = UserId(rng.gen_range(0..USERS));
            let k = rng.gen_range(1..=4usize);
            let a = direct.recommend(&store, u, now, LocationId(0), k);
            let b = one.recommend(&store, u, now, LocationId(0), k);
            let c = many.recommend(&store, u, now, LocationId(0), k);
            // Same per-user delta order ⇒ bit-identical float state ⇒ the
            // full Recommendation (ad, score, relevance) must match.
            assert_eq!(a, b, "direct vs 1-shard, user {u:?} round {round}");
            assert_eq!(
                ads_of(&a),
                ads_of(&c),
                "direct vs {shards}-shard, user {u:?} round {round}"
            );
            assert_eq!(
                a, c,
                "direct vs {shards}-shard scores, user {u:?} round {round}"
            );
        }
    }

    // Aggregate work counters: sharding must not change *what* work was
    // done, only where. Every counter (deltas, refreshes, promotions,
    // screening, fallbacks, rebases, ...) must agree in total.
    let direct_stats = direct.stats().clone();
    assert_eq!(direct_stats, one.stats(), "direct vs 1-shard stats");
    assert_eq!(direct_stats, many.stats(), "direct vs {shards}-shard stats");
    assert!(direct_stats.deltas == 2_400, "workload actually ran");
}

#[test]
fn equivalence_no_decay() {
    let config = EngineConfig {
        k: 3,
        half_life: None,
        ..Default::default()
    };
    assert_equivalent(0xA11CE, config, 4);
}

#[test]
fn equivalence_with_decay_and_rebases() {
    // Default config keeps forward decay on: landmark rebases fire during
    // the workload and must fire identically per user in every topology.
    let config = EngineConfig {
        k: 3,
        ..Default::default()
    };
    assert_equivalent(0xB0B, config, 5);
}

#[test]
fn equivalence_more_shards_than_some_residents() {
    // 7 shards over 96 users: uneven residents (14 vs 13) exercise the
    // local-id compaction at the boundaries.
    let config = EngineConfig {
        k: 2,
        half_life: None,
        ..Default::default()
    };
    assert_equivalent(0x5EED, config, 7);
}
