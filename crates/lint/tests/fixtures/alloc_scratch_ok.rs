// Fixture: pushing into reusable scratch buffers taken from `self.scratch`
// is the sanctioned zero-alloc pattern and must pass without a pragma.
// Never compiled — lexed only.

// adcast-lint: zero-alloc
fn apply_delta(&mut self, deltas: &[u32]) -> usize {
    let mut staged = std::mem::take(&mut self.scratch.staged);
    for d in deltas {
        staged.push(*d);
    }
    let n = staged.len();
    self.scratch.staged = staged;
    n
}
