//! Promoted feed: the paper's motivating scenario on **real text**.
//!
//! Five users (Tom, Luke, Anna, Sam, Lia — the companion case study's
//! cast) tweet across a morning/afternoon/evening day in three city
//! districts. Two advertisers register campaigns ("Adidas volleyball
//! gear", "Downtown coffee happy hour"). As the feed streams, the engine
//! weaves the right sponsored post into each user's timeline.
//!
//! Everything here goes through the *text* pipeline — tokenizer, stop
//! words, Porter stemmer, TF-IDF — not the synthetic generator.
//!
//! ```text
//! cargo run --release --example promoted_feed
//! ```

use std::sync::Arc;

use adcast::ads::{AdStore, AdSubmission, Budget, Targeting};
use adcast::core::{EngineConfig, IncrementalEngine, RecommendationEngine};
use adcast::feed::{FeedDelivery, PushDelivery, WindowConfig};
use adcast::graph::{GraphBuilder, UserId};
use adcast::stream::event::{LocationId, Message, MessageId, TimeSlot};
use adcast::stream::{Duration, Timestamp};
use adcast::text::pipeline::TextPipeline;

const USERS: [&str; 5] = ["Tom", "Luke", "Anna", "Sam", "Lia"];

fn at(hour: u64, minute: u64) -> Timestamp {
    Timestamp((hour * 3600 + minute * 60) * 1_000_000)
}

fn main() {
    // --- Social graph: everyone follows everyone (a small friend group).
    let mut builder = GraphBuilder::new(5);
    for a in 0..5u32 {
        for b in 0..5u32 {
            builder.follow(UserId(a), UserId(b));
        }
    }
    let graph = builder.build();

    // --- Text pipeline shared by tweets and ad copy.
    let mut pipeline = TextPipeline::standard();

    // --- The day's tweets: (author, hh:mm, district, text).
    let tweets: &[(usize, (u64, u64), u16, &str)] = &[
        (
            0,
            (8, 5),
            0,
            "The nation's best volleyball returns tonight, can't wait!",
        ),
        (
            1,
            (8, 30),
            1,
            "Morning espresso downtown before the volleyball match #coffee",
        ),
        (
            3,
            (9, 10),
            0,
            "New running shoes day! Training for the city marathon.",
        ),
        (
            2,
            (9, 45),
            2,
            "Gallery opening this weekend, modern art all day",
        ),
        (
            4,
            (10, 20),
            1,
            "Best coffee roaster downtown, hands down #espresso",
        ),
        (
            0,
            (14, 00),
            0,
            "Volleyball practice was brutal, need new knee pads and shoes",
        ),
        (
            1,
            (14, 30),
            1,
            "Afternoon slump. More coffee. Always more coffee.",
        ),
        (
            3,
            (15, 00),
            0,
            "Marathon training week 6: tempo runs and recovery shakes",
        ),
        (
            2,
            (18, 00),
            2,
            "Sketching at the cafe, art fuels everything",
        ),
        (
            4,
            (19, 30),
            1,
            "Evening cappuccino and people-watching downtown",
        ),
    ];

    // Index the corpus so IDF statistics are meaningful.
    for (_, _, _, text) in tweets {
        pipeline.index_document(text);
    }

    // --- Ad campaigns (keyword lists through the same pipeline).
    let mut store = AdStore::new();
    let sports_vec =
        pipeline.analyze_keywords(&["volleyball", "shoes", "gear", "training", "sport"]);
    let coffee_vec =
        pipeline.analyze_keywords(&["coffee", "espresso", "cappuccino", "downtown", "roaster"]);
    let ad_sports = store
        .submit(AdSubmission {
            vector: sports_vec,
            bid: 1.0,
            targeting: Targeting::everywhere(), // brand campaign, city-wide
            budget: Budget::unlimited(),
            topic_hint: None,
        })
        .expect("valid ad");
    let ad_coffee = store
        .submit(AdSubmission {
            vector: coffee_vec,
            bid: 1.0,
            // Happy hour: downtown district (1), afternoon slot only.
            targeting: Targeting::everywhere()
                .in_locations([LocationId(1)])
                .in_slots([TimeSlot::Afternoon]),
            budget: Budget::unlimited(),
            topic_hint: None,
        })
        .expect("valid ad");
    let ad_name = |id| {
        if id == ad_sports {
            "Adidas volleyball gear"
        } else if id == ad_coffee {
            "Downtown coffee happy hour"
        } else {
            "?"
        }
    };

    // --- Feed delivery + engine.
    let window = WindowConfig::count_and_time(8, Duration::from_secs(12 * 3600));
    let engine_config = EngineConfig {
        k: 1,
        window,
        half_life: Some(Duration::from_secs(4 * 3600)),
        ..Default::default()
    };
    let mut delivery = PushDelivery::new(5, window);
    let mut engine = IncrementalEngine::new(5, engine_config);

    // --- Stream the day.
    println!("─── streaming the day's tweets ───");
    for (i, &(author, (h, m), district, text)) in tweets.iter().enumerate() {
        let msg = Arc::new(Message {
            id: MessageId(i as u64),
            author: UserId(author as u32),
            ts: at(h, m),
            location: LocationId(district),
            vector: pipeline.analyze(text),
        });
        println!(
            "[{h:02}:{m:02}] @{:<4} ({:?}): {text}",
            USERS[author], msg.location
        );
        for (user, delta) in delivery.post(&graph, msg.clone()) {
            engine.on_feed_delta(&store, user, &delta);
        }
    }

    // --- Serve each user's promoted slot in the afternoon, downtown vs home.
    println!("\n─── promoted slots at 15:30 ───");
    let now = at(15, 30);
    for (i, name) in USERS.iter().enumerate() {
        let user = UserId(i as u32);
        // Tom & Sam are in district 0; Luke & Lia downtown (1); Anna in 2.
        let location = LocationId(match i {
            1 | 4 => 1,
            2 => 2,
            _ => 0,
        });
        let recs = engine.recommend(&store, user, now, location, 1);
        match recs.first() {
            Some(rec) => println!(
                "@{name:<4} at {:?} → SPONSORED: {} (relevance {:.3})",
                location,
                ad_name(rec.ad),
                rec.relevance
            ),
            None => println!("@{name:<4} at {location:?} → no eligible ad"),
        }
    }

    // --- Same users at 21:00: the happy-hour ad is out of its slot.
    println!("\n─── promoted slots at 21:00 (happy hour over) ───");
    let now = at(21, 0);
    for (i, name) in USERS.iter().enumerate() {
        let user = UserId(i as u32);
        let location = LocationId(if i == 1 || i == 4 { 1 } else { 0 });
        let recs = engine.recommend(&store, user, now, location, 1);
        match recs.first() {
            Some(rec) => println!("@{name:<4} → SPONSORED: {}", ad_name(rec.ad)),
            None => println!("@{name:<4} → no eligible ad"),
        }
    }
    println!("\nfeed stats: {:?}", delivery.stats());
    println!("engine stats: {:?}", engine.stats());
}
