//! The monetization loop end-to-end: engine → auction → clicks → billing
//! → pacing → campaign exhaustion → engine purge.

use adcast::ads::PacingController;
use adcast::core::market::AdMarket;
use adcast::core::{Simulation, SimulationConfig};
use adcast::graph::UserId;
use adcast::stream::generator::WorkloadConfig;
use adcast::stream::Timestamp;

fn sim(seed: u64, budget: Option<f64>) -> Simulation {
    Simulation::build(SimulationConfig {
        workload: WorkloadConfig {
            seed,
            num_users: 80,
            ..WorkloadConfig::tiny()
        },
        num_ads: 30,
        ad_budget: budget,
        bid_range: (0.5, 1.5),
        targeted_ad_fraction: 0.0,
        ..SimulationConfig::tiny()
    })
}

#[test]
fn revenue_equals_spend_and_trackers_are_consistent() {
    let mut sim = sim(1, None);
    let mut market = AdMarket::standard(1);
    sim.run(1500);
    for _ in 0..10 {
        sim.run(200);
        let now = sim.now();
        for u in 0..80u32 {
            let recs = sim.recommend(UserId(u), 3);
            market.serve(sim.store_mut(), &recs, now);
        }
    }
    assert!(market.impressions() > 200, "market must have served");
    // Revenue equals total advertiser spend (micro-rounding tolerance).
    let spend: f64 = sim
        .ad_topics()
        .iter()
        .filter_map(|&(ad, _)| sim.store().campaign(ad))
        .map(|c| c.budget.spent())
        .sum();
    assert!(
        (market.revenue() - spend).abs() < 0.01,
        "{} vs {spend}",
        market.revenue()
    );
    // Tracker totals match the market totals.
    let tracker_imps: u64 = sim
        .ad_topics()
        .iter()
        .filter_map(|&(ad, _)| market.tracker(ad))
        .map(|t| t.impressions())
        .sum();
    let tracker_clicks: u64 = sim
        .ad_topics()
        .iter()
        .filter_map(|&(ad, _)| market.tracker(ad))
        .map(|t| t.clicks())
        .sum();
    assert_eq!(tracker_imps, market.impressions());
    assert_eq!(tracker_clicks, market.clicks());
    // Position stats sum to the impression count, and the top slot gets
    // at least as many impressions as any lower slot.
    let stats = market.position_stats();
    assert_eq!(stats.iter().map(|s| s.0).sum::<u64>(), market.impressions());
    assert!(stats[0].0 >= stats.last().unwrap().0);
}

#[test]
fn exhausted_campaigns_are_purged_and_never_reappear() {
    let mut sim = sim(2, Some(1.0));
    let mut market = AdMarket::standard(2);
    sim.run(1500);
    let mut exhausted_seen = Vec::new();
    for _ in 0..20 {
        sim.run(100);
        let now = sim.now();
        for u in 0..80u32 {
            let recs = sim.recommend(UserId(u), 3);
            for r in &recs {
                assert!(
                    !exhausted_seen.contains(&r.ad),
                    "exhausted ad {:?} recommended again",
                    r.ad
                );
            }
            market.serve(sim.store_mut(), &recs, now);
            for ad in market.take_exhausted() {
                sim.engine_mut().on_campaign_removed(ad);
                exhausted_seen.push(ad);
            }
        }
    }
    assert!(
        !exhausted_seen.is_empty(),
        "tiny budgets must exhaust under this load"
    );
}

#[test]
fn pacing_defers_spend_relative_to_greedy() {
    let run = |paced: bool| -> f64 {
        let mut sim = sim(3, Some(8.0));
        let mut market = AdMarket::standard(3);
        if paced {
            for &(ad, _) in sim.ad_topics() {
                market.set_pacing(
                    ad,
                    PacingController::new(Timestamp::from_secs(0), Timestamp::from_secs(600), 8.0),
                );
            }
        }
        sim.run(1000);
        // One quarter of the flight's serving pressure.
        for _ in 0..4 {
            sim.run(100);
            let now = sim.now();
            for u in 0..80u32 {
                let recs = sim.recommend(UserId(u), 3);
                market.serve(sim.store_mut(), &recs, now);
                if u % 10 == 0 {
                    market.adjust_pacing(now);
                }
            }
        }
        sim.ad_topics()
            .iter()
            .filter_map(|&(ad, _)| sim.store().campaign(ad))
            .map(|c| c.budget.spent())
            .sum()
    };
    let greedy_spend = run(false);
    let paced_spend = run(true);
    assert!(
        paced_spend < 0.7 * greedy_spend,
        "pacing must defer early spend: paced {paced_spend} vs greedy {greedy_spend}"
    );
}
