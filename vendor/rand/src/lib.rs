//! Offline stand-in for the `rand` crate (API-compatible subset).
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the surface adcast uses: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::SmallRng`] (xoshiro256++
//! seeded via splitmix64, the same construction real `SmallRng` uses on
//! 64-bit targets), range sampling for the integer and float types the
//! workspace draws, and [`seq::SliceRandom`].
//!
//! Determinism contract: identical seeds produce identical streams across
//! runs and platforms. Streams do **not** bit-match the real `rand` crate;
//! every in-repo test asserts distributional or same-seed properties, not
//! golden values from upstream `rand`.

/// The raw generator interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed bytes.
    type Seed: AsMut<[u8]> + Default;

    /// Build from raw seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` via splitmix64 expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly over their whole domain (`Rng::gen`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

mod range {
    use super::{RngCore, Standard};

    /// Ranges `Rng::gen_range` accepts.
    pub trait SampleRange<T> {
        /// Draw one value from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    // Widening multiply: maps 64 random bits onto the span
                    // with bias < 2^-64 per draw.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start.wrapping_add(hi as $t)
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range in gen_range");
                    if lo == hi {
                        return lo;
                    }
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain u64 range.
                        return rng.next_u64() as $t;
                    }
                    let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    lo.wrapping_add(draw as $t)
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty float range in gen_range");
                    let u = <$t as Standard>::sample(rng);
                    let v = self.start + (self.end - self.start) * u;
                    // Guard against rounding up to the excluded endpoint.
                    if v >= self.end { <$t>::max(self.start, self.end - (self.end - self.start) * 1e-7) } else { v }
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive float range in gen_range");
                    let u = <$t as Standard>::sample(rng);
                    lo + (hi - lo) * u
                }
            }
        )*};
    }
    float_range!(f32, f64);
}

pub use range::SampleRange;

/// The user-facing generator interface (auto-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform draw over `T`'s standard domain (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0,1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // All-zero state is the one degenerate xoshiro orbit.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 0x94D0_49BB_1331_11EB, 1];
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Convenience re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_int_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
        }
        assert_eq!(rng.gen_range(5u64..=5), 5);
    }

    #[test]
    fn gen_range_int_covers_domain() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_float_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v > 0.0 && v < 1.0);
            let w: f32 = rng.gen_range(0.5f32..=1.5);
            assert!((0.5..=1.5).contains(&w));
        }
        let pinned: f32 = rng.gen_range(1.0f32..=1.0);
        assert_eq!(pinned, 1.0);
    }

    #[test]
    fn gen_bool_frequencies() {
        let mut rng = SmallRng::seed_from_u64(10);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_800..3_200).contains(&hits), "got {hits}");
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }

    #[test]
    fn gen_standard_floats_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_permutes_and_choose_hits_all() {
        let mut rng = SmallRng::seed_from_u64(12);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v != (0..32).collect::<Vec<_>>(), "shuffle left slice untouched");
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 4];
        let pool = [0usize, 1, 2, 3];
        for _ in 0..200 {
            seen[*pool.choose(&mut rng).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
